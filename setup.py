"""Legacy setuptools entry point.

Kept so that ``pip install -e .`` works in offline environments whose
setuptools/pip combination cannot build PEP 660 editable wheels (no
``wheel`` package available).  All metadata lives in ``pyproject.toml``.
"""
from setuptools import setup

setup()
