"""Analytic throughput model for the back-projection kernels (Table 4).

The paper measures the kernels of Table 3 on a real V100; this environment
has no GPU, so Table 4 is regenerated from a roofline-style model whose
inputs are (a) the :class:`~repro.gpusim.device.DeviceSpec` constants and
(b) the per-kernel characteristics of :class:`~repro.gpusim.kernels.KernelVariant`.

Model
-----

For a problem ``Nu×Nv×Np → Nx×Ny×Nz`` the kernel performs
``U = Nx·Ny·Nz·Np`` voxel updates.  The execution time is::

    T = Np · T_prep(proj)  +  U · max(T_flop, T_mem)  +  T_layout

* ``T_prep`` — per-projection preparation: copying the projection into a
  texture array and/or transposing it (``projection_prep_passes`` full
  passes over its bytes at the device's layout-transformation bandwidth,
  with an L2-residency boost for small projections).
* ``T_flop`` — ``flops_per_update / effective FP32 throughput``.
* ``T_mem`` — per-update DRAM traffic divided by effective bandwidth.  The
  traffic is the detector read-path term (texture / L1 / global, from
  :mod:`repro.gpusim.texture`) plus the volume read-modify-write amortized
  over the ``Nbatch = 32`` projections staged per kernel launch.
* ``T_layout`` — the one-time volume transpose for kernels that keep the
  volume k-major (Table 3's "Transpose volume"), plus a per-launch kernel
  overhead.

Exact GUPS values are *not* expected to match the paper (that would require
the authors' silicon); the model is calibrated so that the qualitative
structure of Table 4 holds: the ordering of the kernels at small α, the
degradation of every kernel as α grows, the sensitivity of Bp-L1 to the
projection size, and the crossover where RTK-32 overtakes the proposed
kernels for tiny outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..core.types import ReconstructionProblem
from .device import DeviceSpec, TESLA_V100
from .kernels import DEFAULT_PROJECTION_BATCH, KERNEL_VARIANTS, KernelVariant

__all__ = [
    "BackprojectionCostModel",
    "KernelTiming",
    "predict_gups",
    "predict_table4",
]

#: Sustained device-to-device bandwidth of a strided layout transformation
#: (transpose) relative to a straight copy.  Derived from the paper's own
#: observation that transposing a projection is "a small fraction" of the
#: back-projection time while still costing several passes over DRAM.
_TRANSPOSE_BANDWIDTH = 138e9
#: Sustained bandwidth of copying a projection into a texture (cudaArray).
_TEXTURE_COPY_BANDWIDTH = 336e9
#: Speed-up of layout transformations whose working set fits in L2.
_L2_RESIDENT_BOOST = 2.7


@dataclass(frozen=True)
class KernelTiming:
    """Predicted timing breakdown of one kernel on one problem."""

    kernel: str
    problem: ReconstructionProblem
    prep_seconds: float
    update_seconds: float
    layout_seconds: float
    supported: bool = True

    @property
    def total_seconds(self) -> float:
        return self.prep_seconds + self.update_seconds + self.layout_seconds

    @property
    def gups(self) -> float:
        """Giga-updates per second (the Table 4 metric)."""
        if not self.supported:
            return float("nan")
        return self.problem.gups(self.total_seconds)


class BackprojectionCostModel:
    """Roofline-style cost model for the Table 3 kernels on one device."""

    def __init__(
        self,
        device: DeviceSpec = TESLA_V100,
        *,
        projection_batch: int = DEFAULT_PROJECTION_BATCH,
    ):
        if projection_batch <= 0:
            raise ValueError("projection_batch must be positive")
        self.device = device
        self.projection_batch = int(projection_batch)

    # ------------------------------------------------------------------ #
    def _prep_seconds_per_projection(
        self, kernel: KernelVariant, projection_bytes: int
    ) -> float:
        """Per-projection preparation time (texture copy and/or transpose)."""
        launch = self.device.kernel_launch_overhead
        copy_bytes = 0.0
        transpose_bytes = 0.0
        if kernel.uses_texture:
            copy_bytes += 2.0 * projection_bytes  # read + write into cudaArray
        if kernel.transpose_projection:
            transpose_bytes += 2.0 * projection_bytes
        if not kernel.uses_texture and not kernel.transpose_projection:
            # The projection still has to be staged into device-friendly
            # layout once (a straight copy).
            copy_bytes += 2.0 * projection_bytes

        transpose_bw = _TRANSPOSE_BANDWIDTH
        if 2.0 * projection_bytes <= self.device.l2_cache_bytes:
            transpose_bw *= _L2_RESIDENT_BOOST
        return (
            launch
            + copy_bytes / _TEXTURE_COPY_BANDWIDTH
            + transpose_bytes / transpose_bw
        )

    def _seconds_per_update(
        self, kernel: KernelVariant, projection_bytes: int
    ) -> float:
        """Roofline per-update time: max(compute, memory)."""
        flop_time = kernel.flops_per_update / self.device.effective_fp32_flops
        detector_bytes = kernel.read_path.bytes_per_update(
            projection_bytes, self.device
        )
        volume_bytes = 8.0 / self.projection_batch  # read-modify-write, amortized
        mem_time = (detector_bytes + volume_bytes) / self.device.effective_dram_bandwidth
        return max(flop_time, mem_time)

    def _layout_seconds(self, kernel: KernelVariant, output_bytes: int) -> float:
        """One-time volume reshape for k-major kernels (Algorithm 4 line 22)."""
        if not kernel.transpose_volume:
            return 0.0
        return 2.0 * output_bytes / _TRANSPOSE_BANDWIDTH

    # ------------------------------------------------------------------ #
    def timing(
        self, kernel: KernelVariant, problem: ReconstructionProblem
    ) -> KernelTiming:
        """Predict the timing breakdown for ``kernel`` on ``problem``."""
        projection_bytes = problem.nu * problem.nv * 4
        output_bytes = problem.output_bytes()
        supported = kernel.supports_output_bytes(output_bytes) and (
            kernel.device_output_bytes(output_bytes)
            + self.projection_batch * projection_bytes
            <= self.device.global_memory_bytes
        )
        prep = problem.np_ * self._prep_seconds_per_projection(kernel, projection_bytes)
        update = problem.updates * self._seconds_per_update(kernel, projection_bytes)
        layout = self._layout_seconds(kernel, output_bytes)
        return KernelTiming(
            kernel=kernel.name,
            problem=problem,
            prep_seconds=prep,
            update_seconds=update,
            layout_seconds=layout,
            supported=supported,
        )

    def gups(self, kernel: KernelVariant, problem: ReconstructionProblem) -> float:
        """Predicted GUPS (``nan`` when the kernel cannot run the problem)."""
        return self.timing(kernel, problem).gups

    def throughput_updates_per_second(
        self, kernel: KernelVariant, problem: ReconstructionProblem
    ) -> float:
        """Predicted voxel updates per second (``TH_bp`` of Section 4.2.1)."""
        timing = self.timing(kernel, problem)
        if not timing.supported:
            return float("nan")
        return problem.updates / timing.total_seconds

    def table4_row(self, problem: ReconstructionProblem) -> Dict[str, float]:
        """Predicted GUPS of every Table 3 kernel for one problem."""
        return {
            kernel.name: self.gups(kernel, problem) for kernel in KERNEL_VARIANTS
        }


def predict_gups(
    problem: ReconstructionProblem,
    kernel: KernelVariant,
    device: DeviceSpec = TESLA_V100,
) -> float:
    """Convenience wrapper: predicted GUPS of one kernel on one problem."""
    return BackprojectionCostModel(device).gups(kernel, problem)


def predict_table4(
    problems: Iterable[ReconstructionProblem],
    device: DeviceSpec = TESLA_V100,
) -> List[Dict[str, object]]:
    """Predict the full Table 4: one row per problem, one column per kernel."""
    model = BackprojectionCostModel(device)
    rows: List[Dict[str, object]] = []
    for problem in problems:
        row: Dict[str, object] = {
            "problem": str(problem),
            "alpha": problem.alpha,
        }
        row.update(model.table4_row(problem))
        rows.append(row)
    return rows
