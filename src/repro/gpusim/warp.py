"""Warp-level semantics of the ``shflBP`` CUDA kernel (Listing 1).

The paper's kernel stores the per-projection values ``Z = 1/z`` and
``U = u`` in the registers of the first ``Nbatch`` lanes of each warp and
broadcasts them to all lanes with ``__shfl_sync`` when the loop over the
projection batch runs.  This module models a warp precisely enough to
execute a faithful transcription of Listing 1 (see
:func:`repro.gpusim.kernels.shfl_bp_reference`):

* :class:`Warp` holds one register file per lane;
* :meth:`Warp.shfl_sync` implements the broadcast-from-lane semantics of
  ``__shfl_sync(0xffffffff, var, srcLane)``.

It exists for fidelity and testing (the vectorized kernels in
:mod:`repro.core.backprojection` are the production path), so clarity is
favoured over speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["Warp", "FULL_MASK"]

#: The full-warp participation mask used by ``__shfl_sync`` in Listing 1.
FULL_MASK = 0xFFFFFFFF


@dataclass
class Warp:
    """A single warp: ``width`` lanes, each with a named register file."""

    width: int = 32
    registers: List[Dict[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.width > 32:
            raise ValueError("warp width must be in [1, 32]")
        if not self.registers:
            self.registers = [dict() for _ in range(self.width)]
        elif len(self.registers) != self.width:
            raise ValueError("one register file per lane is required")

    # ------------------------------------------------------------------ #
    def write(self, lane: int, name: str, value: float) -> None:
        """Write a register on one lane."""
        self._check_lane(lane)
        self.registers[lane][name] = float(value)

    def read(self, lane: int, name: str) -> float:
        """Read a register from one lane (0.0 if never written)."""
        self._check_lane(lane)
        return self.registers[lane].get(name, 0.0)

    def broadcast_write(self, name: str, values) -> None:
        """Write one register on every lane from a sequence of values."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.width,):
            raise ValueError(f"expected {self.width} values, got shape {values.shape}")
        for lane, value in enumerate(values):
            self.registers[lane][name] = float(value)

    def shfl_sync(self, mask: int, name: str, src_lane: int) -> np.ndarray:
        """``__shfl_sync``: every active lane receives ``name`` from ``src_lane``.

        Returns an array of length ``width`` with the value each lane
        receives; lanes excluded from ``mask`` receive their own value
        (undefined in CUDA — keeping their own value is the conservative
        simulation and is asserted against in tests only under full mask).
        """
        self._check_lane(src_lane)
        source_value = self.read(src_lane, name)
        out = np.empty(self.width, dtype=np.float64)
        for lane in range(self.width):
            if (mask >> lane) & 1:
                out[lane] = source_value
            else:
                out[lane] = self.read(lane, name)
        return out

    # ------------------------------------------------------------------ #
    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.width:
            raise IndexError(f"lane {lane} outside warp of width {self.width}")
