"""Device global-memory allocation tracking.

High-resolution reconstruction is "limited by GPU memory capacity"
(Section 1); the whole 2-D decomposition of iFDK exists to keep each rank's
sub-volume plus its 32-projection staging batch inside the 16 GB of a V100.
The tracker below enforces that constraint in the simulation: every buffer
the per-rank pipeline would place in device memory is allocated through it,
and exceeding the capacity raises :class:`DeviceOutOfMemoryError` exactly
where a real CUDA allocation would fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .device import DeviceSpec

__all__ = ["DeviceOutOfMemoryError", "DeviceAllocation", "DeviceMemoryPool"]


class DeviceOutOfMemoryError(MemoryError):
    """Raised when an allocation would exceed the device's global memory."""


@dataclass
class DeviceAllocation:
    """One live allocation in the simulated device memory."""

    name: str
    nbytes: int
    shape: Tuple[int, ...]
    dtype: np.dtype
    array: Optional[np.ndarray] = None

    def require_array(self) -> np.ndarray:
        """Return the backing array, materializing it lazily."""
        if self.array is None:
            self.array = np.zeros(self.shape, dtype=self.dtype)
        return self.array


class DeviceMemoryPool:
    """A simple tracking allocator for one simulated GPU.

    Parameters
    ----------
    device:
        The device whose capacity is enforced.
    materialize:
        When True (default) allocations are backed by real NumPy arrays (the
        functional simulation); when False only the byte accounting is kept
        (used by the at-scale performance model, where an 8 GB sub-volume per
        simulated rank would not fit in host memory).
    """

    def __init__(self, device: DeviceSpec, *, materialize: bool = True):
        self.device = device
        self.materialize = materialize
        self._allocations: Dict[str, DeviceAllocation] = {}
        self._peak_bytes = 0

    # ------------------------------------------------------------------ #
    @property
    def used_bytes(self) -> int:
        return sum(a.nbytes for a in self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.device.global_memory_bytes - self.used_bytes

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    def allocations(self) -> Dict[str, DeviceAllocation]:
        return dict(self._allocations)

    # ------------------------------------------------------------------ #
    def allocate(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype=np.float32,
    ) -> DeviceAllocation:
        """Allocate a named buffer; raises if the name exists or memory is full."""
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        if nbytes > self.free_bytes:
            raise DeviceOutOfMemoryError(
                f"cannot allocate {name!r} ({nbytes / 2**30:.2f} GiB): "
                f"{self.free_bytes / 2**30:.2f} GiB free of "
                f"{self.device.global_memory_bytes / 2**30:.2f} GiB on {self.device.name}"
            )
        allocation = DeviceAllocation(
            name=name,
            nbytes=nbytes,
            shape=tuple(int(s) for s in shape),
            dtype=dtype,
            array=np.zeros(shape, dtype=dtype) if self.materialize else None,
        )
        self._allocations[name] = allocation
        self._peak_bytes = max(self._peak_bytes, self.used_bytes)
        return allocation

    def free(self, name: str) -> None:
        """Free a named buffer."""
        if name not in self._allocations:
            raise KeyError(f"no allocation named {name!r}")
        del self._allocations[name]

    def reset(self) -> None:
        """Free all allocations (keeps the peak statistic)."""
        self._allocations.clear()

    # ------------------------------------------------------------------ #
    def can_fit_reconstruction(
        self,
        subvolume_voxels: int,
        nu: int,
        nv: int,
        batch: int = 32,
        itemsize: int = 4,
    ) -> bool:
        """Section 4.1.5 feasibility check for one rank's working set."""
        required = itemsize * (subvolume_voxels + nu * nv * batch)
        return required <= self.device.global_memory_bytes
