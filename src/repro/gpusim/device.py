"""Simulated GPU device specifications.

The paper's evaluation platform is the Nvidia Tesla V100 (16 GB, PCIe gen3
x16).  No GPU is available in this environment, so the GPU is represented by
an explicit :class:`DeviceSpec` — the set of architectural constants the
paper's design decisions depend on: global-memory capacity (drives the
``R`` parameter selection of Section 4.1.5), DRAM bandwidth and FP32
throughput (drive the back-projection kernel cost model of Table 4), L2
capacity (drives the cache-hit behaviour of the non-texture kernels) and
PCIe bandwidth (drives ``T_H2D``/``T_D2H`` in the performance model).

The defaults are published figures for the V100-PCIe-16GB; the efficiency
factors are the sustained fractions observed by the paper's own
micro-benchmarks (e.g. ``BW_PCIe = 11.9 GB/s`` in Section 5.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceSpec", "TESLA_V100", "TESLA_P100", "A100_40GB"]

GiB = 1024**3


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural constants of one GPU.

    Attributes
    ----------
    name:
        Marketing name of the device.
    global_memory_bytes:
        Device (HBM) memory capacity in bytes.
    dram_bandwidth:
        Peak DRAM bandwidth in bytes/second.
    dram_efficiency:
        Sustained fraction of peak DRAM bandwidth achieved by streaming
        kernels (STREAM-like).
    fp32_flops:
        Peak single-precision throughput in FLOP/s.
    fp32_efficiency:
        Sustained fraction of the FP32 peak for the back-projection mix
        (FMA + divides + interpolation address arithmetic).
    l2_cache_bytes:
        L2 cache capacity (shared by all SMs).
    sm_count, warp_size:
        Streaming-multiprocessor count and threads per warp.
    pcie_bandwidth:
        Sustained host<->device bandwidth of one PCIe link in bytes/second
        (the paper measures 11.9 GB/s for PCIe gen3 x16).
    kernel_launch_overhead:
        Fixed host-side cost of launching one kernel, in seconds.
    """

    name: str
    global_memory_bytes: int
    dram_bandwidth: float
    fp32_flops: float
    l2_cache_bytes: int
    sm_count: int
    warp_size: int = 32
    dram_efficiency: float = 0.85
    fp32_efficiency: float = 0.60
    pcie_bandwidth: float = 11.9e9
    kernel_launch_overhead: float = 5.0e-6

    def __post_init__(self) -> None:
        if self.global_memory_bytes <= 0 or self.l2_cache_bytes <= 0:
            raise ValueError("memory capacities must be positive")
        if self.dram_bandwidth <= 0 or self.fp32_flops <= 0:
            raise ValueError("bandwidth and FLOPs must be positive")
        if not 0 < self.dram_efficiency <= 1 or not 0 < self.fp32_efficiency <= 1:
            raise ValueError("efficiency factors must be in (0, 1]")
        if self.warp_size <= 0 or self.sm_count <= 0:
            raise ValueError("warp_size and sm_count must be positive")

    # ------------------------------------------------------------------ #
    @property
    def effective_dram_bandwidth(self) -> float:
        """Sustained DRAM bandwidth (bytes/s)."""
        return self.dram_bandwidth * self.dram_efficiency

    @property
    def effective_fp32_flops(self) -> float:
        """Sustained FP32 throughput (FLOP/s)."""
        return self.fp32_flops * self.fp32_efficiency

    def fits_in_memory(self, nbytes: int) -> bool:
        """True if an allocation of ``nbytes`` fits in device memory."""
        return 0 <= nbytes <= self.global_memory_bytes

    def max_subvolume_bytes(self, projection_batch_bytes: int) -> int:
        """Largest sub-volume that fits next to a projection batch.

        Section 4.1.5's constraint:
        ``sizeof(float)·(Nx·Ny·Nz/R + Nu·Nv·Nbatch) <= N_gpu_mem_size``.
        """
        return max(0, self.global_memory_bytes - projection_batch_bytes)

    def with_memory(self, nbytes: int) -> "DeviceSpec":
        """A copy of this device with a different memory capacity."""
        return replace(self, global_memory_bytes=int(nbytes))


#: The paper's evaluation GPU: Tesla V100 SXM2/PCIe 16 GB.
TESLA_V100 = DeviceSpec(
    name="Tesla V100 16GB",
    global_memory_bytes=16 * GiB,
    dram_bandwidth=900e9,
    fp32_flops=14.0e12,
    l2_cache_bytes=6 * 1024 * 1024,
    sm_count=80,
)

#: Previous-generation device, used for sanity checks of the cost model.
TESLA_P100 = DeviceSpec(
    name="Tesla P100 16GB",
    global_memory_bytes=16 * GiB,
    dram_bandwidth=720e9,
    fp32_flops=9.3e12,
    l2_cache_bytes=4 * 1024 * 1024,
    sm_count=56,
)

#: A newer device, used by the what-if projections in the examples.
A100_40GB = DeviceSpec(
    name="A100 40GB",
    global_memory_bytes=40 * GiB,
    dram_bandwidth=1555e9,
    fp32_flops=19.5e12,
    l2_cache_bytes=40 * 1024 * 1024,
    sm_count=108,
    pcie_bandwidth=24.0e9,
)
