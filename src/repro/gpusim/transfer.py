"""Host <-> device transfer model (PCIe), Equations 11 and 14.

Each ABCI node connects four V100s to the host through two PCIe gen3 x16
switches (two GPUs share one switch).  The paper measures a sustained
bandwidth of 11.9 GB/s per link with Nvidia's ``bandwidthTest`` and uses

* ``T_H2D = sizeof(float)·N_gpu_per_node·Nu·Nv·Np / (C · BW_PCIe · N_PCIe)``
* ``T_D2H = sizeof(float)·N_gpu_per_node·Nx·Ny·Nz / (R · BW_PCIe · N_PCIe)``

in its performance model.  This module provides those terms plus a small
per-transfer latency so that the functional pipeline simulation can also
charge realistic costs for the 32-projection staging batches.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec, TESLA_V100

__all__ = ["PCIeModel"]


@dataclass(frozen=True)
class PCIeModel:
    """PCIe transfer-time model for one compute node.

    Parameters
    ----------
    device:
        GPU whose link bandwidth is used (``device.pcie_bandwidth``).
    links_per_node:
        ``N_PCIe``: independent PCIe connectors per node (ABCI has 2).
    gpus_per_node:
        GPUs sharing those links (ABCI has 4, i.e. 2 GPUs per switch).
    latency:
        Fixed per-transfer latency (driver + DMA setup), seconds.
    """

    device: DeviceSpec = TESLA_V100
    links_per_node: int = 2
    gpus_per_node: int = 4
    latency: float = 10e-6

    def __post_init__(self) -> None:
        if self.links_per_node <= 0 or self.gpus_per_node <= 0:
            raise ValueError("links_per_node and gpus_per_node must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    # ------------------------------------------------------------------ #
    @property
    def per_gpu_bandwidth(self) -> float:
        """Effective bandwidth available to one GPU when all GPUs transfer.

        With ``gpus_per_node`` GPUs sharing ``links_per_node`` links, each
        concurrent transfer sees the link bandwidth divided by the number of
        GPUs per link (the PCIe-switch contention noted in Section 5.3.3).
        """
        gpus_per_link = self.gpus_per_node / self.links_per_node
        return self.device.pcie_bandwidth / gpus_per_link

    def transfer_seconds(self, nbytes: int, *, contended: bool = True) -> float:
        """Time to move ``nbytes`` across PCIe for one GPU."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        bandwidth = self.per_gpu_bandwidth if contended else self.device.pcie_bandwidth
        return self.latency + nbytes / bandwidth

    # ------------------------------------------------------------------ #
    # The aggregate node-level terms of the performance model
    # ------------------------------------------------------------------ #
    def node_h2d_seconds(self, total_bytes_per_node: int) -> float:
        """Time for one node to push ``total_bytes_per_node`` host->device."""
        if total_bytes_per_node < 0:
            raise ValueError("total_bytes_per_node must be non-negative")
        aggregate = self.device.pcie_bandwidth * self.links_per_node
        return self.latency + total_bytes_per_node / aggregate

    def node_d2h_seconds(self, total_bytes_per_node: int) -> float:
        """Time for one node to pull ``total_bytes_per_node`` device->host."""
        return self.node_h2d_seconds(total_bytes_per_node)
