"""Detector read-path models: texture cache, L1/__ldg and plain global loads.

Table 3 distinguishes the kernel variants by how they fetch the (possibly
transposed) projection during back-projection:

* **Texture path** (RTK-32, Bp-Tex, Tex-Tran) — reads are serviced by the 2-D
  layered texture cache; spatial locality is good regardless of layout, so
  the effective DRAM traffic per voxel update is nearly constant.
* **L1 path** (L1-Tran) — reads go through ``__ldg`` into the per-SM L1;
  combined with the transposed projection and the k-major volume layout the
  accesses are contiguous, which roughly halves the per-update traffic.
* **Plain global path** (Bp-L1) — no texture, no ``__ldg``: reads are only
  cached in L2, so the effective traffic depends strongly on whether the
  projection's working set fits in the 6 MB L2 (this is what makes Bp-L1
  competitive for 512² projections and poor for 2k² projections in Table 4).

Each model returns *effective DRAM bytes per voxel update*, the quantity the
throughput model of :mod:`repro.gpusim.costmodel` needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec

__all__ = [
    "ReadPathModel",
    "TextureReadPath",
    "L1ReadPath",
    "GlobalReadPath",
    "read_path_for",
]

#: Reference projection size used to normalize cache-pressure effects (2k²·4B).
_REFERENCE_PROJ_BYTES = 2048 * 2048 * 4


@dataclass(frozen=True)
class ReadPathModel:
    """Base read-path model: constant effective bytes per update."""

    base_bytes_per_update: float
    cache_pressure_bytes: float = 0.0

    def bytes_per_update(self, projection_bytes: int, device: DeviceSpec) -> float:
        """Effective DRAM bytes fetched from the projection per voxel update."""
        pressure = min(projection_bytes / _REFERENCE_PROJ_BYTES, 1.0)
        return self.base_bytes_per_update + self.cache_pressure_bytes * pressure


@dataclass(frozen=True)
class TextureReadPath(ReadPathModel):
    """2-D layered texture fetches (RTK-32, Bp-Tex, Tex-Tran)."""

    base_bytes_per_update: float = 6.1
    cache_pressure_bytes: float = 0.1


@dataclass(frozen=True)
class L1ReadPath(ReadPathModel):
    """``__ldg``/L1 fetches of a transposed projection (L1-Tran)."""

    base_bytes_per_update: float = 3.25
    cache_pressure_bytes: float = 0.25


@dataclass(frozen=True)
class GlobalReadPath(ReadPathModel):
    """Uncached global loads (Bp-L1): effectiveness set by L2 residency.

    The hit fraction falls linearly from 1 to ``min_hit_fraction`` as the
    projection grows from a small fraction of L2 to several times its size.
    """

    base_bytes_per_update: float = 6.4
    miss_bytes_per_update: float = 22.0
    min_hit_fraction: float = 0.2

    def bytes_per_update(self, projection_bytes: int, device: DeviceSpec) -> float:
        ratio = projection_bytes / device.l2_cache_bytes
        hit = max(self.min_hit_fraction, min(1.0, 1.2 - ratio))
        return hit * self.base_bytes_per_update + (1.0 - hit) * self.miss_bytes_per_update


def read_path_for(uses_texture: bool, uses_l1: bool) -> ReadPathModel:
    """Read-path model matching a Table 3 characteristics row."""
    if uses_texture and uses_l1:
        raise ValueError("a kernel uses either the texture path or the L1 path")
    if uses_texture:
        return TextureReadPath()
    if uses_l1:
        return L1ReadPath()
    return GlobalReadPath()
