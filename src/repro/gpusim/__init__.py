"""Simulated GPU substrate for the iFDK reproduction.

The paper runs its back-projection kernels on Tesla V100 GPUs; this package
replaces the physical device with (a) an explicit architectural model
(:mod:`~repro.gpusim.device`), (b) numerically exact NumPy executions of the
five kernel variants of Table 3 (:mod:`~repro.gpusim.kernels`) and (c) a
roofline-style throughput model that regenerates Table 4
(:mod:`~repro.gpusim.costmodel`).  Device-memory capacity constraints and
PCIe transfer costs — both of which shape the distributed design — are
modelled in :mod:`~repro.gpusim.memory` and :mod:`~repro.gpusim.transfer`.
"""

from .costmodel import (
    BackprojectionCostModel,
    KernelTiming,
    predict_gups,
    predict_table4,
)
from .device import A100_40GB, TESLA_P100, TESLA_V100, DeviceSpec
from .kernels import (
    BP_L1,
    BP_TEX,
    DEFAULT_PROJECTION_BATCH,
    KERNEL_VARIANTS,
    L1_TRAN,
    RTK_32,
    TEX_TRAN,
    KernelVariant,
    get_kernel,
    shfl_bp_reference,
)
from .memory import DeviceAllocation, DeviceMemoryPool, DeviceOutOfMemoryError
from .texture import GlobalReadPath, L1ReadPath, ReadPathModel, TextureReadPath
from .transfer import PCIeModel
from .warp import FULL_MASK, Warp

__all__ = [
    "A100_40GB",
    "BP_L1",
    "BP_TEX",
    "BackprojectionCostModel",
    "DEFAULT_PROJECTION_BATCH",
    "DeviceAllocation",
    "DeviceMemoryPool",
    "DeviceOutOfMemoryError",
    "DeviceSpec",
    "FULL_MASK",
    "GlobalReadPath",
    "KERNEL_VARIANTS",
    "KernelTiming",
    "KernelVariant",
    "L1ReadPath",
    "L1_TRAN",
    "PCIeModel",
    "RTK_32",
    "ReadPathModel",
    "TESLA_P100",
    "TESLA_V100",
    "TEX_TRAN",
    "TextureReadPath",
    "Warp",
    "get_kernel",
    "predict_gups",
    "predict_table4",
    "shfl_bp_reference",
]
