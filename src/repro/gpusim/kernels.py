"""The back-projection kernel variants of Table 3.

The paper compares five CUDA kernels on a V100 (Tables 3 and 4):

========  ============= ========= ===================== =================
Kernel    Texture cache L1 cache  Transpose projection  Transpose volume
========  ============= ========= ===================== =================
RTK-32    yes           no        no                    no
Bp-Tex    yes           no        no                    yes
Tex-Tran  yes           no        yes                   yes
Bp-L1     no            no        yes                   yes
L1-Tran   no            yes       yes                   yes
========  ============= ========= ===================== =================

RTK-32 executes the *standard* Algorithm 2; the other four execute the
*proposed* Algorithm 4 and differ only in their detector read path and
layout choices — which change performance, never results.  Accordingly each
:class:`KernelVariant` here couples

* a numerically exact NumPy execution (delegating to
  :mod:`repro.core.backprojection`), used by the correctness tests and the
  functional distributed runs, and
* the architectural characteristics the throughput model of
  :mod:`repro.gpusim.costmodel` needs to predict its GUPS on a given device.

:func:`shfl_bp_reference` is additionally a literal, warp-level transcription
of Listing 1 (the ``shflBP`` kernel), used to validate that the shuffle-based
formulation produces the same voxel values as Algorithm 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.backprojection import accumulate_proposed, accumulate_standard
from ..core.geometry import CBCTGeometry, ProjectionMatrix
from ..core.interpolation import interp2
from ..core.types import DEFAULT_DTYPE, ProjectionStack, Volume
from .texture import ReadPathModel, read_path_for
from .warp import FULL_MASK, Warp

__all__ = [
    "KernelVariant",
    "KERNEL_VARIANTS",
    "RTK_32",
    "BP_TEX",
    "TEX_TRAN",
    "BP_L1",
    "L1_TRAN",
    "get_kernel",
    "shfl_bp_reference",
    "DEFAULT_PROJECTION_BATCH",
]

#: ``Nbatch`` in Listing 1: projections staged per kernel launch.
DEFAULT_PROJECTION_BATCH = 32


@dataclass(frozen=True)
class KernelVariant:
    """One back-projection kernel variant (a row of Table 3).

    Attributes
    ----------
    name:
        The paper's kernel name.
    algorithm:
        ``"standard"`` (Algorithm 2) or ``"proposed"`` (Algorithm 4).
    uses_texture, uses_l1:
        Detector read path (mutually exclusive; neither means plain global
        loads through L2 only).
    transpose_projection, transpose_volume:
        Layout choices of Table 3.
    flops_per_update:
        Arithmetic cost of one voxel update (coordinate computation,
        weighting and bilinear interpolation).
    projection_prep_passes:
        Number of full passes over the projection's bytes needed before the
        kernel can use it (copy into a texture array and/or transpose).
    """

    name: str
    algorithm: str
    uses_texture: bool
    uses_l1: bool
    transpose_projection: bool
    transpose_volume: bool
    flops_per_update: float
    projection_prep_passes: float
    max_output_bytes: Optional[int] = None
    detector_bytes_base: Optional[float] = None
    detector_bytes_pressure: Optional[float] = None
    #: Device-memory footprint of the output volume relative to its size
    #: (RTK's dual-buffered volume needs 2x, which is why Table 4 marks its
    #: >8 GB outputs as N/A on a 16 GB V100).
    output_memory_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.algorithm not in ("standard", "proposed"):
            raise ValueError("algorithm must be 'standard' or 'proposed'")
        if self.uses_texture and self.uses_l1:
            raise ValueError("texture and L1 read paths are mutually exclusive")

    # ------------------------------------------------------------------ #
    @property
    def read_path(self) -> ReadPathModel:
        """Detector read-path model for the cost model.

        ``detector_bytes_base``/``detector_bytes_pressure`` override the
        defaults of the path class — used to express second-order locality
        effects the paper observes (e.g. the untransposed texture access of
        Bp-Tex is slightly less cache friendly than Tex-Tran's).
        """
        path = read_path_for(self.uses_texture, self.uses_l1)
        if self.detector_bytes_base is None and self.detector_bytes_pressure is None:
            return path
        from dataclasses import replace as _replace

        kwargs = {}
        if self.detector_bytes_base is not None:
            kwargs["base_bytes_per_update"] = self.detector_bytes_base
        if self.detector_bytes_pressure is not None:
            kwargs["cache_pressure_bytes"] = self.detector_bytes_pressure
        return _replace(path, **kwargs)

    def characteristics(self) -> Dict[str, bool]:
        """The Table 3 row for this kernel."""
        return {
            "Texture cache": self.uses_texture,
            "L1 cache": self.uses_l1,
            "Transpose projection": self.transpose_projection,
            "Transpose volume": self.transpose_volume,
        }

    def supports_output_bytes(self, nbytes: int) -> bool:
        """Whether the kernel can generate an output volume of ``nbytes``.

        ``max_output_bytes`` is an explicit cap; the dual-buffering of RTK is
        expressed through :attr:`output_memory_multiplier` and checked against
        the device capacity by the cost model.
        """
        if self.max_output_bytes is None:
            return True
        return nbytes <= self.max_output_bytes

    def device_output_bytes(self, nbytes: int) -> float:
        """Device-memory footprint of an output volume of ``nbytes``."""
        return self.output_memory_multiplier * nbytes

    # ------------------------------------------------------------------ #
    # Numerically exact execution (NumPy)
    # ------------------------------------------------------------------ #
    def backproject(
        self,
        stack: ProjectionStack,
        geometry: CBCTGeometry,
        *,
        z_range: Optional[Tuple[int, int]] = None,
    ) -> Volume:
        """Run this kernel's algorithm exactly (results, not timing)."""
        z_start, z_stop = z_range if z_range is not None else (0, geometry.nz)
        nz_local = z_stop - z_start
        matrices = geometry.projection_matrices(stack.angles)
        if self.algorithm == "standard":
            out = np.zeros((nz_local, geometry.ny, geometry.nx), dtype=DEFAULT_DTYPE)
            for pm, projection in zip(matrices, stack.data):
                accumulate_standard(out, projection, pm, z_range=(z_start, z_stop))
            return Volume(data=out, voxel_pitch=geometry.voxel_pitch)
        kmajor = np.zeros((geometry.nx, geometry.ny, nz_local), dtype=DEFAULT_DTYPE)
        for pm, projection in zip(matrices, stack.data):
            projection_t = np.ascontiguousarray(projection.T)
            accumulate_proposed(
                kmajor, projection_t, pm, z_range=(z_start, z_stop)
            )
        data = np.ascontiguousarray(kmajor.transpose(2, 1, 0), dtype=DEFAULT_DTYPE)
        return Volume(data=data, voxel_pitch=geometry.voxel_pitch)


#: RTK 1.4.0's ``kernel_fdk_3Dgrid`` extended to 32-projection batches.
RTK_32 = KernelVariant(
    name="RTK-32",
    algorithm="standard",
    uses_texture=True,
    uses_l1=False,
    transpose_projection=False,
    transpose_volume=False,
    flops_per_update=36.0,
    projection_prep_passes=2.0,
    output_memory_multiplier=2.0,  # dual-buffered volume (Section 5.2)
)

#: shflBP reading the untransposed projection through the texture unit.
#: Its u-major access order makes the 2-D texture fetches slightly less
#: cache friendly than Tex-Tran's, which is what the paper observes when
#: comparing the two (Section 5.2, observation I).
BP_TEX = KernelVariant(
    name="Bp-Tex",
    algorithm="proposed",
    uses_texture=True,
    uses_l1=False,
    transpose_projection=False,
    transpose_volume=True,
    flops_per_update=20.0,
    projection_prep_passes=2.0,
    detector_bytes_base=6.6,
    detector_bytes_pressure=0.8,
)

#: shflBP with transposed projections, still through the texture unit.
TEX_TRAN = KernelVariant(
    name="Tex-Tran",
    algorithm="proposed",
    uses_texture=True,
    uses_l1=False,
    transpose_projection=True,
    transpose_volume=True,
    flops_per_update=20.0,
    projection_prep_passes=4.0,
)

#: shflBP with transposed projections read as plain global loads.
BP_L1 = KernelVariant(
    name="Bp-L1",
    algorithm="proposed",
    uses_texture=False,
    uses_l1=False,
    transpose_projection=True,
    transpose_volume=True,
    flops_per_update=20.0,
    projection_prep_passes=2.0,
)

#: The proposed kernel: transposed projection through ``__ldg``/L1.
L1_TRAN = KernelVariant(
    name="L1-Tran",
    algorithm="proposed",
    uses_texture=False,
    uses_l1=True,
    transpose_projection=True,
    transpose_volume=True,
    flops_per_update=20.0,
    projection_prep_passes=2.0,
)

#: All Table 3 kernels in the paper's column order.
KERNEL_VARIANTS = (RTK_32, BP_TEX, TEX_TRAN, BP_L1, L1_TRAN)

_KERNELS_BY_NAME = {k.name.lower(): k for k in KERNEL_VARIANTS}


def get_kernel(name: str) -> KernelVariant:
    """Look up a kernel variant by its Table 3 name (case insensitive)."""
    try:
        return _KERNELS_BY_NAME[name.lower()]
    except KeyError:
        valid = ", ".join(k.name for k in KERNEL_VARIANTS)
        raise ValueError(f"unknown kernel {name!r}; valid kernels: {valid}") from None


# --------------------------------------------------------------------------- #
# Literal transcription of Listing 1 (shflBP) for one warp
# --------------------------------------------------------------------------- #
def shfl_bp_reference(
    stack: ProjectionStack,
    geometry: CBCTGeometry,
    voxel_ijk: Tuple[int, int, int],
    *,
    warp: Optional[Warp] = None,
) -> Tuple[float, float]:
    """Execute Listing 1 for a single voxel/warp and a batch of projections.

    One CUDA thread of the ``shflBP`` kernel owns the voxel ``(i, j, k)`` and
    its Z-mirror.  The first ``Np`` lanes of the warp each hold the
    ``Z = 1/z`` and ``U = u`` registers of one projection in the batch
    (computed for this thread's voxel), and the loop over the batch reads
    them back through ``__shfl_sync``.

    Returns ``(sum, sum_mirror)``: the contributions this batch adds to the
    voxel and to its mirror — exactly the two ``mad`` accumulators of
    Listing 1.  The test-suite checks these against Algorithm 4.
    """
    if stack.np_ > DEFAULT_PROJECTION_BATCH:
        raise ValueError(
            f"shflBP processes at most {DEFAULT_PROJECTION_BATCH} projections per launch"
        )
    i, j, k = voxel_ijk
    if not (0 <= i < geometry.nx and 0 <= j < geometry.ny and 0 <= k < geometry.nz):
        raise ValueError(f"voxel {voxel_ijk} outside the volume")
    warp = warp or Warp(width=DEFAULT_PROJECTION_BATCH)
    matrices = geometry.projection_matrices(stack.angles)

    # Constant memory: ProjMat[32][3] — one 3x4 matrix per lane.
    # Each lane computes its own Z and U registers (Listing 1 lines 11-14).
    for lane, pm in enumerate(matrices):
        p = pm.matrix
        vec = np.array([i, j, k, 1.0])  # note: k plays no role in rows 0 and 2
        z = 1.0 / float(p[2] @ vec)
        u = float(p[0] @ vec) * z
        warp.write(lane, "Z", z)
        warp.write(lane, "U", u)

    nv = geometry.nv
    total = 0.0
    total_mirror = 0.0
    for s, pm in enumerate(matrices):
        # Listing 1 lines 19-20: broadcast lane s's registers to all lanes.
        u = warp.shfl_sync(FULL_MASK, "U", s)[0]
        f = warp.shfl_sync(FULL_MASK, "Z", s)[0]
        w_dis = f * f
        p = pm.matrix
        v = float(p[1] @ np.array([i, j, k, 1.0])) * f
        v_mirror = (nv - 1) - v
        projection_t = np.ascontiguousarray(stack.data[s].T)
        # interp2 on the transposed projection: arguments (Q~, v, u).
        total += w_dis * interp2(projection_t, v, u)
        total_mirror += w_dis * interp2(projection_t, v_mirror, u)
    return total, total_mirror
