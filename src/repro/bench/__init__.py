"""Workload definitions, calibration constants and reporting helpers shared
by the benchmark harness that regenerates the paper's tables and figures."""

from .calibration import PAPER_CALIBRATION, CalibrationEntry, abci_microbenchmarks
from .reporting import format_scaling_figure, format_table, paper_reference_table4
from .trajectory import (
    HISTORY_LIMIT,
    REGRESSION_THRESHOLD,
    check_regression,
    format_trajectory,
    git_sha,
    load_record,
    trajectory_entry,
)
from .workloads import (
    FIGURE6_GPU_COUNTS,
    PROBLEM_2K,
    PROBLEM_4K,
    PROBLEM_8K,
    STRONG_SCALING_4K_GPUS,
    STRONG_SCALING_8K_GPUS,
    TABLE4_PROBLEMS,
    DistributedWorkload,
    figure6_workloads,
    scaled_for_functional_run,
    strong_scaling_4k,
    strong_scaling_8k,
    weak_scaling_4k,
    weak_scaling_8k,
)

__all__ = [
    "CalibrationEntry",
    "DistributedWorkload",
    "FIGURE6_GPU_COUNTS",
    "HISTORY_LIMIT",
    "PAPER_CALIBRATION",
    "PROBLEM_2K",
    "PROBLEM_4K",
    "PROBLEM_8K",
    "REGRESSION_THRESHOLD",
    "STRONG_SCALING_4K_GPUS",
    "STRONG_SCALING_8K_GPUS",
    "TABLE4_PROBLEMS",
    "abci_microbenchmarks",
    "check_regression",
    "figure6_workloads",
    "format_scaling_figure",
    "format_table",
    "format_trajectory",
    "git_sha",
    "load_record",
    "paper_reference_table4",
    "scaled_for_functional_run",
    "strong_scaling_4k",
    "strong_scaling_8k",
    "trajectory_entry",
    "weak_scaling_4k",
    "weak_scaling_8k",
]
