"""Bench trajectory: the tracked history behind ``BENCH_backend_speed.json``.

The backend speed benchmark used to overwrite its result file on every run,
so the repo only ever knew the *latest* hot-path number.  This module turns
that file into a trajectory: each benchmark run appends one history entry
(git sha, UTC date, host cpu count, per-backend GUPS) and the tier-1 suite
compares the newest entry against the most recent *prior* entry measured on
the same host profile, failing on a throughput regression larger than
:data:`REGRESSION_THRESHOLD`.

Numbers measured on different hosts are not comparable — a 1-cpu CI runner
is not a 16-core workstation — so comparisons are gated on the host profile
(today: the cpu count).  Entries from other profiles are kept in the
history but never compared against.

Run ``python -m repro.bench.trajectory`` for the report-only view used by
CI: it prints the trajectory and any detected regressions but exits 0
unless ``--strict`` is given.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "HISTORY_LIMIT",
    "REGRESSION_THRESHOLD",
    "check_regression",
    "format_trajectory",
    "git_sha",
    "load_record",
    "trajectory_entry",
]

#: Largest allowed GUPS drop vs the previous same-profile entry (fractional).
REGRESSION_THRESHOLD = 0.25

#: History entries kept per record; the oldest are dropped beyond this.
HISTORY_LIMIT = 50

_REQUIRED_ENTRY_KEYS = ("sha", "date", "cpus", "gups")


def git_sha(repo_root: Optional[Path] = None) -> str:
    """Short git sha of ``repo_root`` (``"unknown"`` outside a checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_root) if repo_root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def trajectory_entry(record: Dict, *, sha: str, date: str) -> Dict:
    """One history entry derived from a fresh benchmark ``record``.

    ``record`` is the flat document the speed benchmark builds (``cpus``
    plus a ``backends`` mapping whose values carry ``gups``); ``date`` is
    an ISO-8601 UTC date string supplied by the caller so the entry stays
    reproducible from the outside.
    """
    backends = record.get("backends")
    if not isinstance(backends, dict) or not backends:
        raise ValueError("benchmark record has no 'backends' mapping")
    gups = {}
    for name, result in backends.items():
        if "gups" not in result:
            raise ValueError(f"backend {name!r} result has no 'gups' field")
        gups[name] = float(result["gups"])
    return {
        "sha": str(sha),
        "date": str(date),
        "cpus": int(record.get("cpus") or 1),
        "gups": gups,
    }


def load_record(path) -> Dict:
    """Load and validate a benchmark record file (history may be absent)."""
    try:
        record = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read benchmark record {path}: {exc}") from exc
    if not isinstance(record, dict) or "backends" not in record:
        raise ValueError(
            f"{path} is not a benchmark record (no 'backends' mapping)"
        )
    history = record.get("history", [])
    if not isinstance(history, list):
        raise ValueError(f"{path}: 'history' must be a list")
    for index, entry in enumerate(history):
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: history[{index}] is not an object")
        missing = [key for key in _REQUIRED_ENTRY_KEYS if key not in entry]
        if missing:
            raise ValueError(
                f"{path}: history[{index}] is missing {missing}"
            )
    return record


def check_regression(
    history: List[Dict], *, threshold: float = REGRESSION_THRESHOLD
) -> List[str]:
    """Regressions of the newest entry vs its same-profile predecessor.

    Returns one human-readable line per backend whose latest GUPS fell more
    than ``threshold`` (fractional) below the most recent earlier entry
    with the same ``cpus`` profile.  An empty list means no regression —
    including the no-comparison cases (fewer than two entries, or no prior
    entry on this host profile).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    if len(history) < 2:
        return []
    latest = history[-1]
    previous = next(
        (
            entry
            for entry in reversed(history[:-1])
            if entry.get("cpus") == latest.get("cpus")
        ),
        None,
    )
    if previous is None:
        return []
    regressions = []
    for name, new_gups in sorted(latest.get("gups", {}).items()):
        old_gups = previous.get("gups", {}).get(name)
        if old_gups is None or old_gups <= 0:
            continue
        drop = 1.0 - float(new_gups) / float(old_gups)
        if drop > threshold:
            regressions.append(
                f"{name}: {old_gups:.4f} -> {float(new_gups):.4f} GUPS "
                f"({drop:.0%} drop > {threshold:.0%} allowed; "
                f"{previous['sha']} -> {latest['sha']}, cpus={latest['cpus']})"
            )
    return regressions


def format_trajectory(record: Dict) -> str:
    """Human-readable trajectory report for one benchmark record."""
    history = record.get("history", [])
    lines = [f"bench trajectory: {record.get('benchmark', '?')}"]
    if not history:
        lines.append("  (no history entries yet)")
        return "\n".join(lines)
    backends = sorted({name for entry in history for name in entry["gups"]})
    for entry in history:
        gups = "  ".join(
            f"{name}={entry['gups'].get(name, float('nan')):.4f}"
            for name in backends
        )
        lines.append(
            f"  {entry['date']}  {entry['sha']:>9}  cpus={entry['cpus']:<3} {gups}"
        )
    regressions = check_regression(history)
    if regressions:
        lines.append("regressions (latest vs previous same-host entry):")
        lines.extend(f"  REGRESSION {line}" for line in regressions)
    else:
        lines.append("no regression vs previous same-host entry")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Report-only CLI: ``python -m repro.bench.trajectory [record.json]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.trajectory",
        description="Report the tracked benchmark trajectory.",
    )
    parser.add_argument(
        "record",
        nargs="?",
        default=str(
            Path(__file__).resolve().parents[3] / "BENCH_backend_speed.json"
        ),
        help="benchmark record file (default: repo BENCH_backend_speed.json)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on a detected regression (default: report only)",
    )
    args = parser.parse_args(argv)
    try:
        record = load_record(args.record)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(format_trajectory(record))
    if args.strict and check_regression(record.get("history", [])):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
