"""Workload definitions shared by the benchmark harness.

Two families of workloads appear in the paper's evaluation:

* **Table 4 problems** — fifteen single-GPU back-projection problems formed
  by three input sizes (512²×1k, 1k³, 2k²×1k) and five output sizes
  (128³ … 1k²×2k).
* **Distributed problems** — the 4K (2048²×4096 → 4096³) and 8K
  (2048²×4096 → 8192³) reconstructions of Figures 5/6 and Table 5, plus the
  2048³ output used in Figure 6 and the Figure 7 example.

The at-scale problems are evaluated through the performance model; the
functional (NumPy) runs use :func:`scaled_for_functional_run` to shrink a
problem to something a laptop/CI machine can execute while preserving the
grid shape and aspect ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.types import ReconstructionProblem, problem_from_string

__all__ = [
    "TABLE4_PROBLEMS",
    "PROBLEM_4K",
    "PROBLEM_8K",
    "PROBLEM_2K",
    "STRONG_SCALING_4K_GPUS",
    "STRONG_SCALING_8K_GPUS",
    "WEAK_SCALING_4K",
    "WEAK_SCALING_8K",
    "FIGURE6_GPU_COUNTS",
    "DistributedWorkload",
    "scaled_for_functional_run",
]

#: The fifteen Table 4 problems, in the paper's row order.
TABLE4_PROBLEMS: List[ReconstructionProblem] = [
    problem_from_string(spec)
    for spec in (
        "512x512x1024->128x128x128",
        "512x512x1024->256x256x256",
        "512x512x1024->512x512x512",
        "512x512x1024->1024x1024x1024",
        "512x512x1024->1024x1024x2048",
        "1024x1024x1024->128x128x128",
        "1024x1024x1024->256x256x256",
        "1024x1024x1024->512x512x512",
        "1024x1024x1024->1024x1024x1024",
        "1024x1024x1024->1024x1024x2048",
        "2048x2048x1024->128x128x128",
        "2048x2048x1024->256x256x256",
        "2048x2048x1024->512x512x512",
        "2048x2048x1024->1024x1024x1024",
        "2048x2048x1024->1024x1024x2048",
    )
]

#: The 4K image-reconstruction problem (Figures 5a/5c, Table 5 upper half).
PROBLEM_4K = problem_from_string("2048x2048x4096->4096x4096x4096")
#: The 8K image-reconstruction problem (Figures 5b/5d, Table 5 lower half).
PROBLEM_8K = problem_from_string("2048x2048x4096->8192x8192x8192")
#: The 2K output evaluated in Figure 6 and reconstructed in Figure 7.
PROBLEM_2K = problem_from_string("2048x2048x4096->2048x2048x2048")


@dataclass(frozen=True)
class DistributedWorkload:
    """One point of a scaling experiment: problem + rank-grid shape."""

    problem: ReconstructionProblem
    rows: int
    columns: int
    label: str = ""

    @property
    def n_gpus(self) -> int:
        return self.rows * self.columns


def _strong_scaling(problem: ReconstructionProblem, rows: int, gpu_counts) -> List[DistributedWorkload]:
    points = []
    for gpus in gpu_counts:
        if gpus % rows != 0:
            raise ValueError(f"{gpus} GPUs not divisible by R={rows}")
        points.append(
            DistributedWorkload(
                problem=problem, rows=rows, columns=gpus // rows, label=f"{gpus} GPUs"
            )
        )
    return points


#: GPU counts evaluated for the 4K strong-scaling experiment (Figure 5a).
STRONG_SCALING_4K_GPUS = (32, 64, 128, 256, 512, 1024, 2048)
#: GPU counts evaluated for the 8K strong-scaling experiment (Figure 5b).
STRONG_SCALING_8K_GPUS = (256, 512, 1024, 2048)


def strong_scaling_4k() -> List[DistributedWorkload]:
    """Figure 5a: 2048²×4096 → 4096³ with R=32, C = N_gpus/32."""
    return _strong_scaling(PROBLEM_4K, rows=32, gpu_counts=STRONG_SCALING_4K_GPUS)


def strong_scaling_8k() -> List[DistributedWorkload]:
    """Figure 5b: 2048²×4096 → 8192³ with R=256, C = N_gpus/256."""
    return _strong_scaling(PROBLEM_8K, rows=256, gpu_counts=STRONG_SCALING_8K_GPUS)


def _weak_scaling(
    base: ReconstructionProblem, rows: int, proj_per_gpu: int, gpu_counts
) -> List[DistributedWorkload]:
    points = []
    for gpus in gpu_counts:
        problem = ReconstructionProblem(
            nu=base.nu,
            nv=base.nv,
            np_=proj_per_gpu * gpus,
            nx=base.nx,
            ny=base.ny,
            nz=base.nz,
        )
        points.append(
            DistributedWorkload(
                problem=problem, rows=rows, columns=gpus // rows, label=f"{gpus} GPUs"
            )
        )
    return points


#: Figure 5c: Np = 16 · N_gpus projections, R = 32.
WEAK_SCALING_4K = dict(rows=32, proj_per_gpu=16, gpu_counts=STRONG_SCALING_4K_GPUS)
#: Figure 5d: Np = 4 · N_gpus projections, R = 256.
WEAK_SCALING_8K = dict(rows=256, proj_per_gpu=4, gpu_counts=STRONG_SCALING_8K_GPUS)


def weak_scaling_4k() -> List[DistributedWorkload]:
    """Figure 5c workloads."""
    return _weak_scaling(PROBLEM_4K, **WEAK_SCALING_4K)


def weak_scaling_8k() -> List[DistributedWorkload]:
    """Figure 5d workloads."""
    return _weak_scaling(PROBLEM_8K, **WEAK_SCALING_8K)


#: GPU counts of Figure 6 (three output sizes share the x axis).
FIGURE6_GPU_COUNTS = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)


def figure6_workloads() -> Dict[str, List[DistributedWorkload]]:
    """Figure 6: end-to-end GUPS for 2048³ / 4096³ / 8192³ outputs.

    ``R`` for each output size follows Equation 7 with an 8 GB sub-volume
    (2048³ → R=4, 4096³ → R=32, 8192³ → R=256); GPU counts below R are
    skipped exactly as in the paper's figure.
    """
    series: Dict[str, List[DistributedWorkload]] = {"2048^3": [], "4096^3": [], "8192^3": []}
    for gpus in FIGURE6_GPU_COUNTS:
        for label, problem, rows in (
            ("2048^3", PROBLEM_2K, 4),
            ("4096^3", PROBLEM_4K, 32),
            ("8192^3", PROBLEM_8K, 256),
        ):
            if gpus % rows == 0 and gpus >= rows:
                series[label].append(
                    DistributedWorkload(
                        problem=problem, rows=rows, columns=gpus // rows,
                        label=f"{gpus} GPUs",
                    )
                )
    return series


def scaled_for_functional_run(
    workload: DistributedWorkload,
    *,
    max_volume: int = 64,
    max_detector: int = 96,
    max_projections: int = 64,
    max_ranks: int = 16,
) -> Tuple[ReconstructionProblem, int, int]:
    """Shrink an at-scale workload so it can actually run in this environment.

    Returns ``(problem, rows, columns)`` with the same grid aspect ratio but
    at most ``max_ranks`` ranks, a volume of at most ``max_volume`` voxels per
    side and ``max_projections`` projections (kept divisible by R·C).
    """
    rows, columns = workload.rows, workload.columns
    while rows * columns > max_ranks:
        if columns > 1:
            columns = max(1, columns // 2)
        else:
            rows = max(1, rows // 2)
    p = workload.problem
    nx = min(p.nx, max_volume)
    ny = min(p.ny, max_volume)
    nz = min(p.nz, max_volume)
    nz = (nz // rows) * rows or rows
    nu = min(p.nu, max_detector)
    nv = min(p.nv, max_detector)
    np_ = min(p.np_, max_projections)
    granularity = rows * columns
    np_ = max(granularity, (np_ // granularity) * granularity)
    return (
        ReconstructionProblem(nu=nu, nv=nv, np_=np_, nx=nx, ny=ny, nz=nz),
        rows,
        columns,
    )
