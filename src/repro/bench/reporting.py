"""Formatting helpers: print tables and figure series the way the paper does.

Every benchmark regenerates its table/figure as structured rows and then
renders them through these helpers, so ``pytest benchmarks/ --benchmark-only
-s`` prints output that can be compared side-by-side with the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_scaling_figure", "paper_reference_table4"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    *,
    title: str = "",
    float_format: str = "{:.1f}",
) -> str:
    """Render a list of row dictionaries as a fixed-width text table."""
    if not rows:
        return f"{title}\n(empty)"

    def render(value: object) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "N/A"
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.rjust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for r in rendered:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(r, widths)))
    return "\n".join(lines)


def format_scaling_figure(
    series: Mapping[str, Sequence[Mapping[str, float]]],
    *,
    x_key: str,
    y_key: str,
    title: str = "",
    y_format: str = "{:.1f}",
) -> str:
    """Render figure-style series (one line per series, points as x:y pairs)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, points in series.items():
        pairs = "  ".join(
            f"{int(p[x_key])}:{y_format.format(p[y_key])}" for p in points
        )
        lines.append(f"{name:>10s}  {pairs}")
    return "\n".join(lines)


#: The published Table 4 (GUPS), used by the benchmarks to report agreement.
#: ``None`` marks the paper's "N/A" entries (RTK-32 cannot generate >8 GB).
paper_reference_table4: Dict[str, Dict[str, Optional[float]]] = {
    "512x512x1024->128x128x128": {
        "RTK-32": 65.3, "Bp-Tex": 38.8, "Tex-Tran": 46.5, "Bp-L1": 23.7, "L1-Tran": 118.0,
    },
    "512x512x1024->256x256x256": {
        "RTK-32": 107.4, "Bp-Tex": 96.2, "Tex-Tran": 98.9, "Bp-L1": 28.0, "L1-Tran": 188.6,
    },
    "512x512x1024->512x512x512": {
        "RTK-32": 115.1, "Bp-Tex": 105.8, "Tex-Tran": 106.1, "Bp-L1": 34.0, "L1-Tran": 206.0,
    },
    "512x512x1024->1024x1024x1024": {
        "RTK-32": 118.1, "Bp-Tex": 107.3, "Tex-Tran": 107.3, "Bp-L1": 64.9, "L1-Tran": 211.4,
    },
    "512x512x1024->1024x1024x2048": {
        "RTK-32": None, "Bp-Tex": 107.4, "Tex-Tran": 107.6, "Bp-L1": 112.1, "L1-Tran": 212.7,
    },
    "1024x1024x1024->128x128x128": {
        "RTK-32": 41.9, "Bp-Tex": 13.8, "Tex-Tran": 13.5, "Bp-L1": 5.7, "L1-Tran": 27.2,
    },
    "1024x1024x1024->256x256x256": {
        "RTK-32": 77.4, "Bp-Tex": 35.9, "Tex-Tran": 43.2, "Bp-L1": 12.8, "L1-Tran": 83.7,
    },
    "1024x1024x1024->512x512x512": {
        "RTK-32": 115.7, "Bp-Tex": 95.5, "Tex-Tran": 98.1, "Bp-L1": 25.1, "L1-Tran": 190.3,
    },
    "1024x1024x1024->1024x1024x1024": {
        "RTK-32": 117.9, "Bp-Tex": 105.8, "Tex-Tran": 105.8, "Bp-L1": 34.0, "L1-Tran": 205.7,
    },
    "1024x1024x1024->1024x1024x2048": {
        "RTK-32": None, "Bp-Tex": 106.3, "Tex-Tran": 106.5, "Bp-L1": 65.0, "L1-Tran": 207.9,
    },
    "2048x2048x1024->128x128x128": {
        "RTK-32": 16.1, "Bp-Tex": 5.8, "Tex-Tran": 8.5, "Bp-L1": 2.8, "L1-Tran": 7.7,
    },
    "2048x2048x1024->256x256x256": {
        "RTK-32": 38.6, "Bp-Tex": 12.7, "Tex-Tran": 12.6, "Bp-L1": 4.4, "L1-Tran": 24.1,
    },
    "2048x2048x1024->512x512x512": {
        "RTK-32": 80.2, "Bp-Tex": 35.5, "Tex-Tran": 42.5, "Bp-L1": 13.9, "L1-Tran": 81.6,
    },
    "2048x2048x1024->1024x1024x1024": {
        "RTK-32": 116.9, "Bp-Tex": 94.4, "Tex-Tran": 97.8, "Bp-L1": 23.9, "L1-Tran": 186.9,
    },
    "2048x2048x1024->1024x1024x2048": {
        "RTK-32": None, "Bp-Tex": 102.9, "Tex-Tran": 104.1, "Bp-L1": 33.4, "L1-Tran": 198.7,
    },
}
