"""Calibration constants: the paper's published micro-benchmark values.

Section 4.2.1 parameterizes the performance model with values measured on
ABCI (IOR for the PFS, Intel MPI benchmarks for the collectives, Nvidia's
``bandwidthTest`` for PCIe, and the kernels themselves for ``TH_flt`` /
``TH_bp``).  The numbers below are the ones the paper itself publishes or
that can be derived from its tables; each entry records where it comes from
so the benchmark harness can cite its provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..pipeline.perfmodel import ABCI_MICROBENCHMARKS, MicroBenchmarks

__all__ = ["CalibrationEntry", "PAPER_CALIBRATION", "abci_microbenchmarks"]


@dataclass(frozen=True)
class CalibrationEntry:
    """One calibrated constant and its provenance in the paper."""

    name: str
    value: float
    unit: str
    source: str


#: Every constant used by the at-scale projections, with provenance.
PAPER_CALIBRATION: Dict[str, CalibrationEntry] = {
    "bw_pcie": CalibrationEntry(
        name="BW_PCIe",
        value=11.9e9,
        unit="bytes/s",
        source="Section 5.3.3: 'The peak bandwidth of a single PCIe x16 is 11.9GB/s'",
    ),
    "n_pcie": CalibrationEntry(
        name="N_PCIe",
        value=2,
        unit="links/node",
        source="Section 5.1: two PCIe switches feed the four V100s of an ABCI node",
    ),
    "bw_store": CalibrationEntry(
        name="BW_store",
        value=28.5e9,
        unit="bytes/s",
        source="Section 5.3.3: 'The peak sequential write bandwidth of GPFS is 28.5GB/s'",
    ),
    "bw_load": CalibrationEntry(
        name="BW_load",
        value=120.0e9,
        unit="bytes/s",
        source="IOR aggregate read rate of ABCI's GPFS (T_load is absorbed into "
        "T_flt in Table 5; the flat weak-scaling T_compute of Figure 5c bounds "
        "it from below)",
    ),
    "t_d2h_4k": CalibrationEntry(
        name="T_D2H (4K)",
        value=2.6,
        unit="s",
        source="Section 5.3.3: projected time to copy 32 GB over dual PCIe",
    ),
    "t_reduce_8gb": CalibrationEntry(
        name="T_reduce (8 GB)",
        value=2.7,
        unit="s",
        source="Section 5.3.3: projected time to reduce 8 GB over dual InfiniBand",
    ),
    "t_store_4k": CalibrationEntry(
        name="T_store (256 GB)",
        value=9.0,
        unit="s",
        source="Section 5.3.3: projected time to store 256 GB to GPFS",
    ),
    "th_flt": CalibrationEntry(
        name="TH_flt",
        value=366.0,
        unit="projections/s/node",
        source="Derived from Table 5: T_flt = 1.4 s for Np=4096 on 8 nodes (Eq. 9)",
    ),
    "th_bp": CalibrationEntry(
        name="TH_bp",
        value=95.0,
        unit="projections/s/GPU",
        source="Derived from Table 5 (T_bp = 54.8 s at C=1) and consistent with "
        "the ~190-200 GUPS of Table 4 on an 8 GB sub-volume",
    ),
    "th_allgather": CalibrationEntry(
        name="TH_AllGather",
        value=4.07,
        unit="operations/s",
        source="Derived from Table 5: T_AllGather = 31.4 s for 4096 projections "
        "across 32 ranks (Eq. 10)",
    ),
    "gups_l1tran_1k": CalibrationEntry(
        name="L1-Tran GUPS (1k^3 output)",
        value=211.4,
        unit="GUPS",
        source="Table 4, row 512^2x1k -> 1k^3",
    ),
}


def abci_microbenchmarks() -> MicroBenchmarks:
    """The :class:`MicroBenchmarks` instance built from the paper's constants."""
    return ABCI_MICROBENCHMARKS
