"""The declarative reconstruction plan: one canonical description of a run.

After the service, backend and scenario layers grew around the original
single-node pipeline, the framework had four divergent parameter surfaces
for the same underlying reconstruction: ``FDKReconstructor(geometry,
backend, scenario, workers)``, ``IFDKConfig(geometry, rows, columns,
backend, workers)``, ``ReconstructionJob(problem, ramp_filter, scenario,
priority, ...)`` and the CLI flag sets that re-plumb all of them.  A
:class:`ReconstructionPlan` is the single, frozen, serializable object
those surfaces now share:

* **declarative** — geometry + scenario + backend + workers + dtype +
  execution target, nothing resolved, nothing stateful;
* **canonical** — :meth:`ReconstructionPlan.key` is a content hash of the
  canonical JSON form, stable across processes, Python versions and field
  ordering, so caches, schedulers and reports all agree on identity;
* **lossless** — ``from_json(to_json(plan)) == plan`` exactly (floats
  round-trip through JSON bit-for-bit via ``repr``);
* **strict** — :meth:`ReconstructionPlan.from_dict` rejects unknown
  fields, so a typo in a plan file is an error, not a silently ignored
  knob.

The *filtering identity* of a plan — the subset of fields that determine
the filtered projections (ramp filter, detector/stack shape, scenario
protocol) — is exposed as :meth:`ReconstructionPlan.filter_key` and is
what the service's :class:`~repro.service.cache.FilteredProjectionCache`
keys on: two plans that differ only in ``workers``, ``backend``,
``target`` or output-volume knobs share filtered projections; two plans
that differ in scenario or acquisition shape never do.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

import numpy as np

from ..core.geometry import CBCTGeometry, default_geometry_for_problem
from ..core.types import ReconstructionProblem, problem_from_string

__all__ = [
    "PLAN_VERSION",
    "TARGETS",
    "ReconstructionPlan",
    "acquisition_token",
    "filter_cache_identity",
    "plan_for_problem",
]

#: Schema version of the plan JSON document.
PLAN_VERSION = 1

#: The execution targets a plan can compile to.
TARGETS = ("fdk", "ifdk", "service")

# Field partition of CBCTGeometry used for canonical (de)serialization.
_GEOMETRY_INT_FIELDS = ("nu", "nv", "np_", "nx", "ny", "nz")
_GEOMETRY_FLOAT_FIELDS = (
    "du", "dv", "sad", "sdd", "dx", "dy", "dz",
    "angle_offset", "angular_range", "detector_offset_u",
)


def _canonical_json(payload: Dict[str, Any]) -> str:
    """Canonical JSON: sorted keys, no whitespace, ``repr`` floats.

    ``allow_nan=False`` so a non-finite value can never reach a plan file
    or a content hash — strict JSON parsers reject ``NaN``/``Infinity``.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _as_int(name: str, value: Any) -> int:
    """Coerce a plan-file scalar to int (ValueError -> the exit-2 path).

    Integral floats (``2.0``, a JSON artifact) canonicalize to ``2``;
    anything lossy (``2.5``) or non-numeric (booleans included) is an
    error — truncating would silently change the plan the author wrote.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"plan field {name!r} must be an integer, got {value!r}"
        )
    if isinstance(value, float) and not value.is_integer():
        raise ValueError(
            f"plan field {name!r} must be an integer, got {value!r}"
        )
    return int(value)


def _as_float(name: str, value: Any) -> float:
    """Coerce a plan-file scalar to a finite float (ValueError -> exit 2).

    NaN/Infinity are rejected: they are not valid strict JSON, so letting
    one in would produce a plan file other parsers cannot read — and a
    NaN SLO would make every deadline comparison silently false.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(
            f"plan field {name!r} must be a number, got {value!r}"
        )
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"plan field {name!r} must be finite, got {value!r}")
    return value


def _short_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def acquisition_token(geometry: CBCTGeometry) -> str:
    """Content hash of a geometry's *filtering-relevant physics*.

    Beyond the detector/stack shape (which the filtering identity carries
    explicitly), the filtering stage depends on the acquisition physics:
    the pixel pitch and source distances (the FDK pre-weighting and the
    filter tap spacing ``τ = du·d/D``), the angular span (the Riemann
    measure ``θ``) and the lateral detector offset (cosine weights and
    redundancy tables).  Two acquisitions that differ in any of these
    produce different filtered projections even from byte-identical shapes,
    so plan-derived cache keys must separate them.  The volume extent and
    voxel pitch are deliberately excluded — they only affect
    back-projection, so re-reconstructing the same acquisition at another
    output size reuses its filtering.
    """
    return _short_hash(_canonical_json({
        "du": float(geometry.du),
        "dv": float(geometry.dv),
        "sad": float(geometry.sad),
        "sdd": float(geometry.sdd),
        "angle_offset": float(geometry.angle_offset),
        "angular_range": float(geometry.angular_range),
        "detector_offset_u": float(geometry.detector_offset_u),
    }))


def filter_cache_identity(
    *, ramp_filter: str, nu: int, nv: int, np_: int, scenario: str,
    acquisition: str = "",
) -> str:
    """Content hash of one *filtering identity*.

    The filtered projections are a pure function of the raw data, the ramp
    filter, the detector/stack shape, the acquisition-scenario protocol
    (its cache token) and the acquisition physics — and of nothing else.
    ``acquisition`` is an :func:`acquisition_token` when the caller knows
    the full geometry (plans always do), or ``""`` when the physics is
    implied by the dataset identity (trace jobs, which carry only a
    problem shape).  Both :meth:`ReconstructionPlan.filter_key` and the
    service's :class:`~repro.service.cache.CacheKey` hash through this one
    function, so the plan layer and the cache layer can never drift apart.
    """
    return _short_hash(_canonical_json({
        "ramp_filter": str(ramp_filter),
        "nu": int(nu),
        "nv": int(nv),
        "np_": int(np_),
        "scenario": str(scenario),
        "acquisition": str(acquisition),
    }))


def _geometry_to_dict(geometry: CBCTGeometry) -> Dict[str, Any]:
    payload: Dict[str, Any] = {}
    for name in _GEOMETRY_INT_FIELDS:
        payload[name] = int(getattr(geometry, name))
    for name in _GEOMETRY_FLOAT_FIELDS:
        payload[name] = float(getattr(geometry, name))
    return payload


def _geometry_from_dict(payload: Dict[str, Any]) -> CBCTGeometry:
    if not isinstance(payload, dict):
        raise ValueError("plan 'geometry' must be a JSON object")
    known = set(_GEOMETRY_INT_FIELDS) | set(_GEOMETRY_FLOAT_FIELDS)
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(
            f"unknown geometry field(s) in plan: {', '.join(unknown)}"
        )
    missing = sorted(
        name for name in ("nu", "nv", "np_", "du", "dv", "sad", "sdd",
                          "nx", "ny", "nz", "dx", "dy", "dz")
        if name not in payload
    )
    if missing:
        raise ValueError(
            f"plan geometry is missing required field(s): {', '.join(missing)}"
        )
    kwargs: Dict[str, Any] = {}
    for name in _GEOMETRY_INT_FIELDS:
        kwargs[name] = _as_int(f"geometry.{name}", payload[name])
    for name in _GEOMETRY_FLOAT_FIELDS:
        if name in payload:
            kwargs[name] = _as_float(f"geometry.{name}", payload[name])
    return CBCTGeometry(**kwargs)


@dataclass(frozen=True)
class ReconstructionPlan:
    """One complete, serializable description of a reconstruction.

    Parameters
    ----------
    geometry:
        The *base* acquisition geometry (detector, trajectory and output
        volume).  For non-ideal scenarios this is the ideal full-scan
        acquisition the scenario is derived from; the executed geometry is
        :meth:`scenario_geometry`.
    target:
        Execution target: ``"fdk"`` (single-node), ``"ifdk"`` (distributed
        on the simulated cluster) or ``"service"`` (submitted as a job to
        the reconstruction service).
    scenario:
        Acquisition-scenario preset *name* (plans are serializable, so
        ad-hoc scenario instances must be registered first; see
        :func:`repro.scenarios.register_scenario`).
    backend:
        Compute backend name for the filter/back-projection hot paths.
    workers:
        For ``fdk``/``ifdk`` targets: worker-thread count of a dedicated
        ``parallel`` backend pool (requires ``backend="parallel"``).  For
        the ``service`` target: the real-execution dispatcher width (any
        backend).  ``None`` disables both.
    dtype:
        Imaging dtype.  The paper's contract is single precision
        everywhere (Section 5.1), so only ``"float32"`` validates today;
        the field exists so the identity hash is future-proof.
    ramp_filter, algorithm:
        Filtering window and back-projection algorithm, as on
        :class:`~repro.core.fdk.FDKReconstructor`.
    rows, columns:
        ``R`` and ``C`` of the 2-D rank grid; required when (and only
        meaningful when) ``target="ifdk"``.
    cluster_gpus, tenant, priority, slo_seconds:
        Service-target quality-of-service description, mapped onto the
        submitted :class:`~repro.service.job.ReconstructionJob`.
    tenant_weight, max_inflight:
        Fair-share hints for the ``service`` target: the submitting
        tenant's scheduling weight and in-flight job cap, adopted by the
        service's :class:`~repro.service.fairness.FairShareQueue` for
        tenants the operator's :class:`~repro.service.queue.AdmissionPolicy`
        does not configure explicitly (operator settings always win).
    streaming, chunk_size, memory_budget_bytes:
        Chunked execution on the ``fdk`` target: ``streaming=True`` routes
        :meth:`Session.run` through the
        :class:`~repro.streaming.StreamingReconstructor`, filtering and
        back-projecting ``chunk_size`` projections at a time under
        ``memory_budget_bytes`` (see
        :func:`~repro.streaming.resolve_chunk_size` for how the two knobs
        combine).  Streaming output is bit-identical to the whole-stack
        path, so the fields change *how* a plan executes, not what it
        computes — but they are part of :meth:`key` (execution identity),
        like ``backend`` and ``workers``, and excluded from
        :meth:`filter_key`.
    """

    geometry: CBCTGeometry
    target: str = "fdk"
    scenario: str = "full_scan"
    backend: str = "reference"
    workers: Optional[int] = None
    dtype: str = "float32"
    ramp_filter: str = "ram-lak"
    algorithm: str = "proposed"
    rows: Optional[int] = None
    columns: Optional[int] = None
    cluster_gpus: int = 16
    tenant: str = "default"
    priority: int = 1
    slo_seconds: Optional[float] = None
    tenant_weight: Optional[float] = None
    max_inflight: Optional[int] = None
    streaming: bool = False
    chunk_size: Optional[int] = None
    memory_budget_bytes: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    @property
    def problem(self) -> ReconstructionProblem:
        """The base reconstruction problem this plan describes."""
        return self.geometry.problem()

    def resolved_scenario(self):
        """The plan's :class:`~repro.scenarios.AcquisitionScenario`."""
        from ..scenarios import get_scenario  # late: scenarios import core

        return get_scenario(self.scenario)

    def scenario_geometry(self) -> CBCTGeometry:
        """The geometry the reconstruction actually executes on.

        Identical to :attr:`geometry` for the ideal full scan; the
        scenario-shaped acquisition (angular subset, cropped detector)
        otherwise.
        """
        scenario = self.resolved_scenario()
        if scenario.is_ideal:
            return self.geometry
        return scenario.apply_geometry(self.geometry)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> "ReconstructionPlan":
        """Check the plan against every registry and constraint it names.

        Raises :class:`ValueError` with an actionable message on the first
        violation; returns the plan itself so calls chain.  Validation
        resolves names (backend, scenario, ramp filter) against the live
        registries but never starts worker pools or allocates volumes.
        """
        from ..backends import validate_backend  # late: backends import core
        from ..core.filtering import RAMP_FILTERS

        if self.target not in TARGETS:
            raise ValueError(
                f"unknown plan target {self.target!r}; valid: {TARGETS}"
            )
        if self.ramp_filter not in RAMP_FILTERS:
            raise ValueError(
                f"unknown ramp filter {self.ramp_filter!r}; valid: {RAMP_FILTERS}"
            )
        if self.algorithm not in ("proposed", "standard"):
            raise ValueError("algorithm must be 'proposed' or 'standard'")
        try:
            dtype = np.dtype(self.dtype)
        except TypeError as exc:
            raise ValueError(f"unknown dtype {self.dtype!r}") from exc
        if dtype != np.float32:
            raise ValueError(
                f"dtype {self.dtype!r} is not supported: the pipeline runs "
                "single precision end to end (Section 5.1), use 'float32'"
            )
        # Structural integer checks: the canonical dict coerces with int(),
        # so anything that is not a true int here would survive validation
        # and then break the lossless round-trip (2.5 -> 2 silently).
        for name, minimum in (("workers", 1), ("rows", 1), ("columns", 1),
                              ("cluster_gpus", 1), ("priority", 0),
                              ("max_inflight", 1),
                              ("chunk_size", 1), ("memory_budget_bytes", 1)):
            value = getattr(self, name)
            if value is None:
                continue
            if (isinstance(value, bool) or not isinstance(value, int)
                    or value < minimum):
                kind = "positive" if minimum == 1 else "non-negative"
                raise ValueError(
                    f"{name} must be a {kind} integer (got {value!r})"
                )
        if self.target == "service":
            # Service workers size the real-execution dispatcher, which
            # runs on any backend; only the backend name itself is checked.
            validate_backend(self.backend)
        else:
            validate_backend(self.backend, workers=self.workers)
        scenario = self.resolved_scenario()  # raises on unknown names
        if not scenario.is_ideal:
            if self.target == "ifdk":
                raise ValueError(
                    f"scenario {self.scenario!r} runs single-node; the "
                    "distributed pipeline only serves the ideal full scan"
                )
            scenario.apply_geometry(self.geometry)  # raises if infeasible
        if self.target == "ifdk":
            if self.rows is None or self.columns is None:
                raise ValueError(
                    "an ifdk-target plan must set both rows and columns"
                )
            from ..pipeline.config import IFDKConfig  # late: avoid cycles

            IFDKConfig.from_plan(self)  # raises on divisibility violations
        elif self.rows is not None or self.columns is not None:
            raise ValueError(
                f"rows/columns only apply to the ifdk target "
                f"(this plan targets {self.target!r})"
            )
        if self.target != "service":
            # QoS fields are inert outside the service target, but they
            # are hashed into key() — letting them through would give two
            # bit-identical executions different identities (the same
            # silent-no-op asymmetry the rows/columns check prevents).
            defaults = {
                f.name: f.default for f in dataclasses.fields(self)
                if f.name in ("cluster_gpus", "tenant", "priority",
                              "slo_seconds", "tenant_weight", "max_inflight")
            }
            off_target = sorted(
                name for name, default in defaults.items()
                if getattr(self, name) != default
            )
            if off_target:
                raise ValueError(
                    f"{', '.join(off_target)} only apply to the service "
                    f"target (this plan targets {self.target!r})"
                )
        if self.slo_seconds is not None and not (
            math.isfinite(self.slo_seconds) and self.slo_seconds > 0
        ):
            raise ValueError(
                "slo_seconds must be a positive finite number when given"
            )
        if self.tenant_weight is not None and not (
            isinstance(self.tenant_weight, (int, float))
            and not isinstance(self.tenant_weight, bool)
            and math.isfinite(self.tenant_weight)
            and self.tenant_weight > 0
        ):
            raise ValueError(
                "tenant_weight must be a positive finite number when given"
            )
        if not isinstance(self.streaming, bool):
            raise ValueError(
                f"streaming must be a boolean (got {self.streaming!r})"
            )
        if self.streaming:
            if self.target != "fdk":
                raise ValueError(
                    "streaming execution is only wired for the fdk target "
                    f"(this plan targets {self.target!r}); the service "
                    "dispatcher streams via its own streaming_chunk_size "
                    "configuration, not per-plan fields"
                )
            from ..streaming import resolve_chunk_size  # late: streaming imports core

            # Fail the impossible chunk/budget combination at validation
            # time (too-small budget, chunk exceeding budget), not mid-run.
            resolve_chunk_size(
                self.scenario_geometry(), self.scenario_geometry().np_,
                chunk_size=self.chunk_size,
                memory_budget_bytes=self.memory_budget_bytes,
            )
        else:
            extras = sorted(
                name for name in ("chunk_size", "memory_budget_bytes")
                if getattr(self, name) is not None
            )
            if extras:
                raise ValueError(
                    f"{', '.join(extras)} only apply when streaming is "
                    "enabled (set streaming: true)"
                )
        for name in _GEOMETRY_FLOAT_FIELDS:
            if not math.isfinite(float(getattr(self.geometry, name))):
                raise ValueError(f"geometry.{name} must be finite")
        return self

    # ------------------------------------------------------------------ #
    # Canonical serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Canonical dictionary form (plain JSON types, coerced scalars)."""
        return {
            "version": PLAN_VERSION,
            "geometry": _geometry_to_dict(self.geometry),
            "target": str(self.target),
            "scenario": str(self.scenario),
            "backend": str(self.backend),
            "workers": None if self.workers is None else int(self.workers),
            "dtype": str(self.dtype),
            "ramp_filter": str(self.ramp_filter),
            "algorithm": str(self.algorithm),
            "rows": None if self.rows is None else int(self.rows),
            "columns": None if self.columns is None else int(self.columns),
            "cluster_gpus": int(self.cluster_gpus),
            "tenant": str(self.tenant),
            "priority": int(self.priority),
            "slo_seconds": (
                None if self.slo_seconds is None else float(self.slo_seconds)
            ),
            "tenant_weight": (
                None if self.tenant_weight is None else float(self.tenant_weight)
            ),
            "max_inflight": (
                None if self.max_inflight is None else int(self.max_inflight)
            ),
            "streaming": bool(self.streaming),
            "chunk_size": (
                None if self.chunk_size is None else int(self.chunk_size)
            ),
            "memory_budget_bytes": (
                None if self.memory_budget_bytes is None
                else int(self.memory_budget_bytes)
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ReconstructionPlan":
        """Parse the dictionary form, rejecting unknown fields.

        The inverse of :meth:`to_dict`.  Field *order* is irrelevant (the
        canonical form sorts keys before hashing), but field *names* are
        strict: anything not in the schema raises :class:`ValueError` so a
        misspelled knob can never be silently dropped.
        """
        if not isinstance(payload, dict):
            raise ValueError("a plan must be a JSON object")
        known = {
            "version", "geometry", "target", "scenario", "backend",
            "workers", "dtype", "ramp_filter", "algorithm", "rows",
            "columns", "cluster_gpus", "tenant", "priority", "slo_seconds",
            "tenant_weight", "max_inflight",
            "streaming", "chunk_size", "memory_budget_bytes",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown plan field(s): {', '.join(unknown)} "
                "(plans reject unrecognized keys; check for typos)"
            )
        version = payload.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise ValueError(f"unsupported plan version {version!r}")
        if "geometry" not in payload:
            raise ValueError("a plan must carry a 'geometry' object")

        def opt_int(name: str) -> Optional[int]:
            value = payload.get(name)
            return None if value is None else _as_int(name, value)

        slo = payload.get("slo_seconds")
        weight = payload.get("tenant_weight")
        streaming = payload.get("streaming", False)
        if not isinstance(streaming, bool):
            raise ValueError(
                f"plan field 'streaming' must be a boolean, got {streaming!r}"
            )
        return cls(
            geometry=_geometry_from_dict(payload["geometry"]),
            target=str(payload.get("target", "fdk")),
            scenario=str(payload.get("scenario", "full_scan")),
            backend=str(payload.get("backend", "reference")),
            workers=opt_int("workers"),
            dtype=str(payload.get("dtype", "float32")),
            ramp_filter=str(payload.get("ramp_filter", "ram-lak")),
            algorithm=str(payload.get("algorithm", "proposed")),
            rows=opt_int("rows"),
            columns=opt_int("columns"),
            cluster_gpus=_as_int("cluster_gpus", payload.get("cluster_gpus", 16)),
            tenant=str(payload.get("tenant", "default")),
            priority=_as_int("priority", payload.get("priority", 1)),
            slo_seconds=None if slo is None else _as_float("slo_seconds", slo),
            tenant_weight=(
                None if weight is None else _as_float("tenant_weight", weight)
            ),
            max_inflight=opt_int("max_inflight"),
            streaming=streaming,
            chunk_size=opt_int("chunk_size"),
            memory_budget_bytes=opt_int("memory_budget_bytes"),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """Serialize to JSON (human-readable by default, lossless always)."""
        return json.dumps(
            self.to_dict(), indent=indent, sort_keys=True, allow_nan=False
        )

    @classmethod
    def from_json(cls, text: str) -> "ReconstructionPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"plan is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def key(self) -> str:
        """Canonical content hash of the complete plan.

        SHA-256 of the canonical JSON form (sorted keys, ``repr`` floats),
        truncated to 16 hex characters.  Stable across processes, machines
        and the order fields appear in a plan file — the identity that job
        records, reports and result caches carry.
        """
        return _short_hash(_canonical_json(self.to_dict()))

    def filter_identity(self) -> Dict[str, Any]:
        """The fields that determine this plan's filtered projections.

        The scenario contributes its *cache token* (protocol identity) so
        two preset names describing the same protocol share filtered
        projections, and the geometry contributes its
        :func:`acquisition_token` so acquisitions differing in physics
        (pitch, distances, span, offset) never alias — exactly what the
        service cache requires.
        """
        from ..scenarios import cache_token_for  # late: scenarios import core

        g = self.geometry
        return {
            "ramp_filter": self.ramp_filter,
            "nu": g.nu,
            "nv": g.nv,
            "np_": g.np_,
            "scenario": cache_token_for(self.scenario),
            "acquisition": acquisition_token(g),
        }

    def filter_key(self) -> str:
        """Content hash of the filtering identity (drives the service cache).

        Deliberately *excludes* ``workers``, ``backend``, ``target``, the
        output-volume extent/voxel pitch and all QoS fields: none of them
        change the filtered projections, so plans differing only there
        share a filtered-projection cache entry.
        """
        return filter_cache_identity(**self.filter_identity())

    # ------------------------------------------------------------------ #
    def with_updates(self, **changes: Any) -> "ReconstructionPlan":
        """A copy of the plan with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> Dict[str, Any]:
        """Flat summary used by ``repro plan describe`` and reports."""
        scenario = self.resolved_scenario()
        executed = self.scenario_geometry()
        summary: Dict[str, Any] = {
            "key": self.key(),
            "filter_key": self.filter_key(),
            "target": self.target,
            "problem": str(self.problem),
            "scenario": self.scenario,
            "backend": self.backend,
            "workers": self.workers,
            "dtype": self.dtype,
            "ramp_filter": self.ramp_filter,
            "algorithm": self.algorithm,
            "executed_projections": executed.np_,
            "executed_angular_range": float(executed.angular_range),
        }
        if not scenario.is_ideal:
            summary["scenario_cache_token"] = scenario.cache_token
        if self.streaming:
            from ..streaming import resolve_chunk_size  # late: streaming imports core

            summary["streaming"] = True
            summary["chunk_size"] = resolve_chunk_size(
                executed, executed.np_,
                chunk_size=self.chunk_size,
                memory_budget_bytes=self.memory_budget_bytes,
            )
            summary["memory_budget_bytes"] = self.memory_budget_bytes
        if self.target == "ifdk":
            summary["rows"] = self.rows
            summary["columns"] = self.columns
        if self.target == "service":
            summary.update(
                cluster_gpus=self.cluster_gpus,
                tenant=self.tenant,
                priority=self.priority,
                slo_seconds=self.slo_seconds,
            )
            if self.tenant_weight is not None:
                summary["tenant_weight"] = self.tenant_weight
            if self.max_inflight is not None:
                summary["max_inflight"] = self.max_inflight
        return summary


def plan_for_problem(
    problem, **fields: Any
) -> ReconstructionPlan:
    """Build a plan from a problem spec with the default geometry.

    ``problem`` is a :class:`~repro.core.types.ReconstructionProblem` or a
    ``"NuxNvxNp->NxxNyxNz"`` spec string; the geometry comes from
    :func:`~repro.core.geometry.default_geometry_for_problem`, exactly as
    the CLI has always derived it — so a plan emitted from a spec string is
    canonical and reproducible.  Remaining ``fields`` are plan fields.
    """
    if isinstance(problem, str):
        problem = problem_from_string(problem)
    if not isinstance(problem, ReconstructionProblem):
        raise ValueError(
            f"problem must be a spec string or ReconstructionProblem, "
            f"got {problem!r}"
        )
    geometry = default_geometry_for_problem(
        nu=problem.nu, nv=problem.nv, np_=problem.np_,
        nx=problem.nx, ny=problem.ny, nz=problem.nz,
    )
    return ReconstructionPlan(geometry=geometry, **fields)
