"""Plan execution: compile a :class:`ReconstructionPlan` once, run it many times.

A :class:`Session` is the executable form of a plan.  Construction
validates the plan and resolves everything it names — the compute backend
(including a dedicated worker pool when the plan asks for one), the
acquisition scenario and its derived geometry, and the execution engine
for the plan's target:

``fdk``
    A configured :class:`~repro.core.fdk.FDKReconstructor` — or, when the
    plan sets ``streaming: true``, a
    :class:`~repro.streaming.StreamingReconstructor` fed through a
    :class:`~repro.streaming.StackChunkSource`, chunking the same
    reconstruction under the plan's memory budget (bit-identical output).
``ifdk``
    An :class:`~repro.pipeline.ifdk.IFDKFramework` over
    :meth:`IFDKConfig.from_plan <repro.pipeline.config.IFDKConfig.from_plan>`.
``service``
    A :class:`~repro.service.service.ReconstructionService` the session
    submits plan-derived jobs to, *plus* the same single-node compute path
    for the functional volume — so the returned volume is bit-identical
    across the ``fdk`` and ``service`` targets while the job record carries
    the scheduling outcome.

Every run returns a unified :class:`RunResult` regardless of target.
Sessions own the resources they resolve (worker pools, service
dispatchers); close them with :meth:`Session.close` or a ``with`` block.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.fdk import FDKReconstructor
from ..core.geometry import CBCTGeometry
from ..core.types import ProjectionStack, ReconstructionProblem, Volume
from ..obs import NULL_TRACER, RunReport, Tracer, use_tracer
from .plan import ReconstructionPlan

__all__ = ["RunResult", "Session", "run_plan"]


@dataclass
class RunResult:
    """Unified outcome of one plan execution, for every target."""

    volume: Volume
    plan: ReconstructionPlan
    plan_key: str
    target: str
    geometry: CBCTGeometry
    filter_seconds: float
    backprojection_seconds: float
    wall_seconds: float
    details: Dict[str, Any] = field(default_factory=dict)
    #: Structured observability record of the run (always present; carries
    #: span-derived stage totals when the session had a tracer installed).
    report: Optional[RunReport] = None

    @property
    def problem(self) -> ReconstructionProblem:
        """The *executed* problem (scenario-shaped input, full output)."""
        return self.geometry.problem()

    @property
    def gups(self) -> float:
        """Back-projection throughput of the run in giga-updates/second."""
        return self.problem.gups(max(self.backprojection_seconds, 1e-12))

    def as_record(self) -> Dict[str, Any]:
        """Flat dictionary for reports (details dict merged in)."""
        record: Dict[str, Any] = {
            "plan_key": self.plan_key,
            "target": self.target,
            "problem": str(self.problem),
            "backend": self.plan.backend,
            "scenario": self.plan.scenario,
            "workers": self.plan.workers,
            "filter_seconds": self.filter_seconds,
            "backprojection_seconds": self.backprojection_seconds,
            "wall_seconds": self.wall_seconds,
            "gups": self.gups,
        }
        record.update(self.details)
        return record


class Session:
    """A compiled plan, ready to execute projection stacks.

    Parameters
    ----------
    plan:
        The declarative plan to compile.  Validated on entry (a session
        can never hold an invalid plan).
    tracer:
        Optional :class:`repro.obs.Tracer` installed ambiently around every
        :meth:`run`, so the backend drivers, worker pool and service record
        spans into it.  ``None`` (the default) keeps the process-wide
        no-op tracer: the hot paths execute their untraced branches and the
        run's :class:`~repro.obs.RunReport` carries no span totals.
    dispatcher / state_dir / cache_dir:
        Serving durability knobs, forwarded to the owned
        :class:`~repro.service.service.ReconstructionService` (service
        target only; rejected otherwise so a typo'd target cannot silently
        drop them).  ``dispatcher="process"`` executes pilots in a
        crash-isolated process pool, ``state_dir`` journals the queue for
        restart recovery, ``cache_dir`` shares filtered projections on
        disk across worker processes and restarts.
    """

    def __init__(
        self,
        plan: ReconstructionPlan,
        *,
        tracer: Optional[Tracer] = None,
        dispatcher: str = "thread",
        state_dir=None,
        cache_dir=None,
    ):
        plan.validate()
        if plan.target != "service" and (
            dispatcher != "thread" or state_dir is not None or cache_dir is not None
        ):
            raise ValueError(
                "dispatcher/state_dir/cache_dir are service-target options; "
                f"this plan targets {plan.target!r}"
            )
        self.plan = plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.plan_key = plan.key()
        self._scenario = plan.resolved_scenario()
        self._geometry = plan.scenario_geometry()
        self._framework = None
        self._service = None
        self._reconstructor: Optional[FDKReconstructor] = None
        self._streaming = None
        self._streaming_metrics = None
        if plan.target == "ifdk":
            from ..pipeline.config import IFDKConfig
            from ..pipeline.ifdk import IFDKFramework

            self._framework = IFDKFramework(IFDKConfig.from_plan(plan))
        elif plan.target == "fdk" and plan.streaming:
            from ..obs import MetricsRegistry
            from ..streaming import StreamingReconstructor

            # Chunk metrics ride along with tracing, like the service's
            # lifetime instruments; untraced sessions keep the no-op
            # registry so the hot loop stays instrument-free.
            self._streaming_metrics = (
                MetricsRegistry() if self.tracer.enabled else None
            )
            self._streaming = StreamingReconstructor.from_plan(
                plan, metrics=self._streaming_metrics
            )
        else:
            # Single-node compute path, shared by the fdk and service
            # targets.  For the service target the plan's workers size the
            # dispatcher, not the backend pool, so they are not forwarded.
            fdk_plan = (
                plan if plan.target == "fdk" else plan.with_updates(workers=None)
            )
            self._reconstructor = FDKReconstructor.from_plan(fdk_plan)
            if plan.target == "service":
                from ..obs import MetricsRegistry
                from ..service.service import ReconstructionService

                self._service = ReconstructionService(
                    plan.cluster_gpus,
                    policy="slo",
                    backend=plan.backend,
                    workers=plan.workers or 0,
                    dispatcher=dispatcher,
                    state_dir=state_dir,
                    cache_dir=cache_dir,
                    # Lifetime instruments ride along with tracing; an
                    # untraced session keeps the service's no-op registry.
                    obs=MetricsRegistry() if self.tracer.enabled else None,
                )

    # ------------------------------------------------------------------ #
    @property
    def geometry(self) -> CBCTGeometry:
        """The executed (scenario-shaped) acquisition geometry."""
        return self._geometry

    @property
    def service(self):
        """The owned :class:`ReconstructionService` (service target only)."""
        return self._service

    # ------------------------------------------------------------------ #
    def _prepare_stack(self, stack: ProjectionStack) -> ProjectionStack:
        """Apply the plan's scenario to the base acquisition when needed.

        Sessions accept the *base* stack the plan's geometry describes; a
        non-ideal scenario selects/crops/perturbs it here, exactly as the
        CLI and :func:`repro.scenarios.reconstruct_scenario` always have.
        A stack whose shape already matches the scenario geometry (and no
        longer the base) passes through untransformed.  For scenarios that
        preserve the acquisition shape (e.g. ``noisy``) the two are
        indistinguishable, so the input is *always* treated as the base
        stack — pre-applying such a scenario and running it through a
        session would apply it twice; hand a pre-transformed stack to
        :meth:`FDKReconstructor.reconstruct` directly instead.
        """
        if self._scenario.is_ideal:
            return stack
        base = self.plan.geometry
        if (stack.np_, stack.nv, stack.nu) == (base.np_, base.nv, base.nu):
            _, scenario_stack = self._scenario.apply(base, stack)
            return scenario_stack
        g = self._geometry
        if (stack.np_, stack.nv, stack.nu) == (g.np_, g.nv, g.nu):
            return stack  # already scenario-shaped
        raise ValueError(
            f"projection stack {stack.np_}x{stack.nv}x{stack.nu} matches "
            f"neither the plan's base acquisition "
            f"({base.np_}x{base.nv}x{base.nu}) nor its scenario geometry "
            f"({g.np_}x{g.nv}x{g.nu})"
        )

    def run(self, stack: ProjectionStack, *, dataset_id: str = "") -> RunResult:
        """Execute the plan on one projection stack.

        ``stack`` is the raw acquisition on the plan's base geometry (a
        pre-filtered stack is accepted for ideal scans, as with
        :meth:`FDKReconstructor.reconstruct`).  ``dataset_id`` names the
        dataset for service-target cache identity; it defaults to a
        content fingerprint of the stack.

        The session's tracer is installed ambiently for the duration: the
        whole execution sits under one ``run`` span, and the returned
        :attr:`RunResult.report` folds in the span-derived stage totals.
        """
        tracer = self.tracer
        with use_tracer(tracer):
            with tracer.span(
                "run",
                target=self.plan.target,
                backend=self.plan.backend,
                scenario=self.plan.scenario,
                plan_key=self.plan_key,
            ) as root:
                root_id = root.span_id if tracer.enabled else None
                result = self._execute(stack, tracer, root_id, dataset_id)
        result.report = RunReport.from_tracer(
            tracer,
            plan_key=self.plan_key,
            target=self.plan.target,
            backend=self.plan.backend,
            scenario=self.plan.scenario,
            problem=str(result.problem),
            wall_seconds=result.wall_seconds,
            filter_seconds=result.filter_seconds,
            backprojection_seconds=result.backprojection_seconds,
            gups=result.gups,
            details=dict(result.details),
        )
        return result

    def _execute(
        self,
        stack: ProjectionStack,
        tracer: Tracer,
        root_id: Optional[int],
        dataset_id: str,
    ) -> RunResult:
        stack = self._prepare_stack(stack)
        details: Dict[str, Any] = {}
        start = time.perf_counter()
        if self._framework is not None:
            result = self._framework.reconstruct(stack)
            stage_totals = result.stage_totals()
            wall = time.perf_counter() - start
            if tracer.enabled:
                # Import the rank-stage spans into the session trace.  Rank
                # tracers start their own epochs after this run began, so
                # anchoring events at the run start places every stage
                # inside the run span (durations, hence stage totals, are
                # exact either way).
                for rank_result in result.rank_results:
                    for event in rank_result.events:
                        tracer.record(
                            event.stage,
                            start + event.start,
                            start + event.stop,
                            event.payload_bytes,
                            parent=root_id,
                            rank=event.rank,
                        )
            details.update(
                rows=self.plan.rows,
                columns=self.plan.columns,
                overlap_delta=result.mean_overlap_delta(),
                modelled_runtime_at_scale=result.modelled.t_runtime,
            )
            return RunResult(
                volume=result.volume,
                plan=self.plan,
                plan_key=self.plan_key,
                target=self.plan.target,
                geometry=self._geometry,
                filter_seconds=stage_totals.get("filter", 0.0),
                backprojection_seconds=stage_totals.get("backprojection", 0.0),
                wall_seconds=wall,
                details=details,
            )
        if self._streaming is not None:
            from ..streaming import StackChunkSource

            streamed = self._streaming.reconstruct(StackChunkSource(stack))
            wall = time.perf_counter() - start
            details.update(
                streaming=True,
                chunk_size=streamed.chunk_size,
                chunks=streamed.chunk_count,
                working_set_bytes=streamed.working_set_bytes,
                memory_budget_bytes=streamed.memory_budget_bytes,
                peak_rss_bytes=streamed.peak_rss_bytes,
            )
            if self._streaming_metrics is not None:
                details["streaming_obs"] = self._streaming_metrics.snapshot()
            return RunResult(
                volume=streamed.volume,
                plan=self.plan,
                plan_key=self.plan_key,
                target=self.plan.target,
                geometry=self._geometry,
                filter_seconds=streamed.filter_seconds,
                backprojection_seconds=streamed.backprojection_seconds,
                wall_seconds=wall,
                details=details,
            )
        fdk = self._reconstructor.reconstruct(stack)
        if self._service is not None:
            from ..service.cache import fingerprint_stack
            from ..service.job import JobState

            job = self._service.submit_plan(
                self.plan, dataset_id=dataset_id or fingerprint_stack(stack)
            )
            if job.state is not JobState.REJECTED:
                self._service.run_until_idle()
            details["job"] = job.as_record()
            details["accepted"] = job.state is not JobState.REJECTED
            if tracer.enabled:
                details["service_obs"] = self._service.obs_snapshot()
        wall = time.perf_counter() - start
        return RunResult(
            volume=fdk.volume,
            plan=self.plan,
            plan_key=self.plan_key,
            target=self.plan.target,
            geometry=self._geometry,
            filter_seconds=fdk.filter_seconds,
            backprojection_seconds=fdk.backprojection_seconds,
            wall_seconds=wall,
            details=details,
        )

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release every resource the session resolved (idempotent)."""
        if self._reconstructor is not None:
            self._reconstructor.close()
        if self._streaming is not None:
            self._streaming.close()
        if self._service is not None:
            self._service.close()
        if self._framework is not None:
            self._framework.config.close_backend()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def run_plan(
    plan: ReconstructionPlan,
    stack: ProjectionStack,
    *,
    tracer: Optional[Tracer] = None,
) -> RunResult:
    """One-call plan execution: compile, run, release."""
    with Session(plan, tracer=tracer) as session:
        return session.run(stack)
