"""The public front door: declarative plans and their execution sessions.

``repro.api`` unifies the framework's deployment shapes — single-node FDK,
distributed iFDK and the multi-tenant service — behind one canonical,
serializable object.  Describe a reconstruction once as a
:class:`ReconstructionPlan`, persist it as JSON, hash it with
:meth:`ReconstructionPlan.key`, and execute it anywhere through a
:class:`Session`:

>>> from repro.api import ReconstructionPlan, Session, plan_for_problem
>>> plan = plan_for_problem("96x96x120->64x64x64", backend="vectorized")
>>> plan = ReconstructionPlan.from_json(plan.to_json())   # lossless
>>> with Session(plan) as session:                        # doctest: +SKIP
...     result = session.run(stack)

The plan's content hash is the identity the whole stack speaks:
:class:`~repro.service.job.ReconstructionJob` records it, the service's
filtered-projection cache keys on the plan's filtering identity
(:meth:`ReconstructionPlan.filter_key`), and the CLI accepts plan files
everywhere a reconstruction is described (``repro reconstruct --plan``,
``repro submit --plan``, ``repro plan emit|validate|describe``).
"""

from .plan import (
    PLAN_VERSION,
    TARGETS,
    ReconstructionPlan,
    acquisition_token,
    filter_cache_identity,
    plan_for_problem,
)
from .session import RunResult, Session, run_plan

__all__ = [
    "PLAN_VERSION",
    "TARGETS",
    "ReconstructionPlan",
    "RunResult",
    "Session",
    "acquisition_token",
    "filter_cache_identity",
    "plan_for_problem",
    "run_plan",
]
