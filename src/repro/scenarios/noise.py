"""Declarative noise models for acquisition scenarios.

A :class:`NoiseModel` is the frozen, hashable description of a measurement
noise process — the scenario layer stores it, cache keys serialize it, and
:meth:`NoiseModel.apply` runs the actual forward model implemented in
:func:`repro.core.forward.apply_poisson_gaussian_noise` (seeded Poisson
photon counting plus Gaussian electronic noise).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.forward import apply_poisson_gaussian_noise
from ..core.types import ProjectionStack

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Seeded Poisson + Gaussian measurement noise description.

    Parameters
    ----------
    photons:
        Unattenuated photon count ``N₀`` per detector pixel (the dose knob:
        lower means noisier).
    electronic_sigma:
        Standard deviation of the additive electronic noise, in counts.
    attenuation_scale:
        Attenuation per unit line integral (converts the phantom's density
        units into Beer–Lambert exponent; pick it so the peak attenuation
        lands in a physical range, e.g. 2–5).
    seed:
        RNG seed.  The same (stack, model) pair always yields the same
        noisy stack — across runs, machines and compute backends.
    """

    photons: float = 1.0e5
    electronic_sigma: float = 5.0
    attenuation_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.photons <= 0:
            raise ValueError("photons must be positive")
        if self.electronic_sigma < 0:
            raise ValueError("electronic_sigma must be non-negative")
        if self.attenuation_scale <= 0:
            raise ValueError("attenuation_scale must be positive")

    @property
    def token(self) -> str:
        """Deterministic identity string (used in scenario cache tokens)."""
        return (
            f"poisson({self.photons:g},{self.electronic_sigma:g},"
            f"{self.attenuation_scale:g},seed={self.seed})"
        )

    def apply(self, stack: ProjectionStack) -> ProjectionStack:
        """Run the measurement model on an ideal line-integral stack."""
        return apply_poisson_gaussian_noise(
            stack,
            photons=self.photons,
            electronic_sigma=self.electronic_sigma,
            attenuation_scale=self.attenuation_scale,
            seed=self.seed,
        )
