"""Declarative acquisition scenarios: short-scan, offset-detector, sparse, noisy.

The seed repository reconstructs exactly one workload: an ideal, noiseless,
full-``2π`` circular scan.  Real CBCT deployments (the paper's Table 1
clinical geometries) routinely run *short-scan* (faster gantry sweep,
``π + 2Δ``), *offset-detector* (laterally shifted FPD for an extended
field of view) and dose-limited *sparse/noisy* acquisitions.  An
:class:`AcquisitionScenario` is the declarative description of one such
protocol; applying it to a base :class:`~repro.core.geometry.CBCTGeometry`
plus an ideal projection stack yields the scenario's geometry and
measurement data, and :meth:`AcquisitionScenario.redundancy_weights`
yields the per-projection filtering weight table every compute backend
consumes (see :mod:`repro.scenarios.weights`).

The contract mirrors the backend contract of PR 2: a scenario is *correct*
when the scenario × backend conformance matrix in
``tests/test_backend_conformance.py`` passes — every backend reconstructs
the scenario within 1e-5 relative RMSE of ``reference``, and the
vectorized family stays bit-identical under the scenario's weights.

How each scenario maps onto the existing stack
----------------------------------------------

========== ============================ =====================================
scenario    geometry change              data / filtering change
========== ============================ =====================================
short_scan  ``angular_range = π + 2Δ``   Parker table ``2·w(β,γ)`` in the
            (rounded up to whole steps)  filtering stage
offset FPD  detector cropped to one      virtual-full-fan table ``2·w(u)``
            side, ``detector_offset_u``
sparse      every m-th projection,       nothing — ``θ = range/Np`` already
            ``θ`` grows by ``m``         rescales the FDK Riemann measure
noisy       none                         seeded Poisson+Gaussian forward
                                         model on the raw stack
========== ============================ =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..core.geometry import CBCTGeometry
from ..core.types import ProjectionStack
from .noise import NoiseModel
from .weights import offset_detector_weights, parker_weights

__all__ = [
    "AcquisitionScenario",
    "SCENARIO_PRESETS",
    "available_scenarios",
    "cache_token_for",
    "get_scenario",
    "register_scenario",
    "reconstruct_scenario",
]


@dataclass(frozen=True)
class AcquisitionScenario:
    """One acquisition protocol, described declaratively.

    Parameters
    ----------
    name:
        Registry / CLI / cache identity of the scenario.
    short_scan:
        Restrict the trajectory to the minimal short scan ``π + 2Δ``
        (rounded up to a whole number of step angles) and apply Parker
        redundancy weights in the filtering stage.
    detector_crop_fraction:
        Fraction of detector columns cropped from the low-``u`` edge,
        producing a laterally shifted (offset) FPD whose data is a column
        window of the base acquisition.  Must leave the principal ray
        covered with margin (``< 0.5``); applied with virtual-full-fan
        redundancy weights.
    sparse_factor:
        Keep every ``m``-th projection.  The step angle grows by ``m`` and
        the FDK normalization ``d²·θ/2`` rescales automatically — the
        "normalization-corrected" sparse-view weights.
    noise:
        Optional :class:`~repro.scenarios.noise.NoiseModel` run on the raw
        stack (after angular/detector selection, before filtering).
    description:
        One line for ``repro scenarios`` and the README preset table.
    """

    name: str
    short_scan: bool = False
    detector_crop_fraction: float = 0.0
    sparse_factor: int = 1
    noise: Optional[NoiseModel] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario must have a non-empty name")
        if not (0.0 <= float(self.detector_crop_fraction) < 0.5):
            raise ValueError(
                "detector_crop_fraction must be in [0, 0.5): the offset "
                "panel must keep the principal ray covered with margin"
            )
        if int(self.sparse_factor) < 1:
            raise ValueError("sparse_factor must be a positive integer")
        if self.short_scan and self.detector_crop_fraction > 0:
            raise ValueError(
                "short_scan and detector_crop_fraction cannot be combined: "
                "Parker and offset-detector redundancy weights do not "
                "compose multiplicatively"
            )

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    @property
    def is_ideal(self) -> bool:
        """True when the scenario is the seed's ideal full scan."""
        return (
            not self.short_scan
            and self.detector_crop_fraction == 0.0
            and self.sparse_factor == 1
            and self.noise is None
        )

    @property
    def cache_token(self) -> str:
        """Deterministic identity string for cache keys and job records.

        Two scenarios with the same token select the same projections, the
        same detector window, the same redundancy weights and the same
        noise draw — so their filtered projections are interchangeable.
        The token deliberately ignores :attr:`name` and
        :attr:`description`: a renamed preset must still hit the cache.
        """
        if self.is_ideal:
            return "full"
        parts = []
        if self.short_scan:
            parts.append("short")
        if self.detector_crop_fraction > 0:
            parts.append(f"crop={self.detector_crop_fraction:g}")
        if self.sparse_factor > 1:
            parts.append(f"sparse={self.sparse_factor}")
        if self.noise is not None:
            parts.append(self.noise.token)
        return "|".join(parts)

    # ------------------------------------------------------------------ #
    # Geometry transformation
    # ------------------------------------------------------------------ #
    def _detector_crop(self, base: CBCTGeometry) -> int:
        """Number of columns cropped from the low-``u`` edge."""
        crop = int(round(self.detector_crop_fraction * base.nu))
        if crop and base.nu - crop < 2:
            raise ValueError(f"detector too narrow to crop {crop} columns")
        return crop

    def projection_indices(self, base: CBCTGeometry) -> np.ndarray:
        """Indices of the base acquisition's projections this scenario keeps.

        Short-scan keeps the leading ``ceil((π + 2Δ)/θ)`` projections
        (rounded up to a whole number of sparse strides so the subsampled
        step stays uniform); sparse-view keeps every ``m``-th of those.
        """
        theta = base.theta
        m = int(self.sparse_factor)
        if self.short_scan:
            groups = int(np.ceil(base.short_scan_span / (m * theta) - 1e-12))
        else:
            groups = base.np_ // m
        keep = groups * m
        if keep > base.np_:
            raise ValueError(
                f"base scan of {base.np_} projections over "
                f"{base.angular_range:.3f} rad is too coarse for "
                f"scenario {self.name!r} (needs {keep})"
            )
        if groups < 2:
            raise ValueError(
                f"scenario {self.name!r} keeps fewer than 2 projections"
            )
        return np.arange(0, keep, m)

    def apply_geometry(self, base: CBCTGeometry) -> CBCTGeometry:
        """The scenario's acquisition geometry derived from ``base``.

        The returned geometry's ``angles`` are exactly the base angles at
        :meth:`projection_indices`, its ``theta`` is the (uniform) stride
        between them, and its detector is the cropped/shifted window — so
        every downstream consumer (projection matrices, FDK normalization,
        performance model) sees a self-consistent acquisition.
        """
        indices = self.projection_indices(base)
        keep = int(indices[-1]) + int(self.sparse_factor)
        angular_range = base.angular_range * keep / base.np_
        crop = self._detector_crop(base)
        return replace(
            base,
            nu=base.nu - crop,
            np_=len(indices),
            angular_range=angular_range,
            detector_offset_u=base.detector_offset_u + crop * base.du / 2.0,
        )

    # ------------------------------------------------------------------ #
    # Data transformation
    # ------------------------------------------------------------------ #
    def apply(
        self, base: CBCTGeometry, stack: ProjectionStack
    ) -> Tuple[CBCTGeometry, ProjectionStack]:
        """Transform an ideal full acquisition into this scenario's workload.

        ``stack`` must be the *raw* (unfiltered) stack simulated on
        ``base``.  Returns the scenario geometry plus the stack a scanner
        running this protocol would actually have produced: the angular
        subset, the detector column window, and the noise draw.
        """
        if stack.filtered:
            raise ValueError(
                "scenarios transform raw measurements; apply them before "
                "the filtering stage"
            )
        if (stack.np_, stack.nv, stack.nu) != (base.np_, base.nv, base.nu):
            raise ValueError(
                f"stack {(stack.np_, stack.nv, stack.nu)} does not match the "
                f"base acquisition {(base.np_, base.nv, base.nu)}"
            )
        geometry = self.apply_geometry(base)
        indices = self.projection_indices(base)
        crop = self._detector_crop(base)
        data = stack.data[indices, :, crop:]
        scenario_stack = ProjectionStack(
            data=data.copy(), angles=stack.angles[indices].copy()
        )
        if self.noise is not None:
            scenario_stack = self.noise.apply(scenario_stack)
        return geometry, scenario_stack

    # ------------------------------------------------------------------ #
    # Redundancy weighting (consumed by every compute backend)
    # ------------------------------------------------------------------ #
    def redundancy_weights(self, geometry: CBCTGeometry) -> Optional[np.ndarray]:
        """The applied ``(Np, Nu)`` filtering weight table, or ``None``.

        ``geometry`` must be the scenario geometry (from
        :meth:`apply_geometry`).  Raw conjugate-pair weights sum to 1 (see
        :mod:`repro.scenarios.weights`); the applied table is ``2·w`` so
        the ideal scan's table is all ones and is elided entirely.
        """
        if self.short_scan:
            delta = (geometry.angular_range - np.pi) / 2.0
            gammas = np.arctan2(geometry.detector_u_mm(), geometry.sdd)
            betas = geometry.angles - geometry.angle_offset
            return 2.0 * parker_weights(betas, gammas, delta)
        if self.detector_crop_fraction > 0:
            offset = geometry.detector_offset_u
            half_width = 0.5 * (geometry.nu - 1) * geometry.du
            overlap = half_width - abs(offset)
            u_mm = geometry.detector_u_mm() * (1.0 if offset >= 0 else -1.0)
            per_column = 2.0 * offset_detector_weights(u_mm, overlap)
            return np.broadcast_to(
                per_column, (geometry.np_, geometry.nu)
            ).copy()
        return None


# --------------------------------------------------------------------------- #
# Preset registry
# --------------------------------------------------------------------------- #
_registry: Dict[str, AcquisitionScenario] = {}


def register_scenario(scenario: AcquisitionScenario) -> AcquisitionScenario:
    """Register a scenario under its name (later registrations override)."""
    if not isinstance(scenario, AcquisitionScenario):
        raise TypeError(f"{scenario!r} is not an AcquisitionScenario")
    _registry[scenario.name] = scenario
    return scenario


def available_scenarios() -> Tuple[str, ...]:
    """Names of all registered scenarios (sorted, ``full_scan`` first)."""
    names = sorted(_registry)
    if "full_scan" in names:
        names.remove("full_scan")
        names.insert(0, "full_scan")
    return tuple(names)


def get_scenario(
    name: Union[str, AcquisitionScenario]
) -> AcquisitionScenario:
    """Resolve a scenario by name (instances pass through unchanged)."""
    if isinstance(name, AcquisitionScenario):
        return name
    try:
        return _registry[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        ) from None


def cache_token_for(name: Union[str, AcquisitionScenario]) -> str:
    """The protocol-identity token of a scenario name, for cache keys.

    Registered names (and scenario instances) resolve to their
    :attr:`AcquisitionScenario.cache_token`, so two preset *names*
    describing the same protocol share filtered projections.  Unregistered
    names are used verbatim — callers with ad-hoc scenario strings still
    get correct, if conservative, isolation.  Both the service's
    :class:`~repro.service.cache.CacheKey` and the declarative
    :meth:`~repro.api.ReconstructionPlan.filter_key` resolve through this
    one function.
    """
    if isinstance(name, AcquisitionScenario):
        return name.cache_token
    try:
        return _registry[name].cache_token
    except KeyError:
        return name


register_scenario(AcquisitionScenario(
    name="full_scan",
    description="ideal noiseless full-2π circular scan (the seed workload)",
))
register_scenario(AcquisitionScenario(
    name="short_scan",
    short_scan=True,
    description="π + 2Δ short scan with Parker redundancy weighting",
))
register_scenario(AcquisitionScenario(
    name="offset_detector",
    detector_crop_fraction=0.3,
    description="laterally shifted FPD (30% crop), virtual-full-fan weights",
))
register_scenario(AcquisitionScenario(
    name="sparse_view",
    sparse_factor=4,
    description="every 4th projection, normalization-corrected FDK weights",
))
register_scenario(AcquisitionScenario(
    name="noisy",
    noise=NoiseModel(
        photons=5.0e4, electronic_sigma=5.0,
        attenuation_scale=0.02, seed=20260729,
    ),
    description="seeded Poisson photon-counting + Gaussian electronic noise",
))
register_scenario(AcquisitionScenario(
    name="low_dose",
    sparse_factor=2,
    noise=NoiseModel(
        photons=2.0e4, electronic_sigma=8.0,
        attenuation_scale=0.02, seed=20260730,
    ),
    description="dose-limited scan: 2x sparser views and a quarter of the photons",
))

#: The built-in presets, name -> scenario.
SCENARIO_PRESETS: Dict[str, AcquisitionScenario] = dict(_registry)


# --------------------------------------------------------------------------- #
# Convenience driver
# --------------------------------------------------------------------------- #
def reconstruct_scenario(
    scenario: Union[str, AcquisitionScenario],
    base: CBCTGeometry,
    stack: ProjectionStack,
    *,
    backend: str = "reference",
    algorithm: str = "proposed",
    ramp_filter: str = "ram-lak",
):
    """Apply ``scenario`` to a base acquisition and run FDK end to end.

    Returns the :class:`~repro.core.fdk.FDKResult`; use
    :meth:`AcquisitionScenario.apply` directly when the intermediate
    geometry or measurement stack is needed.
    """
    from ..core.fdk import FDKReconstructor  # late: fdk resolves scenarios

    scenario = get_scenario(scenario)
    geometry, scenario_stack = scenario.apply(base, stack)
    reconstructor = FDKReconstructor(
        geometry=geometry,
        ramp_filter=ramp_filter,
        algorithm=algorithm,
        backend=backend,
        scenario=scenario,
    )
    return reconstructor.reconstruct(scenario_stack)
