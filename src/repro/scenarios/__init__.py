"""Acquisition-scenario engine: non-ideal CBCT protocols as data.

``repro.scenarios`` turns the seed's single workload — an ideal, noiseless
full-``2π`` circular scan — into a family: short-scan (Parker-weighted),
offset-detector (extended field of view), sparse-view (dose-limited
angular subsampling) and noisy (Poisson + Gaussian measurement model)
acquisitions, plus their combinations where the redundancy math composes.

Every preset is locked down by the scenario × backend conformance matrix
in ``tests/test_backend_conformance.py``: all compute backends must agree
with ``reference`` to ≤ 1e-5 relative RMSE under every scenario, and the
vectorized family must stay bit-identical under redundancy weighting.

See :mod:`repro.scenarios.scenario` for the declarative model and
:mod:`repro.scenarios.weights` for the redundancy-weight mathematics.
"""

from .noise import NoiseModel
from .scenario import (
    SCENARIO_PRESETS,
    AcquisitionScenario,
    available_scenarios,
    cache_token_for,
    get_scenario,
    reconstruct_scenario,
    register_scenario,
)
from .weights import conjugate_angle, offset_detector_weights, parker_weights

__all__ = [
    "SCENARIO_PRESETS",
    "AcquisitionScenario",
    "NoiseModel",
    "available_scenarios",
    "cache_token_for",
    "conjugate_angle",
    "get_scenario",
    "offset_detector_weights",
    "parker_weights",
    "reconstruct_scenario",
    "register_scenario",
]
