"""Ray-redundancy weighting tables for non-ideal acquisition scenarios.

The full-scan FDK of the paper integrates over ``2π`` with measure
``dβ/2`` — every parallel ray is measured exactly twice, and the factor
``1/2`` shares the weight evenly between the two measurements.  Real
acquisitions break that symmetry:

* a **short scan** covers only ``π + 2Δ`` (``Δ`` = half fan angle), where
  some rays are measured twice and some once;
* an **offset detector** rotates the full ``2π`` but sees the conjugate of
  a ray only on the overlap side of the shifted panel.

Both are handled by a *redundancy weight* ``w(β, γ)`` per (projection,
detector column): the raw weights of each conjugate-ray pair sum to **1**
(every parallel ray contributes unit total weight, exactly like the
``1/2 + 1/2`` of the ideal scan), and smooth ``sin²`` transitions keep the
weights continuous in ``β`` and ``γ`` so the ramp filter does not ring at
region boundaries (Parker 1982; Wang 2002 for the offset detector).

Because the repo's FDK normalization keeps the full-scan measure
``d²·Δβ/2``, the *applied* table is ``2·w`` — the ideal scan's raw weight
is the constant ``1/2``, giving an applied table of ones, i.e. the seed's
original arithmetic is the identity member of the same family.

Conjugate-ray geometry (fan beam): the ray at gantry angle ``β`` and fan
angle ``γ`` coincides with the ray at ``(β + π + 2γ, −γ)``.  This is the
"mirror ray" whose weight must complement ``w(β, γ)`` — the invariant the
property tests pin down alongside the paper's Theorems 1–3.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "parker_weights",
    "offset_detector_weights",
    "conjugate_angle",
]

#: Numerical floor for transition-region denominators (radians / mm).
_EPS = 1e-12


def conjugate_angle(beta: float, gamma: float) -> float:
    """Gantry angle of the conjugate (mirror) ray of ``(β, γ)``.

    In fan-beam geometry the ray leaving the source at gantry angle ``β``
    with fan angle ``γ`` is the same line as the ray at gantry angle
    ``β + π + 2γ`` with fan angle ``−γ``.
    """
    return float(beta + np.pi + 2.0 * gamma)


def parker_weights(
    betas: np.ndarray, gammas: np.ndarray, delta: float
) -> np.ndarray:
    """Raw Parker short-scan weights ``w(β, γ)`` of shape ``(Np, Nu)``.

    Parameters
    ----------
    betas:
        Gantry angles measured from the scan start (radians), shape ``(Np,)``.
        The scan covers ``[0, π + 2δ]``.
    gammas:
        Per-detector-column fan angles (radians), shape ``(Nu,)``; must
        satisfy ``|γ| <= δ``.
    delta:
        Half fan angle ``δ`` of the scan's nominal range ``π + 2δ``.  When
        the discrete trajectory over-scans the minimal ``π + 2Δ`` (the step
        angle rarely divides it exactly), pass the *effective*
        ``δ = (range − π)/2 >= Δ`` — the standard over-scan generalization.

    Returns
    -------
    The piecewise-``sin²`` Parker weights:

    * ``w = sin²((π/4)·β/(δ−γ))``              for ``β < 2(δ−γ)``,
    * ``w = 1``                                 in the fully-covered middle,
    * ``w = sin²((π/4)·(π+2δ−β)/(δ+γ))``       for ``β > π−2γ``,
    * ``w = 0``                                 outside ``[0, π+2δ]``.

    For every conjugate pair inside the range, ``w(β,γ) + w(β+π+2γ,−γ) = 1``
    (the transition arguments sum to ``π/2``); rays measured only once get
    weight 1.  The *applied* filtering table is ``2·w`` (module docstring).
    """
    betas = np.asarray(betas, dtype=np.float64).reshape(-1, 1)
    gammas = np.asarray(gammas, dtype=np.float64).reshape(1, -1)
    delta = float(delta)
    if delta <= 0:
        raise ValueError("delta must be positive")
    if np.any(np.abs(gammas) > delta + 1e-9):
        raise ValueError(
            "fan angles exceed delta; the short-scan range pi + 2*delta "
            "does not cover the detector"
        )
    end = np.pi + 2.0 * delta
    ramp_in = np.sin(
        (np.pi / 4.0) * betas / np.maximum(delta - gammas, _EPS)
    ) ** 2
    ramp_out = np.sin(
        (np.pi / 4.0) * (end - betas) / np.maximum(delta + gammas, _EPS)
    ) ** 2
    w = np.where(
        betas < 2.0 * (delta - gammas),
        ramp_in,
        np.where(betas > np.pi - 2.0 * gammas, ramp_out, 1.0),
    )
    in_range = (betas >= -1e-12) & (betas <= end + 1e-12)
    return np.where(in_range, w, 0.0)


def offset_detector_weights(
    u_mm: np.ndarray, overlap_half_mm: float
) -> np.ndarray:
    """Raw virtual-full-fan weights for an offset (half-fan) detector.

    A detector shifted towards ``+u`` still measures both conjugates of a
    ray only inside the overlap band ``|u| <= overlap_half_mm`` around the
    principal ray; beyond it each ray is seen once per rotation.  The
    weights (Wang 2002) blend the double-covered band smoothly:

    * ``w = 0``                                for ``u < −overlap``,
    * ``w = sin²((π/4)·(1 + u/overlap))``      for ``|u| <= overlap``,
    * ``w = 1``                                for ``u > overlap``,

    so that ``w(u) + w(−u) = 1`` — the conjugate column sits at ``−u``.
    For a detector shifted towards ``−u``, pass ``−u_mm``.  As with the
    Parker weights, the applied filtering table is ``2·w``.

    Parameters
    ----------
    u_mm:
        Physical column offsets from the principal ray (mm), shape ``(Nu,)``.
    overlap_half_mm:
        Half-width (mm) of the double-covered band — the distance from the
        principal ray to the *near* edge of the shifted panel.
    """
    overlap_half_mm = float(overlap_half_mm)
    if overlap_half_mm <= 0:
        raise ValueError(
            "overlap_half_mm must be positive: the offset detector must "
            "still cover the principal ray with margin on both sides"
        )
    u_mm = np.asarray(u_mm, dtype=np.float64)
    t = np.clip(u_mm / overlap_half_mm, -1.0, 1.0)
    return np.sin((np.pi / 4.0) * (1.0 + t)) ** 2
