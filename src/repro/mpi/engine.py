"""SPMD execution engine: run an MPI-style program with N in-process ranks.

``run_spmd`` plays the role of ``mpiexec -n N python program.py`` for the
simulated communicator: it creates the world context, spawns one thread per
rank, runs the rank function everywhere and collects either the per-rank
return values or the first exception (all ranks are joined before the error
is re-raised, so a failing test cannot leak threads).
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from .communicator import SimCommunicator, _Context

__all__ = ["RankFailure", "SpmdError", "run_spmd"]


@dataclass
class RankFailure:
    """Captured exception from one rank."""

    rank: int
    exception: BaseException
    traceback_text: str

    def __str__(self) -> str:  # pragma: no cover - formatting only
        return f"rank {self.rank}: {self.exception!r}\n{self.traceback_text}"


class SpmdError(RuntimeError):
    """Raised when one or more ranks of an SPMD run fail."""

    def __init__(self, failures: Sequence[RankFailure]):
        self.failures = list(failures)
        summary = "; ".join(f"rank {f.rank}: {f.exception!r}" for f in self.failures)
        super().__init__(f"{len(self.failures)} rank(s) failed: {summary}")


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    name: str = "world",
    timeout: Optional[float] = 600.0,
    **kwargs: Any,
) -> List[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``n_ranks`` simulated MPI ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks (threads) to launch.
    fn:
        The rank program.  Its first argument is the rank's
        :class:`~repro.mpi.communicator.SimCommunicator`.
    timeout:
        Per-thread join timeout in seconds; ``None`` waits forever.  A rank
        still alive after the timeout indicates a deadlock (e.g. mismatched
        collectives) and raises :class:`SpmdError`.

    Returns
    -------
    list
        The return value of every rank, indexed by rank.
    """
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")

    context = _Context(size=n_ranks, name=name)
    results: List[Any] = [None] * n_ranks
    failures: List[RankFailure] = []
    failures_lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = SimCommunicator(rank=rank, size=n_ranks, _context=context)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - report every rank failure
            with failures_lock:
                failures.append(
                    RankFailure(
                        rank=rank,
                        exception=exc,
                        traceback_text=traceback.format_exc(),
                    )
                )
            # Abort the barrier so sibling ranks blocked in a collective see
            # a BrokenBarrierError instead of deadlocking.
            context.barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"{name}-rank{rank}")
        for rank in range(n_ranks)
    ]
    for thread in threads:
        thread.start()
    hung = []
    for rank, thread in enumerate(threads):
        thread.join(timeout=timeout)
        if thread.is_alive():
            hung.append(rank)
    if hung:
        context.barrier.abort()
        for thread in threads:
            thread.join(timeout=5.0)
        raise SpmdError(
            [
                RankFailure(
                    rank=rank,
                    exception=TimeoutError(f"rank {rank} did not finish"),
                    traceback_text="",
                )
                for rank in hung
            ]
        )
    if failures:
        primary = sorted(failures, key=lambda f: f.rank)
        raise SpmdError(primary)
    return results
