"""Latency/bandwidth cost model for the MPI collectives.

The paper measures ``TH_AllGather`` and ``TH_Reduce`` with the Intel MPI
benchmarks on ABCI's dual InfiniBand EDR fabric and feeds the measured
throughputs into the performance model (Section 4.2.1).  Those measurements
cannot be repeated here, so this module provides an alpha–beta (Hockney)
style model of the two collectives iFDK uses:

* **AllGather** — ring algorithm: each of the ``p`` ranks forwards
  ``p - 1`` messages, so the time is ``(p-1)·(α + m/β_ag)`` for a
  per-rank contribution of ``m`` bytes.
* **Reduce** — pipelined reduction of one large buffer: a tree of
  ``⌈log2 p⌉`` rounds whose latency terms add up, while the payload streams
  at an effective end-to-end bandwidth ``β_red`` that already folds in the
  on-CPU summation.

``ABCI_COLLECTIVES`` is calibrated against the numbers the paper itself
publishes: an AllGather of one 16 MB filtered projection across a 32-rank
column takes ≈0.25 s (implied by the ``T_AllGather`` column of Table 5) and
reducing an 8 GB sub-volume takes ≈2.7 s (Section 5.3.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CollectiveCostModel", "ABCI_COLLECTIVES"]


@dataclass(frozen=True)
class CollectiveCostModel:
    """Cost model for AllGather and Reduce on a fat-tree fabric.

    Parameters
    ----------
    allgather_bandwidth:
        Effective per-hop bandwidth of the ring AllGather, bytes/s.
    reduce_bandwidth:
        Effective end-to-end bandwidth of a pipelined large-message Reduce
        (network + on-CPU summation), bytes/s.
    latency:
        Per-message software + network latency, seconds.
    """

    allgather_bandwidth: float = 2.2e9
    reduce_bandwidth: float = 3.0e9
    latency: float = 30e-6

    def __post_init__(self) -> None:
        if self.allgather_bandwidth <= 0 or self.reduce_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    # ------------------------------------------------------------------ #
    def allgather_seconds(self, message_bytes: int, group_size: int) -> float:
        """Ring AllGather: per-rank contribution ``message_bytes``, ``p`` ranks."""
        self._check(message_bytes, group_size)
        if group_size == 1:
            return 0.0
        p = group_size
        return (p - 1) * (self.latency + message_bytes / self.allgather_bandwidth)

    def reduce_seconds(self, message_bytes: int, group_size: int) -> float:
        """Pipelined Reduce of one ``message_bytes`` buffer across ``p`` ranks."""
        self._check(message_bytes, group_size)
        if group_size == 1:
            return 0.0
        rounds = math.ceil(math.log2(group_size))
        return rounds * self.latency + message_bytes / self.reduce_bandwidth

    def allgather_throughput(self, message_bytes: int, group_size: int) -> float:
        """Effective AllGather operations/second (the paper's ``TH_AllGather``)."""
        seconds = self.allgather_seconds(message_bytes, group_size)
        return float("inf") if seconds == 0 else 1.0 / seconds

    def reduce_throughput_bytes(self, message_bytes: int, group_size: int) -> float:
        """Effective Reduce bandwidth in bytes/second (``TH_Reduce``)."""
        seconds = self.reduce_seconds(message_bytes, group_size)
        return float("inf") if seconds == 0 else message_bytes / seconds

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check(message_bytes: int, group_size: int) -> None:
        if message_bytes < 0:
            raise ValueError("message_bytes must be non-negative")
        if group_size <= 0:
            raise ValueError("group_size must be positive")


#: Calibrated against the ABCI figures published in the paper (see module
#: docstring for the two anchor points).
ABCI_COLLECTIVES = CollectiveCostModel(
    allgather_bandwidth=2.2e9,
    reduce_bandwidth=3.0e9,
    latency=30e-6,
)
