"""The 2-D grid of MPI ranks (Section 4.1.1, Figure 3).

iFDK arranges its ``N_ranks = R × C`` ranks in a 2-D grid:

* the ``C`` *columns* partition the input projections — every column loads
  and filters ``Np / C`` projections, and the ranks of a column share their
  filtered projections with an ``MPI_Allgather``;
* the ``R`` *rows* partition the output volume — every rank in row ``r``
  back-projects into the same Z-slab, and the slab's final value is the
  ``MPI_Reduce`` of the partial slabs across the row.

Rank ``g`` (global, column-major as in Figure 3a: ranks 0..R-1 form column
0) sits at row ``g mod R`` and column ``g div R``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .communicator import SimCommunicator

__all__ = ["GridPosition", "RankGrid2D"]


@dataclass(frozen=True)
class GridPosition:
    """Position of one rank in the R×C grid."""

    global_rank: int
    row: int
    column: int


class RankGrid2D:
    """Mapping between global ranks and the R×C grid, plus sub-communicators.

    Parameters
    ----------
    rows, columns:
        ``R`` and ``C`` of Table 2.  ``R·C`` must equal the size of the
        communicator this grid is used with.
    """

    def __init__(self, rows: int, columns: int):
        if rows <= 0 or columns <= 0:
            raise ValueError("rows and columns must be positive")
        self.rows = int(rows)
        self.columns = int(columns)

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return self.rows * self.columns

    def position(self, global_rank: int) -> GridPosition:
        """Grid coordinates of a global rank (column-major, Figure 3a)."""
        if not 0 <= global_rank < self.size:
            raise ValueError(f"rank {global_rank} outside grid of size {self.size}")
        return GridPosition(
            global_rank=global_rank,
            row=global_rank % self.rows,
            column=global_rank // self.rows,
        )

    def global_rank(self, row: int, column: int) -> int:
        """Global rank at grid coordinates ``(row, column)``."""
        if not 0 <= row < self.rows or not 0 <= column < self.columns:
            raise ValueError(
                f"position ({row}, {column}) outside a {self.rows}x{self.columns} grid"
            )
        return column * self.rows + row

    def column_members(self, column: int) -> List[int]:
        """Global ranks forming one column (they share input projections)."""
        return [self.global_rank(row, column) for row in range(self.rows)]

    def row_members(self, row: int) -> List[int]:
        """Global ranks forming one row (they reduce one sub-volume)."""
        return [self.global_rank(row, column) for column in range(self.columns)]

    # ------------------------------------------------------------------ #
    def split(
        self, comm: SimCommunicator
    ) -> Tuple[GridPosition, SimCommunicator, SimCommunicator]:
        """Create the column and row communicators for ``comm``'s rank.

        Returns ``(position, column_comm, row_comm)`` where ``column_comm``
        groups the ranks of this rank's column (used for the projection
        AllGather) and ``row_comm`` groups the ranks of its row (used for
        the sub-volume Reduce).
        """
        if comm.size != self.size:
            raise ValueError(
                f"communicator size {comm.size} does not match grid "
                f"{self.rows}x{self.columns} = {self.size}"
            )
        position = self.position(comm.rank)
        column_comm = comm.Split(color=position.column, key=position.row)
        row_comm = comm.Split(color=position.row, key=position.column)
        return position, column_comm, row_comm
