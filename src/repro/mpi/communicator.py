"""An in-process, thread-per-rank MPI communicator.

The paper uses Intel MPI over InfiniBand to coordinate up to 2,048 ranks;
this environment has no MPI launcher, so the communicator below provides
the same programming model *inside one process*: every rank is a Python
thread, collectives are implemented with shared memory and reusable
barriers, and the SPMD contract (all ranks of a communicator call the same
collectives in the same order) is the same one real MPI imposes.

Because NumPy releases the GIL for array operations, ranks genuinely overlap
their filtering/back-projection work, which is what makes the functional
pipeline simulation in :mod:`repro.pipeline` meaningful.

Supported operations (the subset iFDK needs, mirroring mpi4py's upper-case
buffer API): ``Barrier``, ``Bcast``, ``Scatter``, ``Gather``, ``Allgather``,
``Reduce``, ``Allreduce``, ``Send``/``Recv`` and ``Split``.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .datatypes import ReduceOp, validate_buffer

__all__ = ["SimCommunicator", "CommunicatorError"]


class CommunicatorError(RuntimeError):
    """Raised on misuse of the simulated communicator (SPMD violations)."""


class _Context:
    """Shared state of one communicator (one instance per rank group)."""

    def __init__(self, size: int, name: str):
        self.size = size
        self.name = name
        self.barrier = threading.Barrier(size)
        self.lock = threading.Lock()
        self.slots: Dict[str, Any] = {}
        self.point_to_point: Dict[Tuple[int, int, int], "queue.Queue[np.ndarray]"] = {}
        self.bytes_moved = 0
        self.collective_calls: Dict[str, int] = {}
        self._split_cache: Dict[Any, "_Context"] = {}

    # ------------------------------------------------------------------ #
    def p2p_queue(self, src: int, dst: int, tag: int) -> "queue.Queue[np.ndarray]":
        key = (src, dst, tag)
        with self.lock:
            if key not in self.point_to_point:
                self.point_to_point[key] = queue.Queue()
            return self.point_to_point[key]

    def account(self, operation: str, nbytes: int) -> None:
        with self.lock:
            self.bytes_moved += int(nbytes)
            self.collective_calls[operation] = self.collective_calls.get(operation, 0) + 1


@dataclass
class SimCommunicator:
    """Handle giving one rank access to its communicator.

    Create the world communicator only through
    :func:`repro.mpi.engine.run_spmd`, which owns the shared context;
    sub-communicators are created with :meth:`Split`.
    """

    rank: int
    size: int
    _context: _Context

    def __post_init__(self) -> None:
        if not 0 <= self.rank < self.size:
            raise ValueError(f"rank {self.rank} outside communicator of size {self.size}")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self._context.name

    @property
    def bytes_moved(self) -> int:
        """Total bytes moved through this communicator (all ranks)."""
        return self._context.bytes_moved

    @property
    def collective_calls(self) -> Dict[str, int]:
        """Histogram of collective invocations (all ranks)."""
        return dict(self._context.collective_calls)

    def Get_rank(self) -> int:  # noqa: N802 - mpi4py-style name
        return self.rank

    def Get_size(self) -> int:  # noqa: N802
        return self.size

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _exchange(self, operation: str, payload: Any) -> List[Any]:
        """All ranks deposit ``payload``; every rank gets the ordered list.

        Two barrier phases guarantee that (1) all deposits are visible before
        anyone reads and (2) all reads finish before the slot is reused by
        the next collective.
        """
        ctx = self._context
        slot_key = f"{operation}"
        with ctx.lock:
            store = ctx.slots.setdefault(slot_key, [None] * self.size)
            store[self.rank] = payload
        ctx.barrier.wait()
        with ctx.lock:
            gathered = list(ctx.slots[slot_key])
        # The second barrier guarantees every rank has read the slot before
        # any rank can deposit into it again for the next collective.
        ctx.barrier.wait()
        return gathered

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    def Barrier(self) -> None:  # noqa: N802
        """Block until every rank of the communicator has arrived."""
        self._context.account("Barrier", 0)
        self._context.barrier.wait()

    def Bcast(self, buffer: np.ndarray, root: int = 0) -> np.ndarray:  # noqa: N802
        """Broadcast ``buffer`` from ``root``; returns the received array."""
        validate_buffer(buffer)
        self._check_root(root)
        # Deposit a copy: the collective returns as soon as this rank is done,
        # so the caller may legally reuse its buffer immediately (MPI blocking
        # semantics) even though siblings read the deposit later.
        payload = np.array(buffer, copy=True) if self.rank == root else None
        gathered = self._exchange("Bcast", payload)
        source = gathered[root]
        self._context.account("Bcast", source.nbytes)
        if self.rank == root:
            return buffer
        np.copyto(buffer, source)
        return buffer

    def Scatter(  # noqa: N802
        self, sendbuf: Optional[np.ndarray], recvbuf: np.ndarray, root: int = 0
    ) -> np.ndarray:
        """Scatter equal chunks of ``sendbuf`` (at root) to every rank."""
        validate_buffer(recvbuf, "recvbuf")
        self._check_root(root)
        if self.rank == root:
            validate_buffer(sendbuf, "sendbuf")
            if sendbuf.shape[0] != self.size:
                raise CommunicatorError(
                    f"Scatter sendbuf first dimension ({sendbuf.shape[0]}) must equal "
                    f"communicator size ({self.size})"
                )
        gathered = self._exchange(
            "Scatter", np.array(sendbuf, copy=True) if self.rank == root else None
        )
        chunks = gathered[root]
        np.copyto(recvbuf, chunks[self.rank])
        self._context.account("Scatter", recvbuf.nbytes)
        return recvbuf

    def Gather(  # noqa: N802
        self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray], root: int = 0
    ) -> Optional[np.ndarray]:
        """Gather equal-size contributions onto ``root``."""
        validate_buffer(sendbuf, "sendbuf")
        self._check_root(root)
        gathered = self._exchange("Gather", np.array(sendbuf, copy=True))
        self._context.account("Gather", sendbuf.nbytes)
        if self.rank != root:
            return None
        if recvbuf is None:
            recvbuf = np.empty((self.size,) + sendbuf.shape, dtype=sendbuf.dtype)
        for index, chunk in enumerate(gathered):
            np.copyto(recvbuf[index], chunk)
        return recvbuf

    def Allgather(  # noqa: N802
        self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """All ranks gather every rank's contribution (rank order)."""
        validate_buffer(sendbuf, "sendbuf")
        gathered = self._exchange("Allgather", np.array(sendbuf, copy=True))
        self._context.account("Allgather", sendbuf.nbytes * self.size)
        if recvbuf is None:
            recvbuf = np.empty((self.size,) + sendbuf.shape, dtype=sendbuf.dtype)
        for index, chunk in enumerate(gathered):
            np.copyto(recvbuf[index], chunk)
        return recvbuf

    def Reduce(  # noqa: N802
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray] = None,
        op: ReduceOp = ReduceOp.SUM,
        root: int = 0,
    ) -> Optional[np.ndarray]:
        """Element-wise reduction onto ``root``."""
        validate_buffer(sendbuf, "sendbuf")
        self._check_root(root)
        gathered = self._exchange("Reduce", np.array(sendbuf, copy=True))
        self._context.account("Reduce", sendbuf.nbytes)
        if self.rank != root:
            return None
        combined = op.combine(gathered)
        if recvbuf is None:
            return combined
        np.copyto(recvbuf, combined)
        return recvbuf

    def Allreduce(  # noqa: N802
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray] = None,
        op: ReduceOp = ReduceOp.SUM,
    ) -> np.ndarray:
        """Element-wise reduction delivered to every rank."""
        validate_buffer(sendbuf, "sendbuf")
        gathered = self._exchange("Allreduce", np.array(sendbuf, copy=True))
        self._context.account("Allreduce", sendbuf.nbytes * 2)
        combined = op.combine(gathered)
        if recvbuf is None:
            return combined
        np.copyto(recvbuf, combined)
        return recvbuf

    # ------------------------------------------------------------------ #
    # Point-to-point
    # ------------------------------------------------------------------ #
    def Send(self, buffer: np.ndarray, dest: int, tag: int = 0) -> None:  # noqa: N802
        """Send a copy of ``buffer`` to ``dest``."""
        validate_buffer(buffer)
        self._check_root(dest)
        q = self._context.p2p_queue(self.rank, dest, tag)
        self._context.account("Send", buffer.nbytes)
        q.put(np.array(buffer, copy=True))

    def Recv(  # noqa: N802
        self, buffer: np.ndarray, source: int, tag: int = 0, timeout: float = 60.0
    ) -> np.ndarray:
        """Receive into ``buffer`` from ``source`` (blocking, with timeout)."""
        validate_buffer(buffer)
        self._check_root(source)
        q = self._context.p2p_queue(source, self.rank, tag)
        try:
            received = q.get(timeout=timeout)
        except queue.Empty as exc:
            raise CommunicatorError(
                f"Recv from rank {source} (tag {tag}) timed out after {timeout}s"
            ) from exc
        if received.shape != buffer.shape:
            raise CommunicatorError(
                f"Recv shape mismatch: got {received.shape}, expected {buffer.shape}"
            )
        np.copyto(buffer, received)
        return buffer

    # ------------------------------------------------------------------ #
    # Sub-communicators
    # ------------------------------------------------------------------ #
    def Split(self, color: int, key: Optional[int] = None) -> "SimCommunicator":  # noqa: N802
        """Partition the communicator by ``color``; order ranks by ``key``.

        Mirrors ``MPI_Comm_split``: ranks passing the same ``color`` form a
        new communicator, ordered by ``(key, old_rank)``.
        """
        key = self.rank if key is None else int(key)
        gathered = self._exchange("Split", (int(color), key, self.rank))
        members = sorted(
            (k, r) for c, k, r in gathered if c == int(color)
        )
        ranks_in_group = [r for _, r in members]
        new_rank = ranks_in_group.index(self.rank)
        cache_key = ("split", tuple(ranks_in_group))
        ctx = self._context
        with ctx.lock:
            if cache_key not in ctx._split_cache:
                ctx._split_cache[cache_key] = _Context(
                    size=len(ranks_in_group),
                    name=f"{ctx.name}/color{color}",
                )
            new_context = ctx._split_cache[cache_key]
        # Every rank must observe the cached context before any group starts
        # issuing collectives on the new communicator.
        ctx.barrier.wait()
        return SimCommunicator(rank=new_rank, size=len(ranks_in_group), _context=new_context)

    # ------------------------------------------------------------------ #
    def _check_root(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommunicatorError(
                f"rank {rank} outside communicator of size {self.size}"
            )
