"""Reduction operations and buffer helpers for the in-process MPI substrate.

Only the small subset of MPI semantics that iFDK relies on is modelled:
contiguous NumPy buffers, the ``SUM``/``MAX``/``MIN``/``PROD`` reduction
operators (iFDK itself only uses ``SUM``), and shape/dtype validation so
that mismatched collective calls fail loudly instead of corrupting data.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Sequence

import numpy as np

__all__ = ["ReduceOp", "validate_buffer", "buffers_compatible"]


class ReduceOp(Enum):
    """Reduction operators supported by the simulated collectives."""

    SUM = "sum"
    PROD = "prod"
    MAX = "max"
    MIN = "min"

    @property
    def ufunc(self) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
        """The NumPy ufunc implementing this reduction."""
        return {
            ReduceOp.SUM: np.add,
            ReduceOp.PROD: np.multiply,
            ReduceOp.MAX: np.maximum,
            ReduceOp.MIN: np.minimum,
        }[self]

    def combine(self, buffers: Sequence[np.ndarray]) -> np.ndarray:
        """Reduce a sequence of equally-shaped buffers into a new array."""
        if not buffers:
            raise ValueError("cannot reduce an empty sequence of buffers")
        result = np.array(buffers[0], copy=True)
        for buf in buffers[1:]:
            self.ufunc(result, buf, out=result)
        return result


def validate_buffer(buffer: np.ndarray, name: str = "buffer") -> np.ndarray:
    """Require a NumPy array (any shape); returns it unchanged."""
    if not isinstance(buffer, np.ndarray):
        raise TypeError(f"{name} must be a numpy.ndarray, got {type(buffer).__name__}")
    return buffer


def buffers_compatible(a: np.ndarray, b: np.ndarray) -> bool:
    """True when two buffers have identical shape and dtype."""
    return a.shape == b.shape and a.dtype == b.dtype
