"""In-process MPI substrate for the iFDK reproduction.

Provides the SPMD programming model the paper's framework is written
against — rank grids, collectives and point-to-point messages — implemented
with one thread per rank inside a single Python process, plus an
alpha–beta cost model used by the at-scale performance projections.
"""

from .communicator import CommunicatorError, SimCommunicator
from .costmodel import ABCI_COLLECTIVES, CollectiveCostModel
from .datatypes import ReduceOp
from .engine import RankFailure, SpmdError, run_spmd
from .grid import GridPosition, RankGrid2D

__all__ = [
    "ABCI_COLLECTIVES",
    "CollectiveCostModel",
    "CommunicatorError",
    "GridPosition",
    "RankFailure",
    "RankGrid2D",
    "ReduceOp",
    "SimCommunicator",
    "SpmdError",
    "run_spmd",
]
