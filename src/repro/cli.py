"""Command-line interface for the iFDK reproduction.

Seven subcommands cover the workflows a downstream user needs:

``reconstruct``
    Synthesize Shepp-Logan projections for a given problem size and run the
    FDK pipeline — single-node or distributed on the simulated cluster —
    writing the volume (as ``.npy``) and a JSON report.  ``--scenario``
    replays the acquisition through a non-ideal protocol (short-scan,
    offset-detector, sparse-view, noisy) before reconstructing.
``scenarios``
    List the registered acquisition-scenario presets.
``predict``
    Evaluate the Eq. 8-19 performance model for a problem / GPU count and
    print the runtime breakdown (the Figure 5 stacked bars as text).
``table4``
    Regenerate the Table 4 kernel-throughput comparison from the V100 cost
    model.
``serve``
    Replay a multi-tenant arrival trace through the reconstruction service
    (``repro.service``): SLO-aware GPU packing, admission control and the
    filtered-projection cache, reporting throughput and tail latency.
``submit``
    Run a single job through the service and print its report.
``trace``
    Generate a synthetic multi-tenant workload trace for ``serve``.

Invoke as ``python -m repro.cli <subcommand> ...`` (or ``repro ...`` once
the package is installed).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from .backends import available_backends
from .bench import TABLE4_PROBLEMS, format_table, paper_reference_table4
from .core import (
    EllipsoidPhantom,
    FDKReconstructor,
    default_geometry_for_problem,
    forward_project_analytic,
    shepp_logan_ellipsoids,
)
from .core.types import problem_from_string
from .gpusim import KERNEL_VARIANTS, BackprojectionCostModel, TESLA_V100
from .pipeline import IFDKConfig, IFDKFramework, IFDKPerformanceModel, choose_grid
from .scenarios import available_scenarios, get_scenario
from .service import (
    AdmissionPolicy,
    ArrivalTrace,
    ReconstructionJob,
    ReconstructionService,
    synthetic_trace,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iFDK reproduction: FDK reconstruction and performance models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("reconstruct", help="reconstruct a synthetic Shepp-Logan scan")
    rec.add_argument("--problem", default="96x96x120->64x64x64",
                     help="problem spec NuxNvxNp->NxxNyxNz (default: %(default)s)")
    rec.add_argument("--algorithm", choices=("proposed", "standard"), default="proposed")
    rec.add_argument("--ramp-filter", default="ram-lak")
    rec.add_argument("--backend", choices=available_backends(), default="reference",
                     help="compute backend for the filter/back-projection hot "
                          "paths (default: %(default)s)")
    rec.add_argument("--workers", type=int, default=None,
                     help="worker threads for the parallel backend (requires "
                          "--backend parallel; results are bit-identical for "
                          "every worker count)")
    rec.add_argument("--scenario", choices=available_scenarios(),
                     default="full_scan",
                     help="acquisition-scenario preset to replay the scan "
                          "through (default: %(default)s; see 'repro scenarios')")
    rec.add_argument("--distributed", action="store_true",
                     help="run on the simulated cluster instead of a single node")
    rec.add_argument("--rows", type=int, default=None, help="R of the rank grid")
    rec.add_argument("--columns", type=int, default=None, help="C of the rank grid")
    rec.add_argument("--output", type=Path, default=None,
                     help="write the volume to this .npy file")
    rec.add_argument("--report", type=Path, default=None,
                     help="write a JSON run report to this file")

    pred = sub.add_parser("predict", help="evaluate the Eq. 8-19 performance model")
    pred.add_argument("--problem", default="2048x2048x4096->4096x4096x4096")
    pred.add_argument("--gpus", type=int, default=2048)
    pred.add_argument("--rows", type=int, default=None,
                      help="override R (defaults to the Section 4.1.5 rule)")

    sub.add_parser("table4", help="regenerate Table 4 from the V100 cost model")

    sub.add_parser(
        "scenarios", help="list the registered acquisition-scenario presets"
    )

    serve = sub.add_parser(
        "serve", help="replay a multi-tenant trace through the reconstruction service"
    )
    serve.add_argument("--trace", type=Path, required=True,
                       help="workload trace JSON (see 'repro trace')")
    serve.add_argument("--gpus", type=int, default=None,
                       help="cluster size (default: the trace's cluster_gpus)")
    serve.add_argument("--policy", choices=("slo", "fifo"), default="slo",
                       help="scheduling policy (default: %(default)s)")
    serve.add_argument("--max-queue-depth", type=int, default=256)
    serve.add_argument("--backend", choices=available_backends(), default="reference",
                       help="compute backend the cluster's ranks run")
    serve.add_argument("--workers", type=int, default=None,
                       help="run each placed job for real (a pilot FDK "
                            "execution) on a pool of this many workers, and "
                            "report the measured worker accounting")
    serve.add_argument("--report", type=Path, default=None,
                       help="write the full JSON service report to this file")

    submit = sub.add_parser("submit", help="run one job through the service")
    submit.add_argument("--problem", default="2048x2048x1024->1024x1024x1024")
    submit.add_argument("--gpus", type=int, default=16, help="cluster size")
    submit.add_argument("--slo", type=float, default=None,
                        help="latency SLO in seconds (default: best effort)")
    submit.add_argument("--priority", type=int, default=1,
                        help="priority class, 0 = most urgent")
    submit.add_argument("--dataset", default="",
                        help="dataset content key (enables cache reuse)")
    submit.add_argument("--backend", choices=available_backends(), default="reference",
                        help="compute backend the cluster's ranks run")
    submit.add_argument("--scenario", choices=available_scenarios(),
                        default="full_scan",
                        help="acquisition-scenario preset of the job's dataset")
    submit.add_argument("--workers", type=int, default=None,
                        help="also run the job for real (a pilot FDK "
                             "execution) on a pool of this many workers")

    trace = sub.add_parser("trace", help="generate a synthetic workload trace")
    trace.add_argument("--jobs", type=int, default=24)
    trace.add_argument("--gpus", type=int, default=16)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--heavy-fraction", type=float, default=0.25,
                       help="fraction of heavy 2K reconstructions")
    trace.add_argument("--scenario-mix", default=None, metavar="NAME=W[,NAME=W...]",
                       help="sample job scenarios from this weighted mix, e.g. "
                            "'full_scan=0.6,short_scan=0.3,sparse_view=0.1' "
                            "(default: every job is full_scan)")
    trace.add_argument("--output", "-o", type=Path, required=True,
                       help="write the trace JSON to this file")
    return parser


def _validated_workers(workers: Optional[int]) -> Optional[int]:
    """``--workers`` must be >= 1 when given (ValueError -> exit code 2)."""
    if workers is not None and workers < 1:
        raise ValueError(
            f"--workers must be a positive integer (got {workers})"
        )
    return workers


def _parse_scenario_mix(spec: Optional[str]):
    """Parse ``name=weight,name=weight`` into a dict (None passes through)."""
    if spec is None:
        return None
    mix = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition("=")
        if not weight:
            raise ValueError(
                f"scenario mix entry {part!r} must look like name=weight"
            )
        get_scenario(name.strip())  # validate the preset exists
        mix[name.strip()] = float(weight)
    if not mix:
        raise ValueError("scenario mix is empty")
    return mix


def _cmd_reconstruct(args: argparse.Namespace) -> int:
    from .backends import resolve_backend

    workers = _validated_workers(args.workers)
    # Fail fast on a workers/backend mismatch, before the forward projection.
    resolve_backend(args.backend, workers=workers)
    problem = problem_from_string(args.problem)
    geometry = default_geometry_for_problem(
        nu=problem.nu, nv=problem.nv, np_=problem.np_,
        nx=problem.nx, ny=problem.ny, nz=problem.nz,
    )
    scenario = get_scenario(args.scenario)
    if args.distributed and not scenario.is_ideal:
        print(
            "error: --scenario presets run single-node; the distributed "
            "pipeline only serves the ideal full scan for now",
            file=sys.stderr,
        )
        return 2
    phantom = EllipsoidPhantom(shepp_logan_ellipsoids())
    print(f"forward projecting {problem} ...", file=sys.stderr)
    stack = forward_project_analytic(phantom, geometry)
    if not scenario.is_ideal:
        print(f"applying acquisition scenario {scenario.name} ...", file=sys.stderr)
    geometry, stack = scenario.apply(geometry, stack)

    report: dict = {"problem": str(problem), "algorithm": args.algorithm,
                    "backend": args.backend, "scenario": scenario.name,
                    "workers": workers,
                    "projections": stack.np_,
                    "angular_range": float(geometry.angular_range)}
    if args.distributed:
        rows = args.rows or 2
        columns = args.columns or 2
        config = IFDKConfig(geometry=geometry, rows=rows, columns=columns,
                            ramp_filter=args.ramp_filter, backend=args.backend,
                            workers=workers)
        result = IFDKFramework(config).reconstruct(stack)
        volume = result.volume
        report.update(
            mode="distributed",
            rows=rows,
            columns=columns,
            wall_seconds=result.wall_seconds,
            gups=result.gups,
            overlap_delta=result.mean_overlap_delta(),
            modelled_runtime_at_scale=result.modelled.t_runtime,
        )
    else:
        with FDKReconstructor(
            geometry=geometry, ramp_filter=args.ramp_filter,
            algorithm=args.algorithm, backend=args.backend,
            scenario=scenario, workers=workers,
        ) as reconstructor:
            fdk = reconstructor.reconstruct(stack)
        volume = fdk.volume
        report.update(
            mode="single-node",
            filter_seconds=fdk.filter_seconds,
            backprojection_seconds=fdk.backprojection_seconds,
            gups=fdk.gups,
        )

    report["volume_min"] = float(volume.data.min())
    report["volume_max"] = float(volume.data.max())
    if args.output is not None:
        np.save(args.output, volume.data)
        report["output"] = str(args.output)
        print(f"volume written to {args.output}", file=sys.stderr)
    if args.report is not None:
        args.report.write_text(json.dumps(report, indent=2))
    print(json.dumps(report, indent=2))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    problem = problem_from_string(args.problem)
    if args.rows is not None:
        rows = args.rows
        if args.gpus % rows != 0:
            print(f"error: {args.gpus} GPUs not divisible by R={rows}", file=sys.stderr)
            return 2
        columns = args.gpus // rows
    else:
        rows, columns = choose_grid(problem, args.gpus)
    model = IFDKPerformanceModel()
    breakdown = model.breakdown(problem, rows, columns)
    rows_out = [
        {"term": term, "seconds": seconds}
        for term, seconds in breakdown.as_dict().items()
        if term != "delta"
    ]
    print(format_table(
        rows_out, ["term", "seconds"],
        title=f"{problem} on {args.gpus} GPUs (R={rows}, C={columns})",
        float_format="{:.2f}",
    ))
    print(f"delta = {breakdown.delta:.2f}, end-to-end GUPS = "
          f"{problem.gups(breakdown.t_runtime):.0f}")
    return 0


def _cmd_table4(_: argparse.Namespace) -> int:
    model = BackprojectionCostModel(TESLA_V100)
    rows = []
    for problem in TABLE4_PROBLEMS:
        row = {"problem": str(problem), "alpha": problem.alpha}
        for kernel in KERNEL_VARIANTS:
            row[kernel.name] = model.gups(kernel, problem)
            reference = paper_reference_table4[str(problem)][kernel.name]
            row[f"{kernel.name} (paper)"] = float("nan") if reference is None else reference
        rows.append(row)
    columns = ["problem", "alpha"]
    for kernel in KERNEL_VARIANTS:
        columns += [kernel.name, f"{kernel.name} (paper)"]
    print(format_table(rows, columns, title="Table 4 (model vs paper), GUPS"))
    return 0


def _cmd_scenarios(_: argparse.Namespace) -> int:
    rows = []
    for name in available_scenarios():
        scenario = get_scenario(name)
        rows.append({
            "name": scenario.name,
            "short-scan": "yes" if scenario.short_scan else "",
            "detector crop": (
                f"{scenario.detector_crop_fraction:.0%}"
                if scenario.detector_crop_fraction else ""
            ),
            "sparse": (
                f"1/{scenario.sparse_factor}" if scenario.sparse_factor > 1 else ""
            ),
            "noise": scenario.noise.token if scenario.noise else "",
            "description": scenario.description,
        })
    print(format_table(
        rows,
        ["name", "short-scan", "detector crop", "sparse", "noise", "description"],
        title="acquisition-scenario presets (use with --scenario)",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    workers = _validated_workers(args.workers)
    if not args.trace.exists():
        print(f"error: trace file {args.trace} does not exist", file=sys.stderr)
        return 2
    trace = ArrivalTrace.load(args.trace)
    gpus = args.gpus or trace.cluster_gpus
    with ReconstructionService(
        gpus,
        policy=args.policy,
        admission=AdmissionPolicy(max_depth=args.max_queue_depth),
        backend=args.backend,
        workers=workers or 0,
    ) as service:
        report = service.replay(trace)
    print(_format_service_report(report))
    if args.report is not None:
        args.report.write_text(json.dumps(report.as_dict(), indent=2))
        print(f"report written to {args.report}", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    problem = problem_from_string(args.problem)
    with ReconstructionService(
        args.gpus, policy="slo", backend=args.backend,
        workers=_validated_workers(args.workers) or 0,
    ) as service:
        job = ReconstructionJob(
            problem=problem,
            tenant="cli",
            dataset_id=args.dataset,
            priority=args.priority,
            slo_seconds=args.slo,
            scenario=args.scenario,
        )
        accepted = service.submit(job)
        if not accepted:
            print(f"rejected: {job.rejection_reason}", file=sys.stderr)
            return 1
        service.run_until_idle()
    print(json.dumps(job.as_record(), indent=2))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = synthetic_trace(
        args.jobs,
        cluster_gpus=args.gpus,
        seed=args.seed,
        heavy_fraction=args.heavy_fraction,
        scenario_mix=_parse_scenario_mix(args.scenario_mix),
    )
    trace.save(args.output)
    print(
        f"{len(trace)} jobs from {len(trace.tenants)} tenants written to {args.output}",
        file=sys.stderr,
    )
    return 0


def _format_service_report(report) -> str:
    job_columns = [
        "job_id", "tenant", "problem", "scenario", "state", "arrival_s",
        "start_s", "finish_s", "latency_s", "slo_s", "gpus", "grid",
        "cache_hit",
    ]
    rows = [
        {col: ("" if job.get(col) is None else job[col]) for col in job_columns}
        for job in report.jobs
    ]
    lines = [
        format_table(
            rows, job_columns,
            title=(f"{report.policy} policy on {report.cluster_gpus} GPUs"
                   + (f" — {report.description}" if report.description else "")),
            float_format="{:.2f}",
        ),
        "",
    ]
    summary = report.summary
    for key in sorted(summary):
        lines.append(f"{key:>24s} = {summary[key]:.3f}")
    return "\n".join(lines)


_COMMANDS = {
    "reconstruct": _cmd_reconstruct,
    "predict": _cmd_predict,
    "table4": _cmd_table4,
    "scenarios": _cmd_scenarios,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "trace": _cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code.

    Invalid user input (malformed problem specs, infeasible geometry,
    unreadable traces) exits with code 2; argparse errors also exit 2 via
    ``SystemExit``.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    command = _COMMANDS.get(args.command)
    if command is None:  # pragma: no cover - argparse rejects first
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return command(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
