"""Command-line interface for the iFDK reproduction.

Three subcommands cover the workflows a downstream user needs:

``reconstruct``
    Synthesize Shepp-Logan projections for a given problem size and run the
    FDK pipeline — single-node or distributed on the simulated cluster —
    writing the volume (as ``.npy``) and a JSON report.
``predict``
    Evaluate the Eq. 8-19 performance model for a problem / GPU count and
    print the runtime breakdown (the Figure 5 stacked bars as text).
``table4``
    Regenerate the Table 4 kernel-throughput comparison from the V100 cost
    model.

Invoke as ``python -m repro.cli <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from .bench import TABLE4_PROBLEMS, format_table, paper_reference_table4
from .core import (
    EllipsoidPhantom,
    FDKReconstructor,
    default_geometry_for_problem,
    forward_project_analytic,
    shepp_logan_ellipsoids,
)
from .core.types import problem_from_string
from .gpusim import KERNEL_VARIANTS, BackprojectionCostModel, TESLA_V100
from .pipeline import IFDKConfig, IFDKFramework, IFDKPerformanceModel, choose_grid

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iFDK reproduction: FDK reconstruction and performance models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("reconstruct", help="reconstruct a synthetic Shepp-Logan scan")
    rec.add_argument("--problem", default="96x96x120->64x64x64",
                     help="problem spec NuxNvxNp->NxxNyxNz (default: %(default)s)")
    rec.add_argument("--algorithm", choices=("proposed", "standard"), default="proposed")
    rec.add_argument("--ramp-filter", default="ram-lak")
    rec.add_argument("--distributed", action="store_true",
                     help="run on the simulated cluster instead of a single node")
    rec.add_argument("--rows", type=int, default=None, help="R of the rank grid")
    rec.add_argument("--columns", type=int, default=None, help="C of the rank grid")
    rec.add_argument("--output", type=Path, default=None,
                     help="write the volume to this .npy file")
    rec.add_argument("--report", type=Path, default=None,
                     help="write a JSON run report to this file")

    pred = sub.add_parser("predict", help="evaluate the Eq. 8-19 performance model")
    pred.add_argument("--problem", default="2048x2048x4096->4096x4096x4096")
    pred.add_argument("--gpus", type=int, default=2048)
    pred.add_argument("--rows", type=int, default=None,
                      help="override R (defaults to the Section 4.1.5 rule)")

    sub.add_parser("table4", help="regenerate Table 4 from the V100 cost model")
    return parser


def _cmd_reconstruct(args: argparse.Namespace) -> int:
    problem = problem_from_string(args.problem)
    geometry = default_geometry_for_problem(
        nu=problem.nu, nv=problem.nv, np_=problem.np_,
        nx=problem.nx, ny=problem.ny, nz=problem.nz,
    )
    phantom = EllipsoidPhantom(shepp_logan_ellipsoids())
    print(f"forward projecting {problem} ...", file=sys.stderr)
    stack = forward_project_analytic(phantom, geometry)

    report: dict = {"problem": str(problem), "algorithm": args.algorithm}
    if args.distributed:
        rows = args.rows or 2
        columns = args.columns or 2
        config = IFDKConfig(geometry=geometry, rows=rows, columns=columns,
                            ramp_filter=args.ramp_filter)
        result = IFDKFramework(config).reconstruct(stack)
        volume = result.volume
        report.update(
            mode="distributed",
            rows=rows,
            columns=columns,
            wall_seconds=result.wall_seconds,
            gups=result.gups,
            overlap_delta=result.mean_overlap_delta(),
            modelled_runtime_at_scale=result.modelled.t_runtime,
        )
    else:
        reconstructor = FDKReconstructor(
            geometry=geometry, ramp_filter=args.ramp_filter, algorithm=args.algorithm
        )
        fdk = reconstructor.reconstruct(stack)
        volume = fdk.volume
        report.update(
            mode="single-node",
            filter_seconds=fdk.filter_seconds,
            backprojection_seconds=fdk.backprojection_seconds,
            gups=fdk.gups,
        )

    report["volume_min"] = float(volume.data.min())
    report["volume_max"] = float(volume.data.max())
    if args.output is not None:
        np.save(args.output, volume.data)
        report["output"] = str(args.output)
        print(f"volume written to {args.output}", file=sys.stderr)
    if args.report is not None:
        args.report.write_text(json.dumps(report, indent=2))
    print(json.dumps(report, indent=2))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    problem = problem_from_string(args.problem)
    if args.rows is not None:
        rows = args.rows
        if args.gpus % rows != 0:
            print(f"error: {args.gpus} GPUs not divisible by R={rows}", file=sys.stderr)
            return 2
        columns = args.gpus // rows
    else:
        rows, columns = choose_grid(problem, args.gpus)
    model = IFDKPerformanceModel()
    breakdown = model.breakdown(problem, rows, columns)
    rows_out = [
        {"term": term, "seconds": seconds}
        for term, seconds in breakdown.as_dict().items()
        if term != "delta"
    ]
    print(format_table(
        rows_out, ["term", "seconds"],
        title=f"{problem} on {args.gpus} GPUs (R={rows}, C={columns})",
        float_format="{:.2f}",
    ))
    print(f"delta = {breakdown.delta:.2f}, end-to-end GUPS = "
          f"{problem.gups(breakdown.t_runtime):.0f}")
    return 0


def _cmd_table4(_: argparse.Namespace) -> int:
    model = BackprojectionCostModel(TESLA_V100)
    rows = []
    for problem in TABLE4_PROBLEMS:
        row = {"problem": str(problem), "alpha": problem.alpha}
        for kernel in KERNEL_VARIANTS:
            row[kernel.name] = model.gups(kernel, problem)
            reference = paper_reference_table4[str(problem)][kernel.name]
            row[f"{kernel.name} (paper)"] = float("nan") if reference is None else reference
        rows.append(row)
    columns = ["problem", "alpha"]
    for kernel in KERNEL_VARIANTS:
        columns += [kernel.name, f"{kernel.name} (paper)"]
    print(format_table(rows, columns, title="Table 4 (model vs paper), GUPS"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "reconstruct":
        return _cmd_reconstruct(args)
    if args.command == "predict":
        return _cmd_predict(args)
    if args.command == "table4":
        return _cmd_table4(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
