"""Command-line interface for the iFDK reproduction.

Ten subcommands cover the workflows a downstream user needs:

``reconstruct``
    Synthesize Shepp-Logan projections for a given problem size and run the
    FDK pipeline — single-node or distributed on the simulated cluster —
    writing the volume (as ``.npy``) and a JSON report.  ``--scenario``
    replays the acquisition through a non-ideal protocol (short-scan,
    offset-detector, sparse-view, noisy) before reconstructing,
    ``--stream`` (with ``--chunk-size`` / ``--memory-budget``) runs the
    chunked streaming executor instead of the whole-stack path, and
    ``--plan plan.json`` executes a declarative
    :class:`~repro.api.ReconstructionPlan` instead of explicit flags.
``plan``
    Emit, validate or describe a declarative reconstruction plan: the
    canonical JSON object every execution surface (this CLI, the library
    :class:`~repro.api.Session`, the service) shares.
``scenarios``
    List the registered acquisition-scenario presets.
``predict``
    Evaluate the Eq. 8-19 performance model for a problem / GPU count and
    print the runtime breakdown (the Figure 5 stacked bars as text).
``table4``
    Regenerate the Table 4 kernel-throughput comparison from the V100 cost
    model.
``serve``
    Replay a multi-tenant arrival trace through the reconstruction service
    (``repro.service``): SLO-aware GPU packing, admission control and the
    filtered-projection cache, reporting throughput and tail latency.
``submit``
    Run a single job through the service and print its report (also
    accepts ``--plan``).
``trace``
    Generate a synthetic multi-tenant workload trace for ``serve``.
``report``
    Render a span trace recorded with ``--trace-out`` (on ``reconstruct``,
    ``serve`` or ``submit``) as a summary tree, Chrome trace-event JSON or
    JSON-lines.
``lint``
    Run the project-invariant static analysis passes
    (:mod:`repro.analysis`) over files or packages: exit 0 when clean,
    1 on findings, 2 on a bad invocation.

The flags that describe a reconstruction (problem, backend, workers,
scenario, ramp filter) are registered once by :func:`add_plan_args` and
folded into a plan by :func:`plan_from_args`, so every subcommand speaks
the same parameter surface and new plan fields reach all of them at once.

Invoke as ``python -m repro.cli <subcommand> ...`` (or ``repro ...`` once
the package is installed).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from .api import TARGETS, ReconstructionPlan, Session, plan_for_problem
from .backends import DEFAULT_BACKEND, available_backends
from .bench import TABLE4_PROBLEMS, format_table, paper_reference_table4
from .core import (
    EllipsoidPhantom,
    forward_project_analytic,
    shepp_logan_ellipsoids,
)
from .core.types import problem_from_string
from .gpusim import KERNEL_VARIANTS, BackprojectionCostModel, TESLA_V100
from .obs import (
    EXPORT_FORMATS,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    jsonl_lines,
    load_trace,
    summary_tree,
    trace_format_for,
    use_tracer,
    write_trace,
)
from .pipeline import IFDKPerformanceModel, choose_grid
from .scenarios import available_scenarios, get_scenario
from .service import (
    AdmissionPolicy,
    ArrivalTrace,
    JobState,
    ReconstructionService,
    synthetic_trace,
)

__all__ = ["main", "build_parser", "add_plan_args", "plan_from_args"]

#: Default problem specs per subcommand (shown in help, filled by
#: :func:`plan_from_args` when the flag is omitted).
DEFAULT_RECONSTRUCT_PROBLEM = "96x96x120->64x64x64"
DEFAULT_SUBMIT_PROBLEM = "2048x2048x1024->1024x1024x1024"

#: Plan fields that can also be given as explicit flags.  When ``--plan``
#: supplies the plan, any of these being set is a conflict (exit 2) — the
#: plan file is the single source of truth.
_PLAN_FLAG_NAMES = (
    "problem", "backend", "workers", "scenario", "ramp_filter",
    "algorithm", "distributed", "rows", "columns", "gpus", "slo",
    "priority", "target", "stream", "chunk_size", "memory_budget",
)


def add_plan_args(
    parser: argparse.ArgumentParser,
    *,
    problem: Optional[str] = None,
    backend: bool = True,
    workers: bool = True,
    scenario: bool = True,
    ramp_filter: bool = False,
    streaming: bool = False,
    plan_file: bool = False,
) -> None:
    """Register the shared reconstruction-plan flags on a subparser.

    Every subcommand that describes (part of) a reconstruction calls this
    once instead of re-declaring its own copies of ``--problem`` /
    ``--backend`` / ``--workers`` / ``--scenario`` — so a new plan-level
    flag lands on all of them simultaneously instead of drifting.  All
    defaults are ``None`` sentinels: :func:`plan_from_args` resolves them,
    which is what makes ``--plan`` conflict detection possible.
    """
    if problem is not None:
        parser.add_argument(
            "--problem", default=None,
            help=f"problem spec NuxNvxNp->NxxNyxNz (default: {problem})",
        )
        parser.set_defaults(default_problem=problem)
    if backend:
        parser.add_argument(
            "--backend", choices=available_backends(), default=None,
            help="compute backend for the filter/back-projection hot paths "
                 f"(default: {DEFAULT_BACKEND})",
        )
    if workers:
        parser.add_argument(
            "--workers", type=int, default=None,
            help="worker threads: a dedicated pool for the parallel backend "
                 "(reconstruct), or the real-execution dispatcher width "
                 "(serve/submit)",
        )
    if scenario:
        parser.add_argument(
            "--scenario", choices=available_scenarios(), default=None,
            help="acquisition-scenario preset (default: full_scan; "
                 "see 'repro scenarios')",
        )
    if ramp_filter:
        parser.add_argument(
            "--ramp-filter", dest="ramp_filter", default=None,
            help="ramp-filter window (default: ram-lak)",
        )
    if streaming:
        parser.add_argument(
            "--stream", action="store_true", default=False,
            help="stream the reconstruction chunk by chunk instead of "
                 "materializing the whole filtered stack (fdk target only)",
        )
        parser.add_argument(
            "--chunk-size", dest="chunk_size", type=int, default=None,
            metavar="N",
            help="projections per streaming chunk (requires --stream; "
                 "default: derived from --memory-budget, else 16)",
        )
        parser.add_argument(
            "--memory-budget", dest="memory_budget", default=None,
            metavar="BYTES",
            help="bound the streaming working set, e.g. 268435456, 256MiB "
                 "or 1.5G (requires --stream)",
        )
    if plan_file:
        parser.add_argument(
            "--plan", type=Path, default=None, metavar="PLAN_JSON",
            help="load the reconstruction plan from this JSON file "
                 "(see 'repro plan'; conflicts with explicit plan flags)",
        )


def _add_trace_out(parser: argparse.ArgumentParser) -> None:
    """Register ``--trace-out`` (span recording) on a subparser."""
    parser.add_argument(
        "--trace-out", dest="trace_out", type=Path, default=None, metavar="PATH",
        help="record execution spans and write them to PATH on exit "
             "(.json = Chrome trace-event, .jsonl = JSON-lines, "
             ".txt = summary tree; inspect with 'repro report')",
    )


def _tracer_for(args: argparse.Namespace) -> Optional[Tracer]:
    """A fresh tracer when ``--trace-out`` was given, else ``None``.

    The output suffix is validated *now* (ValueError -> exit 2), so a bad
    path fails before the reconstruction runs, not after.
    """
    if getattr(args, "trace_out", None) is None:
        return None
    trace_format_for(args.trace_out)
    return Tracer()


def _write_trace_out(tracer: Optional[Tracer], args: argparse.Namespace) -> None:
    if tracer is None:
        return
    path = write_trace(tracer, args.trace_out)
    print(f"{len(tracer)} spans written to {path}", file=sys.stderr)


def _explicit_plan_flags(args: argparse.Namespace) -> dict:
    """The plan-level flags the user explicitly set (name -> value)."""
    explicit = {}
    for name in _PLAN_FLAG_NAMES:
        value = getattr(args, name, None)
        # Identity checks: 0 is a legitimate explicit value (== False!).
        if value is not None and value is not False:
            explicit[name] = value
    return explicit


def _load_plan(path: Path) -> ReconstructionPlan:
    """Read and parse a plan file (ValueError -> exit code 2)."""
    if not path.exists():
        raise ValueError(f"plan file {path} does not exist")
    try:
        text = path.read_text()
    except OSError as exc:
        raise ValueError(f"cannot read plan file {path}: {exc}") from exc
    return ReconstructionPlan.from_json(text)


def plan_from_args(
    args: argparse.Namespace, *, default_target: str = "fdk"
) -> ReconstructionPlan:
    """Fold parsed arguments into a validated :class:`ReconstructionPlan`.

    With ``--plan`` the file is the plan — any explicit plan-level flag
    alongside it is a conflict (``ValueError`` -> exit 2, per the CLI
    error convention).  Without it, the shared flags plus per-subcommand
    defaults build the plan.
    """
    explicit = _explicit_plan_flags(args)
    plan_path = getattr(args, "plan", None)
    if plan_path is not None:
        if explicit:
            flags = ", ".join(
                "--" + name.replace("_", "-") for name in sorted(explicit)
            )
            raise ValueError(
                f"--plan conflicts with explicit plan flags ({flags}); "
                "edit the plan file (or 'repro plan emit' a new one) instead"
            )
        return _load_plan(plan_path).validate()
    target = getattr(args, "target", None) or default_target
    if getattr(args, "distributed", False):
        target = "ifdk"
    # Explicit values always reach the plan (validate() rejects the
    # nonsensical combinations, e.g. rows on a single-node target, rather
    # than silently dropping them); omitted flags fall through to the
    # ReconstructionPlan dataclass defaults, so the CLI cannot drift from
    # the canonical definition of "a default plan".
    fields = {"target": target}
    flag_to_field = {
        "scenario": "scenario", "backend": "backend", "workers": "workers",
        "ramp_filter": "ramp_filter", "algorithm": "algorithm",
        "rows": "rows", "columns": "columns", "gpus": "cluster_gpus",
        "priority": "priority", "slo": "slo_seconds",
    }
    for flag, field in flag_to_field.items():
        value = getattr(args, flag, None)
        if value is not None:
            fields[field] = value
    if getattr(args, "stream", False):
        fields["streaming"] = True
    if getattr(args, "chunk_size", None) is not None:
        fields["chunk_size"] = args.chunk_size
    if getattr(args, "memory_budget", None) is not None:
        from .streaming import parse_byte_size

        fields["memory_budget_bytes"] = parse_byte_size(args.memory_budget)
    _validated_workers(fields.get("workers"))
    if target == "ifdk":
        fields.setdefault("rows", 2)
        fields.setdefault("columns", 2)
    plan = plan_for_problem(
        getattr(args, "problem", None) or getattr(args, "default_problem"),
        **fields,
    )
    return plan.validate()


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="iFDK reproduction: FDK reconstruction and performance models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("reconstruct", help="reconstruct a synthetic Shepp-Logan scan")
    add_plan_args(
        rec, problem=DEFAULT_RECONSTRUCT_PROBLEM, ramp_filter=True,
        streaming=True, plan_file=True,
    )
    rec.add_argument("--algorithm", choices=("proposed", "standard"), default=None,
                     help="back-projection algorithm (default: proposed)")
    rec.add_argument("--distributed", action="store_true",
                     help="run on the simulated cluster instead of a single node")
    rec.add_argument("--rows", type=int, default=None, help="R of the rank grid")
    rec.add_argument("--columns", type=int, default=None, help="C of the rank grid")
    rec.add_argument("--output", type=Path, default=None,
                     help="write the volume to this .npy file")
    rec.add_argument("--report", type=Path, default=None,
                     help="write a JSON run report to this file")
    _add_trace_out(rec)

    plan_p = sub.add_parser(
        "plan", help="emit, validate or describe a declarative reconstruction plan"
    )
    plan_p.add_argument("action", choices=("emit", "validate", "describe"),
                        help="emit a plan from flags, or check/describe a plan file")
    plan_p.add_argument("plan_file", nargs="?", type=Path,
                        help="plan JSON file (for validate/describe)")
    add_plan_args(
        plan_p, problem=DEFAULT_RECONSTRUCT_PROBLEM, ramp_filter=True,
        streaming=True,
    )
    plan_p.add_argument("--algorithm", choices=("proposed", "standard"), default=None,
                        help="back-projection algorithm (default: proposed)")
    plan_p.add_argument("--target", choices=TARGETS, default=None,
                        help="execution target (default: fdk)")
    plan_p.add_argument("--rows", type=int, default=None, help="R of the rank grid")
    plan_p.add_argument("--columns", type=int, default=None, help="C of the rank grid")
    plan_p.add_argument("--gpus", type=int, default=None,
                        help="service cluster size (default: 16)")
    plan_p.add_argument("--slo", type=float, default=None,
                        help="service latency SLO in seconds")
    plan_p.add_argument("--priority", type=int, default=None,
                        help="service priority class, 0 = most urgent")
    plan_p.add_argument("--output", "-o", type=Path, default=None,
                        help="write the emitted plan to this file (default: stdout)")

    pred = sub.add_parser("predict", help="evaluate the Eq. 8-19 performance model")
    pred.add_argument("--problem", default="2048x2048x4096->4096x4096x4096")
    pred.add_argument("--gpus", type=int, default=2048)
    pred.add_argument("--rows", type=int, default=None,
                      help="override R (defaults to the Section 4.1.5 rule)")

    sub.add_parser("table4", help="regenerate Table 4 from the V100 cost model")

    sub.add_parser(
        "scenarios", help="list the registered acquisition-scenario presets"
    )

    serve = sub.add_parser(
        "serve", help="replay a multi-tenant trace through the reconstruction service"
    )
    serve.add_argument("--trace", type=Path, default=None,
                       help="workload trace JSON (see 'repro trace'); optional "
                            "when --http serves requests instead")
    serve.add_argument("--gpus", type=int, default=None,
                       help="cluster size (default: the trace's cluster_gpus)")
    serve.add_argument("--policy", choices=("slo", "fifo"), default="slo",
                       help="scheduling policy (default: %(default)s)")
    serve.add_argument("--max-queue-depth", type=int, default=256)
    serve.add_argument("--tenant-weights", default=None,
                       metavar="NAME=W[,NAME=W...]",
                       help="fair-share scheduling weights per tenant, e.g. "
                            "'hospital-a=3,hospital-b=1' (enables the "
                            "weighted fair queue; unlisted tenants get "
                            "weight 1)")
    serve.add_argument("--max-inflight-per-tenant", type=int, default=None,
                       metavar="N",
                       help="cap concurrently running jobs per tenant "
                            "(fair-share throttling, never rejection)")
    serve.add_argument("--max-tenant-depth", type=int, default=None,
                       metavar="N",
                       help="cap queued jobs per tenant; excess submissions "
                            "are rejected with a Retry-After hint (HTTP 429)")
    serve.add_argument("--aging-seconds", type=float, default=None,
                       metavar="S",
                       help="starvation aging: a tenant's oldest waiting job "
                            "jumps the fair-share order after waiting this "
                            "long")
    serve.add_argument("--dispatcher", choices=("thread", "process"),
                       default="thread",
                       help="pilot executor: 'thread' (in-process pool) or "
                            "'process' (crash-isolated workers with "
                            "timeout/retry; default: %(default)s)")
    serve.add_argument("--state-dir", type=Path, default=None,
                       help="journal job transitions here; a restarted serve "
                            "recovers its queue from the journal")
    serve.add_argument("--cache-dir", type=Path, default=None,
                       help="shared on-disk filtered-projection cache, "
                            "visible to every worker process and restart")
    serve.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="serve an HTTP/JSON front door on this port "
                            "(0 = ephemeral; the bound port is printed)")
    serve.add_argument("--http-host", default="127.0.0.1",
                       help="bind address for --http (default: %(default)s)")
    add_plan_args(serve, scenario=False)
    serve.add_argument("--report", type=Path, default=None,
                       help="write the full JSON service report to this file")
    _add_trace_out(serve)

    submit = sub.add_parser("submit", help="run one job through the service")
    add_plan_args(submit, problem=DEFAULT_SUBMIT_PROBLEM, plan_file=True)
    submit.add_argument("--gpus", type=int, default=None,
                        help="cluster size (default: 16)")
    submit.add_argument("--slo", type=float, default=None,
                        help="latency SLO in seconds (default: best effort)")
    submit.add_argument("--priority", type=int, default=None,
                        help="priority class, 0 = most urgent (default: 1)")
    submit.add_argument("--dataset", default="",
                        help="dataset content key (enables cache reuse)")
    _add_trace_out(submit)

    report_p = sub.add_parser(
        "report", help="render a recorded trace file (--trace-out output)"
    )
    report_p.add_argument("trace_file", type=Path,
                          help="trace file written by --trace-out "
                               "(Chrome JSON or JSON-lines)")
    report_p.add_argument("--format", default=None,
                          help="output rendering: summary (default), "
                               "chrome or jsonl")
    report_p.add_argument("--output", "-o", type=Path, default=None,
                          help="write the rendering to this file "
                               "(default: stdout)")

    trace = sub.add_parser("trace", help="generate a synthetic workload trace")
    trace.add_argument("--jobs", type=int, default=24)
    trace.add_argument("--gpus", type=int, default=16)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--heavy-fraction", type=float, default=0.25,
                       help="fraction of heavy 2K reconstructions")
    add_plan_args(trace, backend=False, workers=False)
    trace.add_argument("--scenario-mix", default=None, metavar="NAME=W[,NAME=W...]",
                       help="sample job scenarios from this weighted mix, e.g. "
                            "'full_scan=0.6,short_scan=0.3,sparse_view=0.1' "
                            "(default: every job is full_scan)")
    trace.add_argument("--output", "-o", type=Path, required=True,
                       help="write the trace JSON to this file")

    lint = sub.add_parser(
        "lint", help="run the project-invariant static analysis passes"
    )
    lint.add_argument("paths", nargs="+",
                      help="files or directories to lint (e.g. src/repro)")
    lint.add_argument("--config", type=Path, default=None,
                      help="JSON config overriding rule scopes "
                           "(see repro.analysis.config)")
    lint.add_argument("--baseline", type=Path, default=None,
                      help="JSON baseline of accepted findings "
                           "(e.g. lint-baseline.json)")
    lint.add_argument("--format", default="text", choices=("text", "json"),
                      help="output format (default: text)")
    return parser


def _validated_workers(workers: Optional[int]) -> Optional[int]:
    """``--workers`` must be >= 1 when given (ValueError -> exit code 2)."""
    if workers is not None and workers < 1:
        raise ValueError(
            f"--workers must be a positive integer (got {workers})"
        )
    return workers


def _parse_scenario_mix(spec: Optional[str]):
    """Parse ``name=weight,name=weight`` into a dict (None passes through)."""
    if spec is None:
        return None
    mix = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition("=")
        if not weight:
            raise ValueError(
                f"scenario mix entry {part!r} must look like name=weight"
            )
        get_scenario(name.strip())  # validate the preset exists
        mix[name.strip()] = float(weight)
    if not mix:
        raise ValueError("scenario mix is empty")
    return mix


def _parse_tenant_weights(spec: Optional[str]):
    """Parse ``tenant=weight,...`` into a dict (None passes through).

    Unlike scenario mixes there is no registry to check names against —
    tenants are free-form — but weights must be positive numbers (the
    AdmissionPolicy re-validates on construction).
    """
    if spec is None:
        return None
    weights = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight = part.partition("=")
        if not name.strip() or not weight:
            raise ValueError(
                f"tenant weight entry {part!r} must look like tenant=weight"
            )
        weights[name.strip()] = float(weight)
    if not weights:
        raise ValueError("tenant weights spec is empty")
    return weights


_MODE_BY_TARGET = {"fdk": "single-node", "ifdk": "distributed", "service": "service"}


def _cmd_reconstruct(args: argparse.Namespace) -> int:
    plan = plan_from_args(args)
    scenario = plan.resolved_scenario()
    phantom = EllipsoidPhantom(shepp_logan_ellipsoids())
    print(f"forward projecting {plan.problem} ...", file=sys.stderr)
    stack = forward_project_analytic(phantom, plan.geometry)
    if not scenario.is_ideal:
        print(f"applying acquisition scenario {scenario.name} ...", file=sys.stderr)

    tracer = _tracer_for(args)
    with Session(plan, tracer=tracer) as session:
        result = session.run(stack)

    report: dict = {
        "problem": str(plan.problem),
        "algorithm": plan.algorithm,
        "backend": plan.backend,
        "scenario": plan.scenario,
        "workers": plan.workers,
        "plan_key": result.plan_key,
        "projections": result.problem.np_,
        "angular_range": float(result.geometry.angular_range),
        "mode": _MODE_BY_TARGET[plan.target],
    }
    if plan.target == "ifdk":
        report.update(
            rows=plan.rows,
            columns=plan.columns,
            wall_seconds=result.wall_seconds,
            gups=result.problem.gups(result.wall_seconds),
            overlap_delta=result.details["overlap_delta"],
            modelled_runtime_at_scale=result.details["modelled_runtime_at_scale"],
        )
    else:
        report.update(
            filter_seconds=result.filter_seconds,
            backprojection_seconds=result.backprojection_seconds,
            gups=result.gups,
        )
        if plan.streaming:
            report.update(
                streaming=True,
                chunk_size=result.details["chunk_size"],
                chunks=result.details["chunks"],
                working_set_bytes=result.details["working_set_bytes"],
                memory_budget_bytes=result.details["memory_budget_bytes"],
                peak_rss_bytes=result.details["peak_rss_bytes"],
            )
        if plan.target == "service":
            report["job"] = result.details["job"]

    volume = result.volume
    report["volume_min"] = float(volume.data.min())
    report["volume_max"] = float(volume.data.max())
    if tracer is not None:
        report["run_report"] = result.report.as_dict()
        print(result.report.summary(), file=sys.stderr)
        _write_trace_out(tracer, args)
    if args.output is not None:
        np.save(args.output, volume.data)
        report["output"] = str(args.output)
        print(f"volume written to {args.output}", file=sys.stderr)
    if args.report is not None:
        args.report.write_text(json.dumps(report, indent=2))
    print(json.dumps(report, indent=2))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    if args.action == "emit":
        if args.plan_file is not None:
            raise ValueError(
                "plan emit builds a plan from flags; use 'repro plan "
                "validate <file>' to check an existing plan"
            )
        plan = plan_from_args(args)
        text = plan.to_json()
        if args.output is not None:
            args.output.write_text(text + "\n")
            print(f"plan {plan.key()} written to {args.output}", file=sys.stderr)
        else:
            print(text)
            print(f"plan key: {plan.key()}", file=sys.stderr)
        return 0
    if args.plan_file is None:
        raise ValueError(f"plan {args.action} requires a plan file argument")
    stray = _explicit_plan_flags(args)
    if stray:
        flags = ", ".join("--" + name.replace("_", "-") for name in sorted(stray))
        raise ValueError(
            f"plan {args.action} checks the file as written and ignores no "
            f"flags; remove {flags} (plan-building flags apply to emit)"
        )
    plan = _load_plan(args.plan_file)
    plan.validate()
    if args.action == "validate":
        print(f"plan {plan.key()} is valid ({plan.target} target, "
              f"{plan.problem}, backend {plan.backend})")
        return 0
    rows = [
        {"field": name, "value": "" if value is None else value}
        for name, value in plan.describe().items()
    ]
    print(format_table(rows, ["field", "value"], title=f"plan {args.plan_file}"))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    problem = problem_from_string(args.problem)
    if args.rows is not None:
        rows = args.rows
        if args.gpus % rows != 0:
            print(f"error: {args.gpus} GPUs not divisible by R={rows}", file=sys.stderr)
            return 2
        columns = args.gpus // rows
    else:
        rows, columns = choose_grid(problem, args.gpus)
    model = IFDKPerformanceModel()
    breakdown = model.breakdown(problem, rows, columns)
    rows_out = [
        {"term": term, "seconds": seconds}
        for term, seconds in breakdown.as_dict().items()
        if term != "delta"
    ]
    print(format_table(
        rows_out, ["term", "seconds"],
        title=f"{problem} on {args.gpus} GPUs (R={rows}, C={columns})",
        float_format="{:.2f}",
    ))
    print(f"delta = {breakdown.delta:.2f}, end-to-end GUPS = "
          f"{problem.gups(breakdown.t_runtime):.0f}")
    return 0


def _cmd_table4(_: argparse.Namespace) -> int:
    model = BackprojectionCostModel(TESLA_V100)
    rows = []
    for problem in TABLE4_PROBLEMS:
        row = {"problem": str(problem), "alpha": problem.alpha}
        for kernel in KERNEL_VARIANTS:
            row[kernel.name] = model.gups(kernel, problem)
            reference = paper_reference_table4[str(problem)][kernel.name]
            row[f"{kernel.name} (paper)"] = float("nan") if reference is None else reference
        rows.append(row)
    columns = ["problem", "alpha"]
    for kernel in KERNEL_VARIANTS:
        columns += [kernel.name, f"{kernel.name} (paper)"]
    print(format_table(rows, columns, title="Table 4 (model vs paper), GUPS"))
    return 0


def _cmd_scenarios(_: argparse.Namespace) -> int:
    rows = []
    for name in available_scenarios():
        scenario = get_scenario(name)
        rows.append({
            "name": scenario.name,
            "short-scan": "yes" if scenario.short_scan else "",
            "detector crop": (
                f"{scenario.detector_crop_fraction:.0%}"
                if scenario.detector_crop_fraction else ""
            ),
            "sparse": (
                f"1/{scenario.sparse_factor}" if scenario.sparse_factor > 1 else ""
            ),
            "noise": scenario.noise.token if scenario.noise else "",
            "description": scenario.description,
        })
    print(format_table(
        rows,
        ["name", "short-scan", "detector crop", "sparse", "noise", "description"],
        title="acquisition-scenario presets (use with --scenario)",
    ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    workers = _validated_workers(args.workers)
    if args.trace is None and args.http is None:
        raise ValueError(
            "serve needs a workload: --trace replays one, --http accepts "
            "submissions over the network (or both)"
        )
    trace = None
    if args.trace is not None:
        if not args.trace.exists():
            print(f"error: trace file {args.trace} does not exist", file=sys.stderr)
            return 2
        trace = ArrivalTrace.load(args.trace)
    gpus = args.gpus or (trace.cluster_gpus if trace is not None else 16)
    tracer = _tracer_for(args)
    durable = args.state_dir is not None or args.cache_dir is not None
    admission = AdmissionPolicy(
        max_depth=args.max_queue_depth,
        tenant_weights=_parse_tenant_weights(args.tenant_weights),
        max_inflight_per_tenant=args.max_inflight_per_tenant,
        max_queue_depth_per_tenant=args.max_tenant_depth,
        aging_seconds=args.aging_seconds,
    )
    with ReconstructionService(
        gpus,
        policy=args.policy,
        admission=admission,
        backend=args.backend or DEFAULT_BACKEND,
        workers=workers or 0,
        dispatcher=args.dispatcher,
        state_dir=args.state_dir,
        cache_dir=args.cache_dir,
        obs=MetricsRegistry() if tracer is not None else None,
    ) as service:
        with use_tracer(tracer):
            if trace is not None and not durable and args.http is None:
                report = service.replay(trace)
            else:
                # Durable / HTTP mode: keep the recovered history (replay()
                # would reset it) and dedup against journaled job ids, so a
                # restarted serve never re-runs a completed trace job.
                if trace is not None:
                    for job in trace.jobs():
                        if job.job_id not in service.jobs:
                            service.submit(job, now=job.arrival_seconds)
                service.run_until_idle()
                if args.http is not None:
                    from .service.http import ServiceHTTPServer

                    front = ServiceHTTPServer(
                        service, host=args.http_host, port=args.http
                    )
                    port = front.start()
                    print(f"serving on http://{args.http_host}:{port}",
                          flush=True)
                    front.serve_forever()
                report = service.report(
                    description=trace.description if trace is not None else ""
                )
        if tracer is not None:
            for key, value in sorted(service.obs_snapshot().items()):
                print(f"{key:>32s} = {value:.3f}", file=sys.stderr)
            _write_trace_out(tracer, args)
    print(_format_service_report(report))
    if args.report is not None:
        args.report.write_text(json.dumps(report.as_dict(), indent=2))
        print(f"report written to {args.report}", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    # No tenant override: a flag-built submission and `--plan` with an
    # emitted file must describe the same canonical plan (same key).
    plan = plan_from_args(args, default_target="service")
    if plan.target != "service":
        raise ValueError(
            f"submit runs jobs through the service, but the plan targets "
            f"{plan.target!r}; use 'repro reconstruct --plan' for direct "
            "execution or emit a service-target plan"
        )
    tracer = _tracer_for(args)
    with ReconstructionService(
        plan.cluster_gpus, policy="slo", backend=plan.backend,
        workers=plan.workers or 0,
        obs=MetricsRegistry() if tracer is not None else None,
    ) as service:
        with use_tracer(tracer):
            job = service.submit_plan(plan, dataset_id=args.dataset)
            if job.state is JobState.REJECTED:
                print(f"rejected: {job.rejection_reason}", file=sys.stderr)
                return 1
            service.run_until_idle()
        _write_trace_out(tracer, args)
    print(json.dumps(job.as_record(), indent=2))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render a recorded trace file (ValueError paths -> exit code 2)."""
    format = args.format or "summary"
    if format not in EXPORT_FORMATS:
        raise ValueError(
            f"unknown export format {format!r}; expected one of "
            f"{', '.join(EXPORT_FORMATS)}"
        )
    spans = load_trace(args.trace_file)
    if args.output is not None:
        write_trace(spans, args.output, format=format)
        print(f"{len(spans)} spans written to {args.output}", file=sys.stderr)
        return 0
    if format == "summary":
        print(summary_tree(spans, title=f"trace {args.trace_file}"))
    elif format == "chrome":
        print(json.dumps(chrome_trace(spans), indent=2))
    else:
        print("\n".join(jsonl_lines(spans)))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.scenario is not None and args.scenario_mix is not None:
        raise ValueError(
            "--scenario and --scenario-mix are mutually exclusive: a single "
            "preset is the mix {name: 1.0}"
        )
    mix = _parse_scenario_mix(args.scenario_mix)
    if args.scenario is not None:
        mix = {args.scenario: 1.0}
    trace = synthetic_trace(
        args.jobs,
        cluster_gpus=args.gpus,
        seed=args.seed,
        heavy_fraction=args.heavy_fraction,
        scenario_mix=mix,
    )
    trace.save(args.output)
    print(
        f"{len(trace)} jobs from {len(trace.tenants)} tenants written to {args.output}",
        file=sys.stderr,
    )
    return 0


def _format_service_report(report) -> str:
    job_columns = [
        "job_id", "tenant", "problem", "scenario", "state", "arrival_s",
        "start_s", "finish_s", "latency_s", "slo_s", "gpus", "grid",
        "cache_hit",
    ]
    rows = [
        {col: ("" if job.get(col) is None else job[col]) for col in job_columns}
        for job in report.jobs
    ]
    lines = [
        format_table(
            rows, job_columns,
            title=(f"{report.policy} policy on {report.cluster_gpus} GPUs"
                   + (f" — {report.description}" if report.description else "")),
            float_format="{:.2f}",
        ),
        "",
    ]
    summary = report.summary
    for key in sorted(summary):
        lines.append(f"{key:>24s} = {summary[key]:.3f}")
    return "\n".join(lines)


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import format_json, format_text, lint_paths

    # lint_paths raises ValueError on missing paths / malformed config or
    # baseline, which main() maps to exit code 2 — distinct from exit 1
    # (findings exist).
    result = lint_paths(
        args.paths, config_file=args.config, baseline_file=args.baseline
    )
    if args.format == "json":
        print(json.dumps(format_json(result), indent=2))
    else:
        print(format_text(result))
    return result.exit_code()


_COMMANDS = {
    "reconstruct": _cmd_reconstruct,
    "plan": _cmd_plan,
    "predict": _cmd_predict,
    "table4": _cmd_table4,
    "scenarios": _cmd_scenarios,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code.

    Invalid user input (malformed problem specs, infeasible geometry,
    unreadable traces, malformed or conflicting plan files) exits with
    code 2; argparse errors also exit 2 via ``SystemExit``.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    command = _COMMANDS.get(args.command)
    if command is None:  # pragma: no cover - argparse rejects first
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return command(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Reader closed stdout early (`repro report ... | head`): exit
        # quietly.  Re-point stdout at devnull so the interpreter's final
        # flush cannot raise the same error again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
