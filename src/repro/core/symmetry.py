"""The three geometric theorems behind the proposed back-projection.

Section 3.2.1 of the paper states three properties of the circular-orbit
cone-beam geometry that Algorithm 4 exploits:

* **Theorem 1** — two voxels mirrored about the volume's XY mid-plane project
  to detector points mirrored about the detector's horizontal centre line:
  ``u_A = u_B`` and ``v_A + v_B = Nv - 1``.
* **Theorem 2** — voxels on a line parallel to the volume Z axis project onto
  a detector line parallel to the V axis (constant ``u``).
* **Theorem 3** — along such a line the perspective divisor ``z`` is constant
  and equals ``d + y_ab`` (Equation 3), i.e. it depends only on ``(i, j)``.

These functions both *verify* the theorems for a concrete geometry (used by
the property-based tests) and *expose* the quantities Algorithm 4 hoists out
of its inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .geometry import CBCTGeometry, ProjectionMatrix

__all__ = [
    "SymmetryReport",
    "check_theorem1",
    "check_theorem2",
    "check_theorem3",
    "verify_geometry_symmetry",
    "mirrored_voxel",
    "mirrored_detector_row",
]


def mirrored_voxel(k: int, nz: int) -> int:
    """Index of the voxel mirrored about the XY mid-plane: ``Nz - 1 - k``."""
    if not 0 <= k < nz:
        raise ValueError(f"k={k} outside [0, {nz})")
    return nz - 1 - k


def mirrored_detector_row(v: np.ndarray, nv: int) -> np.ndarray:
    """Detector row mirrored about the horizontal centre line: ``Nv - 1 - v``."""
    return (nv - 1) - np.asarray(v)


def check_theorem1(
    pm: ProjectionMatrix, i, j, k, *, atol: float = 1e-9
) -> Tuple[np.ndarray, np.ndarray]:
    """Residuals of Theorem 1 for voxels ``(i, j, k)`` and their mirrors.

    Returns ``(du, dv)`` where ``du = u_A - u_B`` and
    ``dv = (v_A + v_B) - (Nv - 1)``; both should be ~0.
    """
    nz = pm.geometry.nz
    nv = pm.geometry.nv
    k = np.asarray(k)
    k_mirror = (nz - 1) - k
    u_a, v_a, _ = pm.project(i, j, k)
    u_b, v_b, _ = pm.project(i, j, k_mirror)
    du = u_a - u_b
    dv = (v_a + v_b) - (nv - 1)
    return du, dv


def check_theorem2(pm: ProjectionMatrix, i, j, *, atol: float = 1e-9) -> np.ndarray:
    """Spread of ``u`` along the voxel column ``(i, j)`` (should be ~0)."""
    ks = np.arange(pm.geometry.nz)
    i = np.asarray(i, dtype=np.float64)
    j = np.asarray(j, dtype=np.float64)
    u, _, _ = pm.project(
        i[..., None], j[..., None], ks[(None,) * np.ndim(i) + (slice(None),)]
    )
    return np.max(u, axis=-1) - np.min(u, axis=-1)


def check_theorem3(pm: ProjectionMatrix, i, j) -> np.ndarray:
    """Residual between the projected ``z`` and Equation 3 (should be ~0)."""
    ks = np.arange(pm.geometry.nz)
    i_arr = np.asarray(i, dtype=np.float64)
    j_arr = np.asarray(j, dtype=np.float64)
    _, _, z = pm.project(
        i_arr[..., None], j_arr[..., None], ks[(None,) * np.ndim(i_arr) + (slice(None),)]
    )
    z_closed_form = pm.geometry.perspective_divisor(pm.beta, i_arr, j_arr)
    return np.max(np.abs(z - z_closed_form[..., None]), axis=-1)


@dataclass(frozen=True)
class SymmetryReport:
    """Maximum residuals of the three theorems over a sampled voxel grid."""

    theorem1_u: float
    theorem1_v: float
    theorem2_u_spread: float
    theorem3_z_residual: float

    def holds(self, atol: float = 1e-6) -> bool:
        """True if all residuals are below ``atol`` (relative to geometry scale)."""
        return (
            self.theorem1_u <= atol
            and self.theorem1_v <= atol
            and self.theorem2_u_spread <= atol
            and self.theorem3_z_residual <= atol
        )


def verify_geometry_symmetry(
    geometry: CBCTGeometry, *, beta: float = None, samples: int = 8
) -> SymmetryReport:
    """Evaluate all three theorems on a coarse voxel grid for one angle.

    The residuals are absolute (pixels for u/v, millimetres for z) and are
    expected to be at floating-point round-off level for any geometry built
    by :class:`CBCTGeometry` — the theorems are exact properties of the
    matrix factorization of Equation 2.
    """
    if beta is None:
        beta = geometry.theta * 0.37  # an arbitrary non-axis-aligned angle
    pm = geometry.projection_matrix(beta)
    ii = np.linspace(0, geometry.nx - 1, min(samples, geometry.nx)).round().astype(int)
    jj = np.linspace(0, geometry.ny - 1, min(samples, geometry.ny)).round().astype(int)
    kk = np.linspace(0, geometry.nz - 1, min(samples, geometry.nz)).round().astype(int)
    i_grid, j_grid = np.meshgrid(ii, jj, indexing="ij")

    du, dv = check_theorem1(
        pm,
        i_grid[..., None],
        j_grid[..., None],
        kk[None, None, :],
    )
    u_spread = check_theorem2(pm, i_grid.ravel(), j_grid.ravel())
    z_residual = check_theorem3(pm, i_grid.ravel(), j_grid.ravel())

    return SymmetryReport(
        theorem1_u=float(np.max(np.abs(du))),
        theorem1_v=float(np.max(np.abs(dv))),
        theorem2_u_spread=float(np.max(u_spread)),
        theorem3_z_residual=float(np.max(z_residual)),
    )
