"""Digital phantoms for validating the reconstruction pipeline.

The paper (Section 5.1) generates its evaluation inputs by forward-projecting
the standard Shepp-Logan phantom with RTK's forward projector.  This module
provides the 3-D Shepp-Logan phantom (Kak & Slaney parameterization), a 2-D
variant, and a few simpler analytic phantoms (uniform sphere, point grid)
that make quantitative checks easier.

Every phantom is defined analytically as a union of ellipsoids, so it can be
rasterized at any resolution and — crucially for testing the forward
projector — its cone-beam line integrals can be computed in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .types import DEFAULT_DTYPE, Volume

__all__ = [
    "Ellipsoid",
    "EllipsoidPhantom",
    "shepp_logan_ellipsoids",
    "shepp_logan_3d",
    "shepp_logan_2d",
    "uniform_sphere_phantom",
    "point_grid_phantom",
]


@dataclass(frozen=True)
class Ellipsoid:
    """One constituent ellipsoid of an analytic phantom.

    The ellipsoid is defined in a normalized coordinate system where the
    phantom occupies the cube ``[-1, 1]^3``; :class:`EllipsoidPhantom`
    scales it to physical/voxel coordinates when rasterizing.

    Parameters
    ----------
    value:
        Additive density contribution inside the ellipsoid.
    center:
        Centre ``(x0, y0, z0)`` in normalized coordinates.
    axes:
        Semi-axes ``(a, b, c)`` in normalized coordinates.
    phi_deg:
        Rotation about the Z axis, degrees (the only rotation used by the
        classic Shepp-Logan definition).
    """

    value: float
    center: Tuple[float, float, float]
    axes: Tuple[float, float, float]
    phi_deg: float = 0.0

    def rotation(self) -> np.ndarray:
        """World-from-ellipsoid 3x3 rotation matrix."""
        phi = np.deg2rad(self.phi_deg)
        c, s = np.cos(phi), np.sin(phi)
        return np.array(
            [
                [c, -s, 0.0],
                [s, c, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of which normalized-space ``points`` (n, 3) lie inside."""
        points = np.asarray(points, dtype=np.float64)
        local = (points - np.asarray(self.center)) @ self.rotation()
        scaled = local / np.asarray(self.axes)
        return np.einsum("...d,...d->...", scaled, scaled) <= 1.0

    def line_integral(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> np.ndarray:
        """Exact chord lengths (times density) of rays through the ellipsoid.

        ``origins`` and ``directions`` are ``(n, 3)`` arrays in the
        *normalized* phantom frame; directions need not be unit length —
        the returned value is in units of the direction vector's norm so the
        caller can convert to physical lengths.
        """
        origins = np.asarray(origins, dtype=np.float64)
        directions = np.asarray(directions, dtype=np.float64)
        rot = self.rotation()
        o = (origins - np.asarray(self.center)) @ rot / np.asarray(self.axes)
        d = directions @ rot / np.asarray(self.axes)
        # Solve |o + t d|^2 = 1
        a = np.einsum("...d,...d->...", d, d)
        b = 2.0 * np.einsum("...d,...d->...", o, d)
        c = np.einsum("...d,...d->...", o, o) - 1.0
        disc = b * b - 4.0 * a * c
        inside = disc > 0
        chord = np.zeros(np.broadcast(a, b).shape, dtype=np.float64)
        sqrt_disc = np.sqrt(np.where(inside, disc, 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            t_len = np.where(inside, sqrt_disc / a, 0.0)
        norm = np.sqrt(np.einsum("...d,...d->...", directions, directions))
        return self.value * t_len * norm


class EllipsoidPhantom:
    """A phantom composed of additive ellipsoids in ``[-1, 1]^3``."""

    def __init__(self, ellipsoids: Sequence[Ellipsoid]):
        if not ellipsoids:
            raise ValueError("phantom must contain at least one ellipsoid")
        self.ellipsoids: List[Ellipsoid] = list(ellipsoids)

    # ------------------------------------------------------------------ #
    def rasterize(
        self, nx: int, ny: int, nz: int, *, supersample: int = 1
    ) -> Volume:
        """Rasterize to an ``(Nz, Ny, Nx)`` volume.

        ``supersample > 1`` evaluates each voxel on a sub-grid and averages,
        reducing the partial-volume error at ellipsoid boundaries (useful
        when comparing against filtered reconstructions).
        """
        if supersample < 1:
            raise ValueError("supersample must be >= 1")
        ss = int(supersample)

        def axis_coords(n: int) -> np.ndarray:
            # Normalized coordinates of voxel centres in [-1, 1].
            idx = np.arange(n, dtype=np.float64)
            return (idx - (n - 1) / 2.0) / (n / 2.0)

        xs = axis_coords(nx)
        ys = axis_coords(ny)
        zs = axis_coords(nz)
        if ss > 1:
            offsets = (np.arange(ss) - (ss - 1) / 2.0) / ss
            sub_x = (xs[:, None] + offsets[None, :] * (2.0 / nx)).ravel()
            sub_y = (ys[:, None] + offsets[None, :] * (2.0 / ny)).ravel()
            sub_z = (zs[:, None] + offsets[None, :] * (2.0 / nz)).ravel()
        else:
            sub_x, sub_y, sub_z = xs, ys, zs

        zz, yy, xx = np.meshgrid(sub_z, sub_y, sub_x, indexing="ij")
        points = np.stack([xx, yy, zz], axis=-1).reshape(-1, 3)
        values = np.zeros(points.shape[0], dtype=np.float64)
        for ell in self.ellipsoids:
            mask = ell.contains(points)
            values[mask] += ell.value
        grid = values.reshape(len(sub_z), len(sub_y), len(sub_x))
        if ss > 1:
            grid = grid.reshape(nz, ss, ny, ss, nx, ss).mean(axis=(1, 3, 5))
        return Volume(data=grid.astype(DEFAULT_DTYPE))

    def line_integrals(
        self, origins: np.ndarray, directions: np.ndarray
    ) -> np.ndarray:
        """Sum of exact chord integrals over all ellipsoids (normalized frame)."""
        total = None
        for ell in self.ellipsoids:
            contrib = ell.line_integral(origins, directions)
            total = contrib if total is None else total + contrib
        return total

    def density_at(self, points: np.ndarray) -> np.ndarray:
        """Analytic density at normalized-frame ``points`` of shape (n, 3)."""
        points = np.asarray(points, dtype=np.float64)
        values = np.zeros(points.shape[:-1], dtype=np.float64)
        for ell in self.ellipsoids:
            values = values + ell.value * ell.contains(points)
        return values


def shepp_logan_ellipsoids(modified: bool = True) -> List[Ellipsoid]:
    """The ten ellipsoids of the (modified) 3-D Shepp-Logan phantom.

    The "modified" variant (Toft, 1996) increases the contrast of the small
    interior structures so they are visible without windowing; it is the
    variant shipped by RTK/TIGRE/scikit-image and the one used for visual
    verification in the paper.
    """
    # Columns: value, a, b, c, x0, y0, z0, phi (deg)
    classic = [
        (2.00, 0.6900, 0.9200, 0.810, 0.0, 0.0000, 0.000, 0.0),
        (-0.98, 0.6624, 0.8740, 0.780, 0.0, -0.0184, 0.000, 0.0),
        (-0.02, 0.1100, 0.3100, 0.220, 0.22, 0.0000, 0.000, -18.0),
        (-0.02, 0.1600, 0.4100, 0.280, -0.22, 0.0000, 0.000, 18.0),
        (0.01, 0.2100, 0.2500, 0.410, 0.0, 0.3500, -0.150, 0.0),
        (0.01, 0.0460, 0.0460, 0.050, 0.0, 0.1000, 0.250, 0.0),
        (0.01, 0.0460, 0.0460, 0.050, 0.0, -0.1000, 0.250, 0.0),
        (0.01, 0.0460, 0.0230, 0.050, -0.08, -0.6050, 0.000, 0.0),
        (0.01, 0.0230, 0.0230, 0.020, 0.0, -0.6060, 0.000, 0.0),
        (0.01, 0.0230, 0.0460, 0.020, 0.06, -0.6050, 0.000, 0.0),
    ]
    modified_values = [1.0, -0.8, -0.2, -0.2, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1]
    ellipsoids = []
    for row, mod_value in zip(classic, modified_values):
        value, a, b, c, x0, y0, z0, phi = row
        ellipsoids.append(
            Ellipsoid(
                value=mod_value if modified else value,
                center=(x0, y0, z0),
                axes=(a, b, c),
                phi_deg=phi,
            )
        )
    return ellipsoids


def shepp_logan_3d(
    nx: int, ny: int = None, nz: int = None, *, modified: bool = True,
    supersample: int = 1,
) -> Volume:
    """Rasterize the 3-D Shepp-Logan phantom to an ``(Nz, Ny, Nx)`` volume."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    phantom = EllipsoidPhantom(shepp_logan_ellipsoids(modified=modified))
    return phantom.rasterize(nx, ny, nz, supersample=supersample)


def shepp_logan_2d(n: int, *, modified: bool = True) -> np.ndarray:
    """The central (z=0) slice of the 3-D Shepp-Logan phantom, ``(n, n)``."""
    phantom = EllipsoidPhantom(shepp_logan_ellipsoids(modified=modified))
    coords = (np.arange(n, dtype=np.float64) - (n - 1) / 2.0) / (n / 2.0)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    points = np.stack([xx, -yy, np.zeros_like(xx)], axis=-1).reshape(-1, 3)
    return phantom.density_at(points).reshape(n, n).astype(DEFAULT_DTYPE)


def uniform_sphere_phantom(radius: float = 0.6, value: float = 1.0) -> EllipsoidPhantom:
    """A single uniform sphere — useful for quantitative accuracy tests."""
    if not 0 < radius <= 1:
        raise ValueError("radius must be in (0, 1]")
    return EllipsoidPhantom(
        [Ellipsoid(value=value, center=(0.0, 0.0, 0.0), axes=(radius, radius, radius))]
    )


def point_grid_phantom(spacing: float = 0.4, size: float = 0.04) -> EllipsoidPhantom:
    """A 3x3x3 grid of small spheres — useful for geometric-fidelity tests."""
    ellipsoids = []
    for x in (-spacing, 0.0, spacing):
        for y in (-spacing, 0.0, spacing):
            for z in (-spacing, 0.0, spacing):
                ellipsoids.append(
                    Ellipsoid(value=1.0, center=(x, y, z), axes=(size, size, size))
                )
    return EllipsoidPhantom(ellipsoids)
