"""Performance and image-quality metrics used throughout the evaluation.

* **GUPS** (giga-updates per second) — the paper's throughput metric
  (Section 2.3): ``Nx·Ny·Nz·Np / (T · 2^30)``.
* **RMSE** — used in Section 5.1 to compare the framework's output against
  the RTK CPU reference ("the RMSE is less than 10e-5").
* **PSNR / normalized cross-correlation** — standard reconstruction-quality
  measures used by the test-suite to validate FDK against the analytic
  phantom.
"""

from __future__ import annotations

import numpy as np

from .types import ReconstructionProblem

__all__ = [
    "gups",
    "rmse",
    "psnr",
    "normalized_cross_correlation",
    "mean_absolute_error",
    "interior_mask",
]


def gups(problem: ReconstructionProblem, seconds: float) -> float:
    """Giga-updates per second for solving ``problem`` in ``seconds``."""
    return problem.gups(seconds)


def _as_pair(a: np.ndarray, b: np.ndarray):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b


def rmse(a: np.ndarray, b: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Root-mean-square error between two arrays (optionally masked)."""
    a, b = _as_pair(a, b)
    diff = a - b
    if mask is not None:
        diff = diff[np.asarray(mask, dtype=bool)]
    if diff.size == 0:
        raise ValueError("mask selects no elements")
    return float(np.sqrt(np.mean(diff * diff)))


def mean_absolute_error(a: np.ndarray, b: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Mean absolute error between two arrays (optionally masked)."""
    a, b = _as_pair(a, b)
    diff = np.abs(a - b)
    if mask is not None:
        diff = diff[np.asarray(mask, dtype=bool)]
    if diff.size == 0:
        raise ValueError("mask selects no elements")
    return float(np.mean(diff))


def psnr(a: np.ndarray, reference: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Peak signal-to-noise ratio (dB) of ``a`` against ``reference``."""
    a, reference = _as_pair(a, reference)
    peak = float(np.max(np.abs(reference)))
    if peak == 0:
        raise ValueError("reference has zero dynamic range")
    err = rmse(a, reference, mask)
    if err == 0:
        return float("inf")
    return float(20.0 * np.log10(peak / err))


def normalized_cross_correlation(
    a: np.ndarray, b: np.ndarray, mask: np.ndarray | None = None
) -> float:
    """Pearson correlation between two arrays (optionally masked)."""
    a, b = _as_pair(a, b)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        a = a[mask]
        b = b[mask]
    a = a - a.mean()
    b = b - b.mean()
    denom = np.sqrt(np.sum(a * a) * np.sum(b * b))
    if denom == 0:
        return 0.0
    return float(np.sum(a * b) / denom)


def interior_mask(shape, fraction: float = 0.8) -> np.ndarray:
    """Boolean mask of the central ellipsoid covering ``fraction`` of each axis.

    Cone-beam FDK is only quantitatively exact near the central plane and
    inside the scanned field of view; quality metrics are therefore evaluated
    on an interior region, which is standard practice (and what the paper's
    profile-based inspection does implicitly).
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    grids = []
    for n in shape:
        coords = (np.arange(n) - (n - 1) / 2.0) / (max(n, 2) / 2.0)
        grids.append(coords / fraction)
    zz, yy, xx = np.meshgrid(*grids, indexing="ij")
    return (xx * xx + yy * yy + zz * zz) <= 1.0
