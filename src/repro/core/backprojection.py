"""Back-projection: the standard algorithm and the paper's proposed algorithm.

This module implements both back-projection schemes evaluated in the paper:

* :func:`backproject_standard` — Algorithm 2, the voxel-driven scheme used by
  RTK, RabbitCT and OSCaR: three inner products per voxel per projection to
  obtain ``(x, y, z)``, a reciprocal, the distance weight ``Wdis = 1/z²`` and
  a bilinear fetch.  The volume is stored i-major (``[k, j, i]``).
* :func:`backproject_proposed` — Algorithm 4, the paper's contribution.  It
  exploits Theorems 2 and 3 to hoist ``u``, ``1/z`` and ``Wdis`` out of the
  innermost (Z) loop, and Theorem 1 to obtain the detector row of the
  mirrored voxel by reflection (``ṽ = Nv - 1 - v``) instead of a third inner
  product.  The volume is stored k-major (``[i, j, k]``) and reshaped at the
  end (Algorithm 4 line 22), and each projection is transposed once before
  use (line 3) to make the detector fetches contiguous.

Both functions are fully vectorized over voxels with NumPy (the "CPU
reference" path); the GPU kernel variants of Table 3/4 are modelled in
:mod:`repro.gpusim.kernels` on top of the same arithmetic.

Distributed operation
---------------------

The iFDK framework decomposes the output volume along Z into ``R``
sub-volumes (Section 4.1.1).  Both accumulation entry points therefore
accept a ``z_range`` so a rank can back-project only its own slab; the
proposed algorithm pairs mirrored slices whenever both ends of a pair fall
inside the slab and falls back to direct evaluation otherwise (identical
arithmetic, by Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from .geometry import CBCTGeometry, ProjectionMatrix
from .interpolation import bilinear_interpolate
from .types import DEFAULT_DTYPE, ProjectionStack, ReconstructionProblem, Volume

__all__ = [
    "backproject_standard",
    "backproject_proposed",
    "accumulate_standard",
    "accumulate_proposed",
    "BackProjector",
    "OperationCounts",
    "operation_counts",
    "projection_compute_reduction",
]


# --------------------------------------------------------------------------- #
# Algorithm 2 — standard (RTK-style) back-projection
# --------------------------------------------------------------------------- #
def accumulate_standard(
    volume: np.ndarray,
    projection: np.ndarray,
    pm: ProjectionMatrix,
    *,
    z_range: Optional[Tuple[int, int]] = None,
    k_chunk: int = 32,
) -> None:
    """Accumulate one filtered projection into an i-major volume (Algorithm 2).

    Parameters
    ----------
    volume:
        The ``(Nz_local, Ny, Nx)`` accumulator, indexed ``[k, j, i]``.  When
        ``z_range`` is given the first axis covers ``[z_start, z_stop)`` of
        the global volume; otherwise it must cover the full ``Nz``.
    projection:
        The filtered projection ``Q_s`` of shape ``(Nv, Nu)``.
    pm:
        Projection matrix for this projection's gantry angle.
    z_range:
        Global Z index range ``(z_start, z_stop)`` held by ``volume``.
    k_chunk:
        Number of Z slices processed per vectorized batch (bounds the size of
        the coordinate temporaries).
    """
    geometry = pm.geometry
    nz_local, ny, nx = volume.shape
    if (ny, nx) != (geometry.ny, geometry.nx):
        raise ValueError(
            f"volume XY extent {(ny, nx)} does not match geometry "
            f"{(geometry.ny, geometry.nx)}"
        )
    z_start, z_stop = z_range if z_range is not None else (0, geometry.nz)
    if z_stop - z_start != nz_local:
        raise ValueError("volume Z extent does not match z_range")
    if projection.shape != (geometry.nv, geometry.nu):
        raise ValueError(
            f"projection shape {projection.shape} does not match detector "
            f"({geometry.nv}, {geometry.nu})"
        )

    p = pm.matrix
    ii = np.arange(nx, dtype=np.float64)
    jj = np.arange(ny, dtype=np.float64)
    j_grid, i_grid = np.meshgrid(jj, ii, indexing="ij")  # (Ny, Nx)

    # Components that do not depend on k.
    x_base = p[0, 0] * i_grid + p[0, 1] * j_grid + p[0, 3]
    y_base = p[1, 0] * i_grid + p[1, 1] * j_grid + p[1, 3]
    z_base = p[2, 0] * i_grid + p[2, 1] * j_grid + p[2, 3]

    for k0 in range(0, nz_local, max(1, k_chunk)):
        k1 = min(k0 + k_chunk, nz_local)
        ks = np.arange(z_start + k0, z_start + k1, dtype=np.float64)
        # Broadcast to (kc, Ny, Nx): Algorithm 2 computes the full 3-vector
        # (x, y, z) for every voxel — three inner products per voxel.
        x = x_base[None, :, :] + p[0, 2] * ks[:, None, None]
        y = y_base[None, :, :] + p[1, 2] * ks[:, None, None]
        z = z_base[None, :, :] + p[2, 2] * ks[:, None, None]
        f = 1.0 / z
        w = (f * f).astype(DEFAULT_DTYPE)
        u = x * f
        v = y * f
        samples = bilinear_interpolate(projection, u, v)
        volume[k0:k1] += w * samples


def backproject_standard(
    stack: ProjectionStack,
    geometry: CBCTGeometry,
    *,
    z_range: Optional[Tuple[int, int]] = None,
    out: Optional[np.ndarray] = None,
    k_chunk: int = 32,
) -> Volume:
    """Algorithm 2: back-project a whole stack of filtered projections."""
    z_start, z_stop = z_range if z_range is not None else (0, geometry.nz)
    nz_local = z_stop - z_start
    if out is None:
        out = np.zeros((nz_local, geometry.ny, geometry.nx), dtype=DEFAULT_DTYPE)
    matrices = geometry.projection_matrices(stack.angles)
    for pm, projection in zip(matrices, stack.data):
        accumulate_standard(
            out, projection, pm, z_range=(z_start, z_stop), k_chunk=k_chunk
        )
    return Volume(data=out, voxel_pitch=geometry.voxel_pitch)


# --------------------------------------------------------------------------- #
# Algorithm 4 — proposed back-projection (symmetric, k-major)
# --------------------------------------------------------------------------- #
def _column_quantities(pm: ProjectionMatrix, ny: int, nx: int):
    """Per-(i, j) quantities hoisted out of the Z loop by Algorithm 4.

    Returns ``(u, f, w, y_base)`` each of shape ``(Ny, Nx)`` where
    ``u`` is the (constant along Z, Theorem 2) detector column, ``f = 1/z``
    (constant along Z, Theorem 3), ``w = f²`` the distance weight and
    ``y_base`` the k-independent part of the remaining inner product.
    """
    p = pm.matrix
    ii = np.arange(nx, dtype=np.float64)
    jj = np.arange(ny, dtype=np.float64)
    j_grid, i_grid = np.meshgrid(jj, ii, indexing="ij")
    # Algorithm 4 line 7: only two inner products, evaluated at k = 0.  The
    # i/j components of row 0 and row 2 carry no k dependence (Theorems 2, 3).
    x = p[0, 0] * i_grid + p[0, 1] * j_grid + p[0, 3]
    z = p[2, 0] * i_grid + p[2, 1] * j_grid + p[2, 3]
    f = 1.0 / z
    u = x * f
    w = f * f
    y_base = p[1, 0] * i_grid + p[1, 1] * j_grid + p[1, 3]
    return u, f, w, y_base


def accumulate_proposed(
    kmajor: np.ndarray,
    projection_t: np.ndarray,
    pm: ProjectionMatrix,
    *,
    z_range: Optional[Tuple[int, int]] = None,
    k_chunk: int = 32,
    use_symmetry: bool = True,
) -> None:
    """Accumulate one transposed projection into a k-major volume (Algorithm 4).

    Parameters
    ----------
    kmajor:
        Accumulator of shape ``(Nx, Ny, Nz_local)`` indexed ``[i, j, k]``
        (the paper's ``I~``).
    projection_t:
        The transposed filtered projection ``Q~_s`` of shape ``(Nu, Nv)``
        (Algorithm 4 line 3).
    pm:
        Projection matrix for this projection's gantry angle.
    z_range:
        Global Z range held by ``kmajor`` (defaults to the full volume).
    use_symmetry:
        When True, mirrored slice pairs inside the slab are produced from a
        single inner product via Theorem 1 (``ṽ = Nv - 1 - v``); when False
        every slice is evaluated directly (used by ablation benchmarks).
    """
    geometry = pm.geometry
    nx, ny, nz_local = kmajor.shape
    if (nx, ny) != (geometry.nx, geometry.ny):
        raise ValueError(
            f"volume XY extent {(nx, ny)} does not match geometry "
            f"{(geometry.nx, geometry.ny)}"
        )
    z_start, z_stop = z_range if z_range is not None else (0, geometry.nz)
    if z_stop - z_start != nz_local:
        raise ValueError("k-major volume Z extent does not match z_range")
    if projection_t.shape != (geometry.nu, geometry.nv):
        raise ValueError(
            f"transposed projection shape {projection_t.shape} does not match "
            f"({geometry.nu}, {geometry.nv})"
        )

    p = pm.matrix
    nz_global = geometry.nz
    nv = geometry.nv
    u, f, w, y_base = _column_quantities(pm, ny, nx)
    u_t = u.T  # (Nx, Ny) to match the k-major [i, j, k] layout
    f_t = f.T
    w_t = (w.T).astype(DEFAULT_DTYPE)
    y_base_t = y_base.T

    local_ks = np.arange(z_start, z_stop, dtype=np.intp)

    if use_symmetry:
        # Pair global slice k with its mirror Nz-1-k whenever both live in
        # the slab; the mirror's detector row comes from Theorem 1.
        mirror = (nz_global - 1) - local_ks
        in_slab = (mirror >= z_start) & (mirror < z_stop)
        paired_lower = local_ks[(local_ks * 2 < nz_global - 1) & in_slab]
        center = local_ks[(local_ks * 2 == nz_global - 1) & in_slab]
        direct = np.concatenate(
            [local_ks[~in_slab], center]
        )
    else:
        paired_lower = np.array([], dtype=np.intp)
        direct = local_ks

    def fetch(v_coords: np.ndarray) -> np.ndarray:
        # Q~ is indexed [u, v]; bilinear_interpolate(image, col, row) with
        # col = v and row = u samples Q~(u, v) = Q(v, u).
        return bilinear_interpolate(
            projection_t, v_coords, u_t[:, :, None]
        )

    # --- symmetric pairs: one inner product serves two slices ------------- #
    for c0 in range(0, len(paired_lower), max(1, k_chunk)):
        ks = paired_lower[c0 : c0 + k_chunk].astype(np.float64)
        y = y_base_t[:, :, None] + p[1, 2] * ks[None, None, :]
        v = y * f_t[:, :, None]
        v_mirror = (nv - 1) - v  # Theorem 1
        samples = fetch(v)
        samples_mirror = fetch(v_mirror)
        idx = (paired_lower[c0 : c0 + k_chunk] - z_start).astype(np.intp)
        idx_mirror = ((nz_global - 1) - paired_lower[c0 : c0 + k_chunk] - z_start).astype(np.intp)
        kmajor[:, :, idx] += w_t[:, :, None] * samples
        kmajor[:, :, idx_mirror] += w_t[:, :, None] * samples_mirror

    # --- unpaired slices: direct evaluation -------------------------------- #
    for c0 in range(0, len(direct), max(1, k_chunk)):
        ks = direct[c0 : c0 + k_chunk].astype(np.float64)
        y = y_base_t[:, :, None] + p[1, 2] * ks[None, None, :]
        v = y * f_t[:, :, None]
        samples = fetch(v)
        idx = (direct[c0 : c0 + k_chunk] - z_start).astype(np.intp)
        kmajor[:, :, idx] += w_t[:, :, None] * samples


def backproject_proposed(
    stack: ProjectionStack,
    geometry: CBCTGeometry,
    *,
    z_range: Optional[Tuple[int, int]] = None,
    k_chunk: int = 32,
    use_symmetry: bool = True,
) -> Volume:
    """Algorithm 4: back-project a stack with the proposed algorithm.

    The accumulation happens in the k-major layout; the final reshape back to
    the i-major :class:`Volume` corresponds to Algorithm 4 line 22.
    """
    z_start, z_stop = z_range if z_range is not None else (0, geometry.nz)
    nz_local = z_stop - z_start
    kmajor = np.zeros((geometry.nx, geometry.ny, nz_local), dtype=DEFAULT_DTYPE)
    matrices = geometry.projection_matrices(stack.angles)
    for pm, projection in zip(matrices, stack.data):
        projection_t = np.ascontiguousarray(projection.T)  # Algorithm 4 line 3
        accumulate_proposed(
            kmajor,
            projection_t,
            pm,
            z_range=(z_start, z_stop),
            k_chunk=k_chunk,
            use_symmetry=use_symmetry,
        )
    data = np.ascontiguousarray(kmajor.transpose(2, 1, 0), dtype=DEFAULT_DTYPE)
    return Volume(data=data, voxel_pitch=geometry.voxel_pitch)


# --------------------------------------------------------------------------- #
# Convenience driver object
# --------------------------------------------------------------------------- #
class BackProjector:
    """Reusable back-projection stage bound to one geometry.

    The distributed pipeline creates one instance per rank (the paper's
    BP-thread) and calls :meth:`accumulate` once per batch of filtered
    projections it receives from the AllGather step.  The voxel-update loop
    itself is delegated to the selected :mod:`repro.backends` compute
    backend; ``reference`` reproduces this module's accumulation functions
    exactly.
    """

    #: Supported algorithm names.
    ALGORITHMS = ("standard", "proposed")

    def __init__(
        self,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
        k_chunk: int = 32,
        backend: str = "reference",
    ):
        if algorithm not in self.ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of {self.ALGORITHMS}"
            )
        from ..backends import get_backend  # late import: backends import core

        self.geometry = geometry
        self.algorithm = algorithm
        self.use_symmetry = use_symmetry
        self.k_chunk = int(k_chunk)
        self.z_range = z_range if z_range is not None else (0, geometry.nz)
        z_start, z_stop = self.z_range
        if not (0 <= z_start < z_stop <= geometry.nz):
            raise ValueError(f"invalid z_range {z_range} for Nz={geometry.nz}")
        engine_backend = get_backend(backend)
        self.backend = engine_backend.name
        self._engine = engine_backend.accumulator(
            geometry,
            algorithm=algorithm,
            z_range=self.z_range,
            use_symmetry=use_symmetry,
            k_chunk=self.k_chunk,
        )
        self.projections_processed = 0
        self.updates_performed = 0

    # ------------------------------------------------------------------ #
    def accumulate(self, projections: np.ndarray, angles: Sequence[float]) -> None:
        """Back-project a batch of filtered projections into the sub-volume."""
        projections = np.asarray(projections, dtype=DEFAULT_DTYPE)
        if projections.ndim == 2:
            projections = projections[None, ...]
            angles = [angles] if np.isscalar(angles) else angles
        angles = np.asarray(angles, dtype=np.float64).ravel()
        if projections.shape[0] != angles.shape[0]:
            raise ValueError("number of projections and angles must match")
        nz_local = self.z_range[1] - self.z_range[0]
        for angle, projection in zip(angles, projections):
            self._engine.add(projection, float(angle))
            self.projections_processed += 1
            self.updates_performed += nz_local * self.geometry.ny * self.geometry.nx

    def volume(self) -> Volume:
        """Return the accumulated sub-volume in the i-major layout."""
        return self._engine.volume()

    def reset(self) -> None:
        """Zero the accumulator (keeps the geometry and configuration)."""
        self._engine.reset()
        self.projections_processed = 0
        self.updates_performed = 0


# --------------------------------------------------------------------------- #
# Operation counting (the "1/6" claim of Section 3.2.2)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class OperationCounts:
    """Arithmetic cost of the projection-coordinate computation.

    ``inner_products`` counts 1x4·4x1 dot products; ``multiplies`` and
    ``divides`` count the per-voxel scalar operations of the coordinate
    computation (the bilinear fetch and the accumulate are identical in both
    algorithms and are therefore excluded, exactly as in the paper's
    accounting).
    """

    inner_products: int
    multiplies: int
    divides: int

    @property
    def weighted_total(self) -> float:
        """Total scalar operations, counting an inner product as 7 flops."""
        return 7.0 * self.inner_products + self.multiplies + self.divides


def operation_counts(
    problem: ReconstructionProblem, algorithm: str
) -> OperationCounts:
    """Projection-coordinate operation counts for one full back-projection.

    For Algorithm 2 every voxel-projection pair evaluates three inner
    products, one reciprocal, one squaring and two coordinate multiplies.
    For Algorithm 4 the ``u``/``z`` inner products, the reciprocal, the
    squaring and the ``u`` multiply are evaluated once per (i, j) column and
    a single inner product plus one multiply is needed per *pair* of voxels
    (Theorem 1 gives the mirrored row by a subtraction).
    """
    voxels = problem.output_voxels
    columns = problem.nx * problem.ny
    np_ = problem.np_
    if algorithm == "standard":
        return OperationCounts(
            inner_products=3 * voxels * np_,
            multiplies=3 * voxels * np_,  # Wdis = f*f plus u, v scaling
            divides=voxels * np_,
        )
    if algorithm == "proposed":
        per_column = 2 * columns * np_  # x and z inner products (line 7)
        per_pair = (voxels // 2) * np_  # y inner product (line 12)
        return OperationCounts(
            inner_products=per_column + per_pair,
            multiplies=2 * columns * np_ + (voxels // 2) * np_ * 1 + voxels * np_ // 2,
            divides=columns * np_,
        )
    raise ValueError(f"unknown algorithm {algorithm!r}")


def projection_compute_reduction(problem: ReconstructionProblem) -> float:
    """Ratio of Algorithm 4 to Algorithm 2 inner-product counts.

    Section 3.2.2 states this tends to 1/6: one inner product per *pair* of
    voxels instead of three per voxel.  The ratio approaches 1/6 from above
    as ``Nz`` grows (the per-column terms amortize away).
    """
    std = operation_counts(problem, "standard")
    new = operation_counts(problem, "proposed")
    return new.inner_products / std.inner_products
