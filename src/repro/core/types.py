"""Core data types for the iFDK reproduction.

The paper (Table 1) defines the cone-beam CT (CBCT) acquisition in terms of a
flat-panel detector (FPD) of ``Nu x Nv`` pixels, ``Np`` projections acquired
over a full rotation, and an output volume of ``Nx x Ny x Nz`` voxels.  This
module provides small, explicit containers for those objects so that every
stage of the pipeline (filtering, back-projection, distribution) can validate
shapes and units instead of passing bare arrays around.

All arrays are single-precision ``float32`` by default, matching the paper's
"single precision for all projections, volumes, and runs" statement
(Section 5.1).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, Tuple

import numpy as np

__all__ = [
    "DEFAULT_DTYPE",
    "ReconstructionProblem",
    "ProjectionStack",
    "Volume",
    "problem_from_string",
]

#: Single precision everywhere, as in the paper (Section 5.1).
DEFAULT_DTYPE = np.float32


def _positive(name: str, value: int) -> int:
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return value


@dataclass(frozen=True)
class ReconstructionProblem:
    """The image-reconstruction problem ``Nu x Nv x Np -> Nx x Ny x Nz``.

    Section 2.3(I) of the paper defines the problem by the size of the input
    projection stack and the size of the output volume.  The class also
    carries the derived quantities used throughout the evaluation:

    * :attr:`alpha` — the input/output size ratio ``α`` used in Table 4.
    * :attr:`updates` — the total number of voxel updates
      ``Nx * Ny * Nz * Np`` used by the GUPS metric (Section 2.3(II)).

    Parameters
    ----------
    nu, nv:
        Width and height of one 2-D projection, in pixels.
    np_:
        Number of projections (``Np`` in the paper; trailing underscore to
        avoid shadowing the :mod:`numpy` alias).
    nx, ny, nz:
        Output volume extent in voxels.
    """

    nu: int
    nv: int
    np_: int
    nx: int
    ny: int
    nz: int

    def __post_init__(self) -> None:
        for name in ("nu", "nv", "np_", "nx", "ny", "nz"):
            object.__setattr__(self, name, _positive(name, getattr(self, name)))

    # ------------------------------------------------------------------ #
    # Derived sizes
    # ------------------------------------------------------------------ #
    @property
    def input_pixels(self) -> int:
        """Total number of input pixels ``Nu * Nv * Np``."""
        return self.nu * self.nv * self.np_

    @property
    def output_voxels(self) -> int:
        """Total number of output voxels ``Nx * Ny * Nz``."""
        return self.nx * self.ny * self.nz

    @property
    def alpha(self) -> float:
        """Input/output size ratio ``α`` (Table 4)."""
        return self.input_pixels / self.output_voxels

    @property
    def updates(self) -> int:
        """Number of voxel updates performed by back-projection."""
        return self.output_voxels * self.np_

    def input_bytes(self, itemsize: int = 4) -> int:
        """Size of the input projection stack in bytes (FP32 by default)."""
        return self.input_pixels * itemsize

    def output_bytes(self, itemsize: int = 4) -> int:
        """Size of the output volume in bytes (FP32 by default)."""
        return self.output_voxels * itemsize

    def gups(self, seconds: float) -> float:
        """Giga-updates per second for a run of ``seconds`` (Section 2.3)."""
        if seconds <= 0:
            raise ValueError("execution time must be positive")
        return self.updates / (seconds * 2.0**30)

    # ------------------------------------------------------------------ #
    # Presentation helpers
    # ------------------------------------------------------------------ #
    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{self.nu}x{self.nv}x{self.np_}->"
            f"{self.nx}x{self.ny}x{self.nz}"
        )

    def scaled(self, factor: float) -> "ReconstructionProblem":
        """Return the problem scaled isotropically by ``factor``.

        Used by the benchmark harness to run paper-sized problems at
        laptop-scale while preserving the aspect ratios that drive the
        cost model (``α`` is invariant under isotropic scaling when input
        and output scale together).
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")

        def s(v: int) -> int:
            return max(1, int(round(v * factor)))

        return ReconstructionProblem(
            nu=s(self.nu), nv=s(self.nv), np_=s(self.np_),
            nx=s(self.nx), ny=s(self.ny), nz=s(self.nz),
        )


def problem_from_string(spec: str) -> ReconstructionProblem:
    """Parse ``"NuxNvxNp->NxxNyxNz"`` into a :class:`ReconstructionProblem`.

    The format mirrors how the paper writes problems, e.g.
    ``"2048x2048x4096->4096x4096x4096"``.  ``k`` suffixes are accepted
    (``"2k"`` means 2048).
    """

    def parse_dim(token: str) -> int:
        token = token.strip().lower()
        if token.endswith("k"):
            return int(float(token[:-1]) * 1024)
        return int(token)

    try:
        left, right = spec.split("->")
        nu, nv, np_ = (parse_dim(t) for t in left.split("x"))
        nx, ny, nz = (parse_dim(t) for t in right.split("x"))
    except Exception as exc:  # noqa: BLE001 - re-raise with context
        raise ValueError(f"cannot parse problem spec {spec!r}") from exc
    return ReconstructionProblem(nu, nv, np_, nx, ny, nz)


@dataclass
class ProjectionStack:
    """A stack of 2-D projections plus acquisition metadata.

    ``data`` is stored as ``(Np, Nv, Nu)`` — projection index first, then
    detector row (``v``), then detector column (``u``) — which matches the
    row-major storage used by RTK and by the paper's CUDA kernels.
    """

    data: np.ndarray
    angles: np.ndarray
    filtered: bool = False

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=DEFAULT_DTYPE)
        self.angles = np.asarray(self.angles, dtype=np.float64)
        if self.data.ndim != 3:
            raise ValueError(
                f"projection data must be 3-D (Np, Nv, Nu); got {self.data.shape}"
            )
        if self.angles.ndim != 1 or self.angles.shape[0] != self.data.shape[0]:
            raise ValueError(
                "angles must be a 1-D array with one entry per projection"
            )

    # ------------------------------------------------------------------ #
    @property
    def np_(self) -> int:
        """Number of projections."""
        return self.data.shape[0]

    @property
    def nv(self) -> int:
        """Detector height in pixels."""
        return self.data.shape[1]

    @property
    def nu(self) -> int:
        """Detector width in pixels."""
        return self.data.shape[2]

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def __len__(self) -> int:
        return self.np_

    def __iter__(self) -> Iterator[Tuple[float, np.ndarray]]:
        for angle, image in zip(self.angles, self.data):
            yield float(angle), image

    def subset(self, indices) -> "ProjectionStack":
        """Return a new stack restricted to ``indices`` (copying data)."""
        indices = np.asarray(indices, dtype=np.intp)
        return ProjectionStack(
            data=self.data[indices].copy(),
            angles=self.angles[indices].copy(),
            filtered=self.filtered,
        )

    def copy(self) -> "ProjectionStack":
        return ProjectionStack(
            data=self.data.copy(), angles=self.angles.copy(), filtered=self.filtered
        )


@dataclass
class Volume:
    """A reconstructed 3-D volume.

    ``data`` uses the *i-major* layout of Algorithm 2, i.e. indexed
    ``[k, j, i]`` with ``i`` (the X axis) contiguous.  The proposed
    Algorithm 4 internally produces a *k-major* layout (``[i, j, k]`` with
    ``k`` contiguous, the paper's ``I~``) and reshapes back at the end;
    :meth:`from_kmajor` performs that reshape.
    """

    data: np.ndarray
    voxel_pitch: Tuple[float, float, float] = (1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=DEFAULT_DTYPE)
        if self.data.ndim != 3:
            raise ValueError(f"volume data must be 3-D (Nz, Ny, Nx); got {self.data.shape}")
        pitch = tuple(float(p) for p in self.voxel_pitch)
        if len(pitch) != 3 or any(p <= 0 for p in pitch):
            raise ValueError("voxel_pitch must be three positive floats")
        self.voxel_pitch = pitch

    @property
    def nz(self) -> int:
        return self.data.shape[0]

    @property
    def ny(self) -> int:
        return self.data.shape[1]

    @property
    def nx(self) -> int:
        return self.data.shape[2]

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.data.shape

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @classmethod
    def zeros(
        cls,
        nx: int,
        ny: int,
        nz: int,
        voxel_pitch: Tuple[float, float, float] = (1.0, 1.0, 1.0),
    ) -> "Volume":
        """Allocate an all-zero volume of the given extent."""
        return cls(
            data=np.zeros((nz, ny, nx), dtype=DEFAULT_DTYPE),
            voxel_pitch=voxel_pitch,
        )

    @classmethod
    def from_kmajor(
        cls,
        kmajor: np.ndarray,
        voxel_pitch: Tuple[float, float, float] = (1.0, 1.0, 1.0),
    ) -> "Volume":
        """Build a volume from the k-major layout of Algorithm 4.

        The k-major buffer is indexed ``[i, j, k]``; the final reshape of
        Algorithm 4 line 22 transposes it back to ``[k, j, i]``.
        """
        if kmajor.ndim != 3:
            raise ValueError("k-major buffer must be 3-D (Nx, Ny, Nz)")
        data = np.ascontiguousarray(kmajor.transpose(2, 1, 0), dtype=DEFAULT_DTYPE)
        return cls(data=data, voxel_pitch=voxel_pitch)

    def to_kmajor(self) -> np.ndarray:
        """Return a contiguous copy in the k-major layout ``[i, j, k]``."""
        return np.ascontiguousarray(self.data.transpose(2, 1, 0))

    def copy(self) -> "Volume":
        return Volume(data=self.data.copy(), voxel_pitch=self.voxel_pitch)

    def slab(self, z_start: int, z_stop: int) -> "Volume":
        """Return the sub-volume of slices ``[z_start, z_stop)`` (a copy)."""
        if not (0 <= z_start < z_stop <= self.nz):
            raise ValueError(
                f"invalid slab [{z_start}, {z_stop}) for volume with Nz={self.nz}"
            )
        return Volume(
            data=self.data[z_start:z_stop].copy(), voxel_pitch=self.voxel_pitch
        )
