"""Iterative reconstruction methods built on the same projection operators.

Section 1 and Section 6.2 of the paper argue that the proposed
back-projection algorithm "is also general and thus can be adopted by
iterative reconstruction methods, in which the back-projection is required
to be repeated dozens of times, e.g. ART, SART, MLEM, and MBIR".  This module
demonstrates that claim: every solver below is expressed purely in terms of

* the forward operator ``A``  — :func:`repro.core.forward.forward_project_volume`
* the back-projection operator ``Aᵀ`` — Algorithm 2 or Algorithm 4 from
  :mod:`repro.core.backprojection` (selectable per solver),

so switching the back-projection algorithm changes the runtime but not the
result (validated by the test-suite).

The solvers implement the classical update rules:

* **SIRT** — simultaneous update with row/column sum normalization.
* **SART** — per-projection (ordered-subsets of size 1) relaxed update.
* **ART** — classical Kaczmarz sweep approximated at projection granularity.
* **MLEM / OSEM** — multiplicative expectation-maximization update for
  emission-style data (non-negative volumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from .backprojection import backproject_proposed, backproject_standard
from .forward import forward_project_volume
from .geometry import CBCTGeometry
from .types import DEFAULT_DTYPE, ProjectionStack, Volume

__all__ = [
    "IterativeResult",
    "sirt",
    "sart",
    "art",
    "mlem",
    "osem",
]

_EPS = np.float32(1e-8)


@dataclass
class IterativeResult:
    """Output of an iterative solver."""

    volume: Volume
    residual_history: List[float] = field(default_factory=list)
    iterations: int = 0

    @property
    def final_residual(self) -> float:
        return self.residual_history[-1] if self.residual_history else float("nan")


def _backproject(
    stack: ProjectionStack, geometry: CBCTGeometry, algorithm: str
) -> Volume:
    if algorithm == "proposed":
        return backproject_proposed(stack, geometry)
    if algorithm == "standard":
        return backproject_standard(stack, geometry)
    raise ValueError(f"unknown back-projection algorithm {algorithm!r}")


def _residual_norm(residual: np.ndarray) -> float:
    return float(np.sqrt(np.mean(residual.astype(np.float64) ** 2)))


def _ones_stack(stack: ProjectionStack) -> ProjectionStack:
    return ProjectionStack(
        data=np.ones_like(stack.data), angles=stack.angles.copy(), filtered=True
    )


def sirt(
    measured: ProjectionStack,
    geometry: CBCTGeometry,
    *,
    iterations: int = 10,
    relaxation: float = 1.0,
    algorithm: str = "proposed",
    initial: Optional[Volume] = None,
    step_mm: Optional[float] = None,
    callback: Optional[Callable[[int, float], None]] = None,
) -> IterativeResult:
    """Simultaneous Iterative Reconstruction Technique.

    Update rule: ``x ← x + λ · C · Aᵀ R (b − A x)`` where ``R`` and ``C`` are
    the reciprocal row and column sums of the system matrix (estimated by
    projecting/back-projecting a field of ones).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    x = (initial.copy() if initial is not None else Volume.zeros(
        geometry.nx, geometry.ny, geometry.nz, geometry.voxel_pitch
    ))

    row_sums = forward_project_volume(
        Volume(np.ones(geometry.volume_shape, dtype=DEFAULT_DTYPE),
               voxel_pitch=geometry.voxel_pitch),
        geometry, measured.angles, step_mm=step_mm,
    ).data
    col_sums = _backproject(_ones_stack(measured), geometry, algorithm).data

    inv_rows = 1.0 / np.maximum(row_sums, _EPS)
    inv_cols = 1.0 / np.maximum(col_sums, _EPS)

    history: List[float] = []
    for it in range(iterations):
        simulated = forward_project_volume(x, geometry, measured.angles, step_mm=step_mm)
        residual = measured.data - simulated.data
        history.append(_residual_norm(residual))
        correction = _backproject(
            ProjectionStack(residual * inv_rows, measured.angles, filtered=True),
            geometry,
            algorithm,
        ).data
        x.data += DEFAULT_DTYPE(relaxation) * inv_cols * correction
        if callback is not None:
            callback(it, history[-1])
    return IterativeResult(volume=x, residual_history=history, iterations=iterations)


def sart(
    measured: ProjectionStack,
    geometry: CBCTGeometry,
    *,
    iterations: int = 3,
    relaxation: float = 0.5,
    algorithm: str = "proposed",
    initial: Optional[Volume] = None,
    step_mm: Optional[float] = None,
    callback: Optional[Callable[[int, float], None]] = None,
) -> IterativeResult:
    """Simultaneous Algebraic Reconstruction Technique (per-projection updates).

    Each iteration sweeps the projections one at a time (Andersen & Kak 1984),
    normalizing by the per-projection row sums and the column sums of that
    single view.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    x = (initial.copy() if initial is not None else Volume.zeros(
        geometry.nx, geometry.ny, geometry.nz, geometry.voxel_pitch
    ))
    ones_volume = Volume(
        np.ones(geometry.volume_shape, dtype=DEFAULT_DTYPE),
        voxel_pitch=geometry.voxel_pitch,
    )

    history: List[float] = []
    for it in range(iterations):
        sq_sum = 0.0
        count = 0
        for view in range(measured.np_):
            angle = np.asarray([measured.angles[view]])
            single = measured.subset([view])
            simulated = forward_project_volume(x, geometry, angle, step_mm=step_mm)
            residual = single.data - simulated.data
            sq_sum += float(np.sum(residual.astype(np.float64) ** 2))
            count += residual.size
            row_sums = forward_project_volume(
                ones_volume, geometry, angle, step_mm=step_mm
            ).data
            weighted = residual / np.maximum(row_sums, _EPS)
            correction = _backproject(
                ProjectionStack(weighted, angle, filtered=True), geometry, algorithm
            ).data
            col_sums = _backproject(
                ProjectionStack(np.ones_like(single.data), angle, filtered=True),
                geometry,
                algorithm,
            ).data
            x.data += DEFAULT_DTYPE(relaxation) * correction / np.maximum(col_sums, _EPS)
        history.append(float(np.sqrt(sq_sum / max(count, 1))))
        if callback is not None:
            callback(it, history[-1])
    return IterativeResult(volume=x, residual_history=history, iterations=iterations)


def art(
    measured: ProjectionStack,
    geometry: CBCTGeometry,
    *,
    iterations: int = 3,
    relaxation: float = 0.2,
    algorithm: str = "proposed",
    initial: Optional[Volume] = None,
    step_mm: Optional[float] = None,
) -> IterativeResult:
    """Algebraic Reconstruction Technique (Gordon, Bender & Herman 1970).

    Implemented as a strongly-relaxed SART sweep — the classical ART updates
    one detector row at a time, which at Python granularity is prohibitively
    slow; per-view updates with a small relaxation factor converge to the
    same fixed point and exercise exactly the same operators.
    """
    return sart(
        measured,
        geometry,
        iterations=iterations,
        relaxation=relaxation,
        algorithm=algorithm,
        initial=initial,
        step_mm=step_mm,
    )


def mlem(
    measured: ProjectionStack,
    geometry: CBCTGeometry,
    *,
    iterations: int = 10,
    algorithm: str = "proposed",
    initial: Optional[Volume] = None,
    step_mm: Optional[float] = None,
    callback: Optional[Callable[[int, float], None]] = None,
) -> IterativeResult:
    """Maximum-Likelihood Expectation-Maximization (Shepp & Vardi 1982).

    Multiplicative update ``x ← x / (Aᵀ 1) · Aᵀ (b / A x)``; requires
    non-negative data and produces non-negative volumes.
    """
    return osem(
        measured,
        geometry,
        subsets=1,
        iterations=iterations,
        algorithm=algorithm,
        initial=initial,
        step_mm=step_mm,
        callback=callback,
    )


def osem(
    measured: ProjectionStack,
    geometry: CBCTGeometry,
    *,
    subsets: int = 4,
    iterations: int = 5,
    algorithm: str = "proposed",
    initial: Optional[Volume] = None,
    step_mm: Optional[float] = None,
    callback: Optional[Callable[[int, float], None]] = None,
) -> IterativeResult:
    """Ordered-Subsets Expectation-Maximization (OSEM).

    ``subsets=1`` reduces to MLEM.  Projections are partitioned round-robin
    into ``subsets`` groups; each sub-iteration applies the MLEM update using
    only one group, which converges much faster per unit work.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if not 1 <= subsets <= measured.np_:
        raise ValueError("subsets must be between 1 and the number of projections")
    if np.any(measured.data < 0):
        raise ValueError("MLEM/OSEM require non-negative projection data")

    if initial is not None:
        x = initial.copy()
        if np.any(x.data <= 0):
            raise ValueError("MLEM/OSEM require a strictly positive initial volume")
    else:
        x = Volume(
            np.ones(geometry.volume_shape, dtype=DEFAULT_DTYPE),
            voxel_pitch=geometry.voxel_pitch,
        )

    subset_indices = [
        np.arange(s, measured.np_, subsets, dtype=np.intp) for s in range(subsets)
    ]

    history: List[float] = []
    for it in range(iterations):
        sq_sum = 0.0
        count = 0
        for indices in subset_indices:
            sub = measured.subset(indices)
            angles = sub.angles
            simulated = forward_project_volume(x, geometry, angles, step_mm=step_mm)
            sq_sum += float(np.sum((sub.data - simulated.data).astype(np.float64) ** 2))
            count += sub.data.size
            ratio = sub.data / np.maximum(simulated.data, _EPS)
            numerator = _backproject(
                ProjectionStack(ratio, angles, filtered=True), geometry, algorithm
            ).data
            sensitivity = _backproject(
                ProjectionStack(np.ones_like(sub.data), angles, filtered=True),
                geometry,
                algorithm,
            ).data
            x.data *= numerator / np.maximum(sensitivity, _EPS)
        history.append(float(np.sqrt(sq_sum / max(count, 1))))
        if callback is not None:
            callback(it, history[-1])
    return IterativeResult(volume=x, residual_history=history, iterations=iterations)
