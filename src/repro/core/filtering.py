"""The filtering stage of FDK (Algorithm 1 of the paper).

The filtering (a.k.a. convolution) stage multiplies each projection by a
2-D cosine-weighting table ``Fcos`` and convolves every detector row with a
1-D ramp filter ``Framp`` (Algorithm 1).  The paper executes this stage on
the CPU with multi-threading and SIMD (Section 3.1); here it is executed
with vectorized NumPy/romFFT calls, which is the CPU-efficient idiom
available in this environment, and its measured throughput feeds the
``TH_flt`` micro-benchmark constant of the performance model.

Implementation notes
--------------------

* The ramp filter is built in the *spatial* domain using the band-limited
  kernel of Kak & Slaney (h(0) = 1/(4τ²), h(n odd) = −1/(nπτ)², h(n even)=0)
  and then transformed with an FFT, which avoids the DC-offset artefact of
  sampling ``|ω|`` directly.  τ is the detector pitch scaled to the virtual
  detector that passes through the rotation axis.
* Windowed variants (Shepp-Logan, cosine, Hamming, Hann) multiply the ramp's
  frequency response by the corresponding window — "the shape of the ramp
  filter deeply affects the final image quality, yet it has no effect on the
  compute intensity of the filtering stage" (Section 2.2.2), which is why
  they share a single code path.
* :func:`fdk_weight_and_filter` additionally folds the constant FDK scale
  ``d² · Δβ / 2`` into the filtered projections so that the back-projection
  stage can remain a literal transcription of Algorithm 2 / Algorithm 4
  (which only accumulate ``Wdis · interp2`` with ``Wdis = 1/z²``).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

import numpy as np

try:  # SciPy's pocketfft is noticeably faster than numpy.fft for real FFTs.
    from scipy import fft as _fft
except ImportError:  # pragma: no cover - scipy is a hard dependency
    from numpy import fft as _fft  # type: ignore[no-redef]

from .geometry import CBCTGeometry
from .types import DEFAULT_DTYPE, ProjectionStack

__all__ = [
    "RAMP_FILTERS",
    "broadcast_redundancy_table",
    "cosine_weight_table",
    "ramp_kernel_spatial",
    "ramp_filter_frequency_response",
    "apply_ramp_filter",
    "filter_projections",
    "fdk_weight_and_filter",
    "FilteringStage",
    "measure_filtering_throughput",
]


# --------------------------------------------------------------------------- #
# Cosine weighting (the ``Fcos`` table of Table 1)
# --------------------------------------------------------------------------- #
def cosine_weight_table(geometry: CBCTGeometry) -> np.ndarray:
    """The 2-D cosine weighting table ``Fcos`` of size ``(Nv, Nu)``.

    Each detector pixel is weighted by ``D / sqrt(D² + a² + b²)`` where
    ``(a, b)`` are the physical offsets of the pixel from the *principal
    ray* — the cosine of the angle between the pixel's ray and the central
    ray (Feldkamp et al. 1984).  For a centred detector the principal ray
    pierces the panel centre; a lateral detector offset shifts the U
    offsets accordingly.
    """
    u = geometry.detector_u_mm()
    v = (np.arange(geometry.nv, dtype=np.float64) - (geometry.nv - 1) / 2.0) * geometry.dv
    uu, vv = np.meshgrid(u, v)
    d = geometry.sdd
    return (d / np.sqrt(d * d + uu * uu + vv * vv)).astype(DEFAULT_DTYPE)


# --------------------------------------------------------------------------- #
# Ramp filter construction
# --------------------------------------------------------------------------- #
def ramp_kernel_spatial(n_taps: int, tau: float) -> np.ndarray:
    """Band-limited ramp kernel ``h`` sampled at pitch ``tau`` (Kak & Slaney).

    Returns ``n_taps`` samples for offsets ``-n_taps//2 .. n_taps//2 - 1``
    arranged in FFT (wrap-around) order so it can be transformed directly.
    """
    if n_taps < 2:
        raise ValueError("n_taps must be >= 2")
    if tau <= 0:
        raise ValueError("tau must be positive")
    offsets = np.fft.fftfreq(n_taps, d=1.0 / n_taps)  # 0, 1, ..., -1 wrap order
    offsets = np.round(offsets).astype(np.int64)
    kernel = np.zeros(n_taps, dtype=np.float64)
    kernel[offsets == 0] = 1.0 / (4.0 * tau * tau)
    odd = (offsets % 2) != 0
    kernel[odd] = -1.0 / (np.pi * offsets[odd] * tau) ** 2
    return kernel


def _window(name: str, freqs: np.ndarray, nyquist: float) -> np.ndarray:
    """Apodization window evaluated at ``freqs`` (cycles/mm)."""
    ratio = np.clip(np.abs(freqs) / nyquist, 0.0, 1.0)
    if name == "ram-lak":
        return np.ones_like(ratio)
    if name == "shepp-logan":
        return np.sinc(ratio / 2.0)
    if name == "cosine":
        return np.cos(np.pi * ratio / 2.0)
    if name == "hamming":
        return 0.54 + 0.46 * np.cos(np.pi * ratio)
    if name == "hann":
        return 0.5 * (1.0 + np.cos(np.pi * ratio))
    raise ValueError(f"unknown ramp filter window {name!r}")


#: Names of the supported ramp-filter windows.
RAMP_FILTERS = ("ram-lak", "shepp-logan", "cosine", "hamming", "hann")


def ramp_filter_frequency_response(
    nu: int,
    tau: float,
    window: str = "ram-lak",
    *,
    pad_to: Optional[int] = None,
) -> np.ndarray:
    """Frequency response of the (windowed) ramp filter.

    Parameters
    ----------
    nu:
        Number of detector columns to be filtered.
    tau:
        Sample pitch (mm) of the detector row on the virtual detector.
    window:
        One of :data:`RAMP_FILTERS`.
    pad_to:
        FFT length; defaults to the next power of two ≥ ``2 * nu`` (linear,
        not circular, convolution).
    """
    if window not in RAMP_FILTERS:
        raise ValueError(f"unknown ramp filter window {window!r}; valid: {RAMP_FILTERS}")
    if pad_to is None:
        pad_to = 1 << int(np.ceil(np.log2(max(2 * nu, 2))))
    if pad_to < nu:
        raise ValueError("pad_to must be at least the row length")
    kernel = ramp_kernel_spatial(pad_to, tau)
    response = np.real(_fft.fft(kernel))
    freqs = np.fft.fftfreq(pad_to, d=tau)
    nyquist = 1.0 / (2.0 * tau)
    response = response * _window(window, freqs, nyquist)
    return response


def apply_ramp_filter(
    rows: np.ndarray,
    tau: float,
    window: str = "ram-lak",
    *,
    response: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Convolve rows (last axis) with the ramp filter via FFT.

    The result includes the ``τ`` factor of the discrete convolution
    (Riemann sum), so the output has units of the input divided by length.
    """
    rows = np.asarray(rows)
    nu = rows.shape[-1]
    if response is None:
        response = ramp_filter_frequency_response(nu, tau, window)
    pad_to = response.shape[0]
    spectrum = _fft.fft(rows, n=pad_to, axis=-1)
    filtered = np.real(_fft.ifft(spectrum * response, axis=-1))[..., :nu]
    return (filtered * tau).astype(rows.dtype if rows.dtype.kind == "f" else DEFAULT_DTYPE)


# --------------------------------------------------------------------------- #
# Algorithm 1
# --------------------------------------------------------------------------- #
def broadcast_redundancy_table(
    redundancy: np.ndarray, np_: int, nu: int
) -> np.ndarray:
    """Validate a per-projection redundancy-weight table for broadcasting.

    Acquisition scenarios (short-scan Parker weights, offset-detector
    virtual-full-fan weights) express ray redundancy as a float table of
    shape ``(Np, Nu)`` — one weight per (projection, detector column),
    constant along V.  The table multiplies the projections *before* the
    ramp filter, alongside the cosine weights.  Returns a ``(Np, 1, Nu)``
    float64 view ready to broadcast against a ``(Np, Nv, Nu)`` stack.
    """
    redundancy = np.asarray(redundancy, dtype=np.float64)
    if redundancy.shape != (np_, nu):
        raise ValueError(
            f"redundancy table shape {redundancy.shape} does not match "
            f"(Np, Nu) = ({np_}, {nu})"
        )
    return redundancy[:, None, :]


def filter_projections(
    stack: ProjectionStack,
    geometry: CBCTGeometry,
    window: str = "ram-lak",
    *,
    extra_scale: float = 1.0,
    redundancy: Optional[np.ndarray] = None,
) -> ProjectionStack:
    """Algorithm 1: cosine weighting followed by row-wise ramp filtering.

    ``extra_scale`` is an optional constant folded into the output (used by
    :func:`fdk_weight_and_filter` to absorb the FDK normalization).
    ``redundancy`` is an optional ``(Np, Nu)`` per-projection weight table
    (see :func:`broadcast_redundancy_table`) applied with the cosine
    weights — the hook acquisition scenarios use for Parker/short-scan and
    offset-detector ray-redundancy handling.
    """
    if stack.nu != geometry.nu or stack.nv != geometry.nv:
        raise ValueError(
            f"projection stack ({stack.nv}x{stack.nu}) does not match detector "
            f"({geometry.nv}x{geometry.nu})"
        )
    fcos = cosine_weight_table(geometry)
    # Virtual-detector pitch: detector pitch scaled back to the rotation axis.
    tau = geometry.du * geometry.sad / geometry.sdd
    response = ramp_filter_frequency_response(geometry.nu, tau, window)
    weighted = stack.data * fcos[None, :, :]
    if redundancy is not None:
        weighted = (
            weighted * broadcast_redundancy_table(redundancy, stack.np_, stack.nu)
        ).astype(DEFAULT_DTYPE, copy=False)
    filtered = apply_ramp_filter(weighted, tau, window, response=response)
    if extra_scale != 1.0:
        filtered = filtered * DEFAULT_DTYPE(extra_scale)
    return ProjectionStack(
        data=filtered.astype(DEFAULT_DTYPE, copy=False),
        angles=stack.angles.copy(),
        filtered=True,
    )


def fdk_normalization(geometry: CBCTGeometry) -> float:
    """The constant FDK scale ``d² · Δβ / 2``.

    The classical Feldkamp formula back-projects with weight ``d²/z²`` and
    integrates over the trajectory with measure ``dβ/2``.  Algorithm 2 /
    Algorithm 4 use ``Wdis = 1/z²``, so the remaining constant is folded into
    the filtered projections by :func:`fdk_weight_and_filter`.  ``Δβ`` is
    ``geometry.theta = angular_range / Np``, so sparse-view and short-scan
    geometries are normalized for their own angular sampling automatically
    (redundancy weights handle the rest of the short-scan bookkeeping).
    """
    return float(geometry.sad**2 * geometry.theta / 2.0)


def fdk_weight_and_filter(
    stack: ProjectionStack,
    geometry: CBCTGeometry,
    window: str = "ram-lak",
    *,
    redundancy: Optional[np.ndarray] = None,
) -> ProjectionStack:
    """Filtering stage with the FDK normalization folded in.

    Output projections ``Q`` are ready for the literal Algorithm 2/4
    back-projection: ``I(i,j,k) = Σ_s (1/z²) · interp2(Q_s, u, v)``.
    ``redundancy`` optionally applies a scenario's per-projection
    ray-redundancy table (Parker / offset-detector weights).
    """
    return filter_projections(
        stack, geometry, window,
        extra_scale=fdk_normalization(geometry),
        redundancy=redundancy,
    )


# --------------------------------------------------------------------------- #
# Stage wrapper and micro-benchmark (TH_flt)
# --------------------------------------------------------------------------- #
class FilteringStage:
    """A reusable filtering stage with cached tables.

    The distributed pipeline creates one instance per rank (the paper's
    Filtering-thread) and calls :meth:`__call__` for each projection or
    batch of projections it loads from the PFS.
    """

    def __init__(
        self,
        geometry: CBCTGeometry,
        window: str = "ram-lak",
        *,
        apply_fdk_scale: bool = True,
        backend: str = "reference",
        redundancy: Optional[np.ndarray] = None,
    ):
        if window not in RAMP_FILTERS:
            raise ValueError(f"unknown ramp filter window {window!r}")
        from ..backends import get_backend  # late import: backends import core

        self.geometry = geometry
        self.window = window
        self.apply_fdk_scale = apply_fdk_scale
        self._backend = get_backend(backend)
        self.backend = self._backend.name
        self._fcos = cosine_weight_table(geometry)
        self._tau = geometry.du * geometry.sad / geometry.sdd
        self._response = ramp_filter_frequency_response(geometry.nu, self._tau, window)
        self._scale = fdk_normalization(geometry) if apply_fdk_scale else 1.0
        # Whole-acquisition (Np, Nu) redundancy table; batches pick out
        # their rows via the `start` offset of __call__.
        self._redundancy = (
            None
            if redundancy is None
            else broadcast_redundancy_table(redundancy, geometry.np_, geometry.nu)
        )
        self.projections_filtered = 0

    def __call__(self, projections: np.ndarray, *, start: int = 0) -> np.ndarray:
        """Filter one projection ``(Nv, Nu)`` or a batch ``(n, Nv, Nu)``.

        When the stage carries a scenario redundancy table, ``start`` is the
        global index of the batch's first projection inside the acquisition
        (the streaming pipeline filters in projection order).
        """
        projections = np.asarray(projections, dtype=DEFAULT_DTYPE)
        squeeze = projections.ndim == 2
        if squeeze:
            projections = projections[None, ...]
        if projections.shape[-2:] != (self.geometry.nv, self.geometry.nu):
            raise ValueError(
                f"projection shape {projections.shape[-2:]} does not match detector "
                f"({self.geometry.nv}, {self.geometry.nu})"
            )
        weighted = projections * self._fcos[None, :, :]
        if self._redundancy is not None:
            stop = start + projections.shape[0]
            if not (0 <= start and stop <= self.geometry.np_):
                raise ValueError(
                    f"batch [{start}, {stop}) outside the acquisition's "
                    f"{self.geometry.np_} projections"
                )
            weighted = (weighted * self._redundancy[start:stop]).astype(
                DEFAULT_DTYPE, copy=False
            )
        filtered = self._backend.apply_filter(weighted, self._response, self._tau)
        if self._scale != 1.0:
            filtered = filtered * DEFAULT_DTYPE(self._scale)
        self.projections_filtered += projections.shape[0]
        result = filtered.astype(DEFAULT_DTYPE, copy=False)
        return result[0] if squeeze else result

    def filter_stack(self, stack: ProjectionStack) -> ProjectionStack:
        """Filter a whole :class:`ProjectionStack`."""
        return ProjectionStack(
            data=self(stack.data), angles=stack.angles.copy(), filtered=True
        )


def measure_filtering_throughput(
    geometry: CBCTGeometry,
    *,
    n_projections: int = 8,
    repeats: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Measure filtering throughput in projections/second (``TH_flt``).

    This is the micro-benchmark of Section 4.2.1 used to parameterize the
    performance model.  The measurement uses random projections because the
    filter cost is content independent.
    """
    rng = rng or np.random.default_rng(0)
    stage = FilteringStage(geometry)
    batch = rng.random(
        (n_projections, geometry.nv, geometry.nu), dtype=np.float32
    )
    stage(batch)  # warm-up (plan FFTs, allocate temporaries)
    best = np.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        stage(batch)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return n_projections / best
