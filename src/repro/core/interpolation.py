"""Sub-pixel interpolation primitives (Algorithm 3 of the paper).

The back-projection stage fetches detector values at non-integer ``(u, v)``
coordinates; the paper uses bilinear interpolation (Algorithm 3), which on
the GPU is serviced either by the texture unit or by explicit loads through
the L1 cache.  This module provides:

* :func:`interp2` — a literal, scalar transcription of Algorithm 3 (used by
  tests as the ground truth and by the warp-level GPU simulation).
* :func:`bilinear_interpolate` — a fully vectorized NumPy implementation with
  the same zero-padding boundary behaviour, used by all production code.
* :func:`trilinear_interpolate` — the 3-D analogue, used by the ray-marching
  forward projector and the iterative solvers.
"""

from __future__ import annotations

import numpy as np

try:  # scipy's compiled map_coordinates is the fast path; NumPy is the fallback.
    from scipy import ndimage as _ndimage
except ImportError:  # pragma: no cover - scipy is a hard dependency
    _ndimage = None

__all__ = [
    "interp2",
    "bilinear_interpolate",
    "bilinear_interpolate_numpy",
    "trilinear_interpolate",
    "trilinear_interpolate_numpy",
]


def interp2(image: np.ndarray, u: float, v: float) -> float:
    """Bilinear interpolation at a single sub-pixel coordinate (Algorithm 3).

    ``image`` is indexed ``image[v, u]`` (row = v, column = u), matching the
    detector storage convention ``(Nv, Nu)``.  Samples outside the image are
    treated as zero, which is what the CUDA kernels get from the texture
    unit in clamp-to-border mode and what RTK's CPU path does.
    """
    nv, nu = image.shape
    nu_i = int(np.floor(u))
    nv_i = int(np.floor(v))
    du = u - nu_i
    dv = v - nv_i

    def pixel(uu: int, vv: int) -> float:
        if 0 <= uu < nu and 0 <= vv < nv:
            return float(image[vv, uu])
        return 0.0

    t1 = pixel(nu_i, nv_i) * (1.0 - du) + pixel(nu_i + 1, nv_i) * du
    t2 = pixel(nu_i, nv_i + 1) * (1.0 - du) + pixel(nu_i + 1, nv_i + 1) * du
    return t1 * (1.0 - dv) + t2 * dv


def bilinear_interpolate(image: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Vectorized bilinear interpolation with zero padding outside the image.

    Uses :func:`scipy.ndimage.map_coordinates` (compiled, order-1 spline with
    constant boundary — exactly bilinear with zero padding) when SciPy is
    available, and falls back to :func:`bilinear_interpolate_numpy` otherwise.
    Both paths match :func:`interp2` to floating-point round-off.

    Parameters
    ----------
    image:
        2-D array indexed ``image[v, u]``.
    u, v:
        Arrays of sub-pixel coordinates (broadcast against each other).

    Returns
    -------
    np.ndarray
        Interpolated values with the broadcast shape of ``u`` and ``v`` and
        the dtype of ``image`` (promoted to at least float32).
    """
    if _ndimage is not None:
        image = np.asarray(image)
        if image.ndim != 2:
            raise ValueError(f"image must be 2-D, got shape {image.shape}")
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        u, v = np.broadcast_arrays(u, v)
        out_dtype = np.result_type(image.dtype, np.float32)
        coords = np.stack([v.ravel(), u.ravel()], axis=0)
        sampled = _ndimage.map_coordinates(
            image.astype(out_dtype, copy=False),
            coords,
            order=1,
            mode="grid-constant",
            cval=0.0,
            prefilter=False,
        )
        return sampled.reshape(u.shape).astype(out_dtype, copy=False)
    return bilinear_interpolate_numpy(image, u, v)


def bilinear_interpolate_numpy(
    image: np.ndarray, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Pure-NumPy bilinear interpolation (reference path for the fast one)."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D, got shape {image.shape}")
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    u, v = np.broadcast_arrays(u, v)

    nv, nu = image.shape
    u0 = np.floor(u).astype(np.intp)
    v0 = np.floor(v).astype(np.intp)
    du = (u - u0).astype(image.dtype if image.dtype.kind == "f" else np.float32)
    dv = (v - v0).astype(du.dtype)

    out_dtype = np.result_type(image.dtype, np.float32)

    def gather(uu: np.ndarray, vv: np.ndarray) -> np.ndarray:
        valid = (uu >= 0) & (uu < nu) & (vv >= 0) & (vv < nv)
        uu_c = np.clip(uu, 0, nu - 1)
        vv_c = np.clip(vv, 0, nv - 1)
        values = image[vv_c, uu_c].astype(out_dtype, copy=False)
        return np.where(valid, values, out_dtype.type(0))

    p00 = gather(u0, v0)
    p10 = gather(u0 + 1, v0)
    p01 = gather(u0, v0 + 1)
    p11 = gather(u0 + 1, v0 + 1)

    t1 = p00 * (1.0 - du) + p10 * du
    t2 = p01 * (1.0 - du) + p11 * du
    return (t1 * (1.0 - dv) + t2 * dv).astype(out_dtype, copy=False)


def trilinear_interpolate(
    volume: np.ndarray, x: np.ndarray, y: np.ndarray, z: np.ndarray
) -> np.ndarray:
    """Vectorized trilinear interpolation in a ``(Nz, Ny, Nx)`` volume.

    Coordinates are voxel indices: ``x`` along the last (contiguous) axis,
    ``y`` along the middle axis and ``z`` along the first axis.  Samples
    outside the volume contribute zero.  Uses SciPy's compiled
    ``map_coordinates`` when available.
    """
    if _ndimage is not None:
        volume = np.asarray(volume)
        if volume.ndim != 3:
            raise ValueError(f"volume must be 3-D, got shape {volume.shape}")
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        z = np.asarray(z, dtype=np.float64)
        x, y, z = np.broadcast_arrays(x, y, z)
        out_dtype = np.result_type(volume.dtype, np.float32)
        coords = np.stack([z.ravel(), y.ravel(), x.ravel()], axis=0)
        sampled = _ndimage.map_coordinates(
            volume.astype(out_dtype, copy=False),
            coords,
            order=1,
            mode="grid-constant",
            cval=0.0,
            prefilter=False,
        )
        return sampled.reshape(x.shape).astype(out_dtype, copy=False)
    return trilinear_interpolate_numpy(volume, x, y, z)


def trilinear_interpolate_numpy(
    volume: np.ndarray, x: np.ndarray, y: np.ndarray, z: np.ndarray
) -> np.ndarray:
    """Pure-NumPy trilinear interpolation (reference path for the fast one)."""
    volume = np.asarray(volume)
    if volume.ndim != 3:
        raise ValueError(f"volume must be 3-D, got shape {volume.shape}")
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    z = np.asarray(z, dtype=np.float64)
    x, y, z = np.broadcast_arrays(x, y, z)

    nz, ny, nx = volume.shape
    x0 = np.floor(x).astype(np.intp)
    y0 = np.floor(y).astype(np.intp)
    z0 = np.floor(z).astype(np.intp)
    fx = x - x0
    fy = y - y0
    fz = z - z0

    out_dtype = np.result_type(volume.dtype, np.float32)

    def gather(xi: np.ndarray, yi: np.ndarray, zi: np.ndarray) -> np.ndarray:
        valid = (
            (xi >= 0) & (xi < nx) & (yi >= 0) & (yi < ny) & (zi >= 0) & (zi < nz)
        )
        xi_c = np.clip(xi, 0, nx - 1)
        yi_c = np.clip(yi, 0, ny - 1)
        zi_c = np.clip(zi, 0, nz - 1)
        values = volume[zi_c, yi_c, xi_c].astype(out_dtype, copy=False)
        return np.where(valid, values, out_dtype.type(0))

    c000 = gather(x0, y0, z0)
    c100 = gather(x0 + 1, y0, z0)
    c010 = gather(x0, y0 + 1, z0)
    c110 = gather(x0 + 1, y0 + 1, z0)
    c001 = gather(x0, y0, z0 + 1)
    c101 = gather(x0 + 1, y0, z0 + 1)
    c011 = gather(x0, y0 + 1, z0 + 1)
    c111 = gather(x0 + 1, y0 + 1, z0 + 1)

    c00 = c000 * (1.0 - fx) + c100 * fx
    c10 = c010 * (1.0 - fx) + c110 * fx
    c01 = c001 * (1.0 - fx) + c101 * fx
    c11 = c011 * (1.0 - fx) + c111 * fx

    c0 = c00 * (1.0 - fy) + c10 * fy
    c1 = c01 * (1.0 - fy) + c11 * fy
    return (c0 * (1.0 - fz) + c1 * fz).astype(out_dtype, copy=False)
