"""Single-node FDK driver: filtering followed by back-projection.

This is the complete Feldkamp–Davis–Kress reconstruction (Section 2.2.2) as
one convenient entry point.  It is the building block used by:

* the quickstart example (reconstruct a phantom on one "node"),
* the distributed iFDK framework (each rank runs the same two stages on its
  share of projections and its slab of the volume), and
* the test-suite (single-node output is the reference the distributed output
  must match exactly).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .filtering import RAMP_FILTERS
from .geometry import CBCTGeometry
from .types import ProjectionStack, ReconstructionProblem, Volume

__all__ = ["FDKReconstructor", "FDKResult", "reconstruct_fdk"]


@dataclass
class FDKResult:
    """Output of a single-node FDK reconstruction with stage timings."""

    volume: Volume
    filter_seconds: float
    backprojection_seconds: float
    problem: ReconstructionProblem

    @property
    def total_seconds(self) -> float:
        return self.filter_seconds + self.backprojection_seconds

    @property
    def gups(self) -> float:
        """Back-projection throughput in giga-updates per second."""
        return self.problem.gups(max(self.backprojection_seconds, 1e-12))


@dataclass
class FDKReconstructor:
    """Configured FDK reconstruction pipeline.

    Parameters
    ----------
    geometry:
        Acquisition geometry (detector, trajectory and volume description).
    ramp_filter:
        One of :data:`repro.core.filtering.RAMP_FILTERS`.
    algorithm:
        Back-projection algorithm: ``"proposed"`` (Algorithm 4, default) or
        ``"standard"`` (Algorithm 2).
    z_range:
        Optional Z slab to reconstruct (used by the distributed framework).
    backend:
        Name of the :mod:`repro.backends` compute backend executing both hot
        paths (``reference``, ``vectorized``, ``blocked`` or ``parallel``);
        all backends are interchangeable per the conformance contract.
    workers:
        Optional worker-thread count for the ``parallel`` backend.  When
        given, the reconstructor owns a dedicated worker pool sized to this
        count (close it with :meth:`close` or a ``with`` block); requesting
        workers on any other backend raises :class:`ValueError`.  ``None``
        uses the shared registry backend as-is.
    scenario:
        Optional acquisition scenario (an
        :class:`~repro.scenarios.AcquisitionScenario` or preset name).
        ``geometry`` must already be the scenario-shaped geometry (see
        :meth:`AcquisitionScenario.apply_geometry`); the reconstructor adds
        the scenario's per-projection redundancy-weight table to the
        filtering stage.  ``None`` / ``"full_scan"`` is the seed's ideal
        full scan.
    """

    geometry: CBCTGeometry
    ramp_filter: str = "ram-lak"
    algorithm: str = "proposed"
    z_range: Optional[Tuple[int, int]] = None
    use_symmetry: bool = True
    backend: str = "reference"
    scenario: Optional[object] = None
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ramp_filter not in RAMP_FILTERS:
            raise ValueError(
                f"unknown ramp filter {self.ramp_filter!r}; valid: {RAMP_FILTERS}"
            )
        if self.algorithm not in ("proposed", "standard"):
            raise ValueError("algorithm must be 'proposed' or 'standard'")
        from ..backends import resolve_backend  # late import: backends import core

        self._backend = resolve_backend(self.backend, workers=self.workers)
        # A dedicated pool (explicit workers) is ours to tear down; shared
        # registry backends are left alone.
        self._owns_backend = self.workers is not None
        if self.scenario is None:
            self._redundancy = None
        else:
            from ..scenarios import get_scenario  # late: scenarios import core

            resolved = get_scenario(self.scenario)
            self.scenario = resolved
            self._redundancy = resolved.redundancy_weights(self.geometry)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_plan(cls, plan) -> "FDKReconstructor":
        """Build the reconstructor described by a declarative plan.

        The keyword constructor remains the convenient in-process surface;
        a :class:`~repro.api.ReconstructionPlan` is the canonical,
        serializable description it is now a shim over.  The plan's
        scenario is resolved and its geometry derived
        (:meth:`~repro.api.ReconstructionPlan.scenario_geometry`), so the
        reconstructor is ready for the scenario-shaped stack.
        """
        scenario = plan.resolved_scenario()
        return cls(
            geometry=plan.scenario_geometry(),
            ramp_filter=plan.ramp_filter,
            algorithm=plan.algorithm,
            backend=plan.backend,
            scenario=None if scenario.is_ideal else scenario,
            workers=plan.workers,
        )

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Join the worker pool of a dedicated ``parallel`` backend.

        Idempotent; a no-op for shared registry backends.  After closing, no
        thread started on this reconstructor's behalf remains alive (the
        ``run_spmd`` thread-accounting discipline).
        """
        if self._owns_backend:
            self._backend.close()

    def __enter__(self) -> "FDKReconstructor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def filter(self, stack: ProjectionStack) -> ProjectionStack:
        """Run the filtering stage (Algorithm 1 with FDK normalization).

        When a scenario is configured, its redundancy-weight table rides
        along into the backend's shared filtering driver.
        """
        return self._backend.filter_stack(
            stack, self.geometry, self.ramp_filter, redundancy=self._redundancy
        )

    def backproject(self, filtered: ProjectionStack) -> Volume:
        """Run the back-projection stage on already-filtered projections."""
        return self._backend.backproject(
            filtered,
            self.geometry,
            algorithm=self.algorithm,
            z_range=self.z_range,
            use_symmetry=self.use_symmetry,
        )

    def reconstruct(self, stack: ProjectionStack) -> FDKResult:
        """Full FDK reconstruction of a projection stack."""
        if stack.nu != self.geometry.nu or stack.nv != self.geometry.nv:
            raise ValueError(
                "projection stack does not match the configured detector size"
            )
        if stack.filtered and self._redundancy is not None:
            raise ValueError(
                f"scenario {self.scenario.name!r} applies redundancy weights "
                "in the filtering stage, but this stack is already filtered; "
                "filter raw projections through this reconstructor (or drop "
                "the scenario if the weights were already applied)"
            )
        problem = ReconstructionProblem(
            nu=self.geometry.nu,
            nv=self.geometry.nv,
            np_=stack.np_,
            nx=self.geometry.nx,
            ny=self.geometry.ny,
            nz=(self.z_range[1] - self.z_range[0]) if self.z_range else self.geometry.nz,
        )
        t0 = time.perf_counter()
        filtered = stack if stack.filtered else self.filter(stack)
        t1 = time.perf_counter()
        volume = self.backproject(filtered)
        t2 = time.perf_counter()
        return FDKResult(
            volume=volume,
            filter_seconds=t1 - t0,
            backprojection_seconds=t2 - t1,
            problem=problem,
        )


def reconstruct_fdk(
    stack: ProjectionStack,
    geometry: CBCTGeometry,
    *,
    ramp_filter: str = "ram-lak",
    algorithm: str = "proposed",
    backend: str = "reference",
    workers: Optional[int] = None,
) -> Volume:
    """One-call FDK reconstruction (filter + back-project)."""
    with FDKReconstructor(
        geometry=geometry, ramp_filter=ramp_filter, algorithm=algorithm,
        backend=backend, workers=workers,
    ) as reconstructor:
        return reconstructor.reconstruct(stack).volume
