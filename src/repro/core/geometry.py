"""Cone-beam CT (CBCT) geometry and projection matrices.

This module implements Section 2.2.1 and Section 3.2.1 of the paper: the
circular-trajectory cone-beam geometry (Figure 1), the projection-matrix
factorization ``P = M1 @ Mrot @ M0`` (Equation 2), and the closed-form
expression for the perspective divisor ``z`` (Equation 3, Theorem 3).

Coordinate conventions
----------------------

* **Voxel index space** — integer indices ``(i, j, k)`` along the volume
  axes ``X, Y, Z`` (Figure 1b).  Algorithm 2 stores the volume i-major
  (``[k, j, i]``); the proposed Algorithm 4 stores it k-major.
* **World (gantry-at-rest) space** — millimetres, origin at the volume
  centre ``O``, produced by ``M0``.
* **Camera space** — the rotating frame with the X-ray source at the
  origin and the optical axis pointing towards the detector, produced by
  ``Mrot``.  Its third coordinate is the perspective divisor ``z``.
* **Detector space** — pixel coordinates ``(u, v)`` on the flat-panel
  detector (FPD), produced by ``M1`` followed by the perspective divide.

All matrices are ``float64`` to keep the geometry exact; the imaging data
remains ``float32``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CBCTGeometry",
    "ProjectionMatrix",
    "make_projection_matrices",
    "default_geometry_for_problem",
]


@dataclass(frozen=True)
class CBCTGeometry:
    """Full description of a circular-trajectory CBCT acquisition (Table 1).

    Parameters
    ----------
    nu, nv:
        Detector width and height in pixels.
    np_:
        Number of projections over the full ``2π`` rotation.
    du, dv:
        Detector pixel pitch (mm/pixel) along U and V.
    sad:
        Source-to-axis distance ``d`` (mm): X-ray source to rotation axis.
    sdd:
        Source-to-detector distance ``D`` (mm): X-ray source to FPD centre.
    nx, ny, nz:
        Volume extent in voxels.
    dx, dy, dz:
        Voxel pitch (mm/voxel).
    angle_offset:
        Rotation angle of the first projection (radians).
    angular_range:
        Total angular span of the trajectory (radians).  The default ``2π``
        is the paper's full circular scan; an acquisition scenario (e.g.
        short-scan) narrows it, which changes the step angle ``θ`` and the
        FDK normalization consistently.
    detector_offset_u:
        Lateral shift (mm) of the flat-panel detector along its U axis.
        ``0`` centres the detector on the principal ray (the paper's
        geometry); an offset-detector scenario shifts the panel to extend
        the field of view with a half-fan acquisition.
    """

    nu: int
    nv: int
    np_: int
    du: float
    dv: float
    sad: float
    sdd: float
    nx: int
    ny: int
    nz: int
    dx: float
    dy: float
    dz: float
    angle_offset: float = 0.0
    angular_range: float = 2.0 * np.pi
    detector_offset_u: float = 0.0

    def __post_init__(self) -> None:
        for name in ("nu", "nv", "np_", "nx", "ny", "nz"):
            if int(getattr(self, name)) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("du", "dv", "sad", "sdd", "dx", "dy", "dz"):
            if float(getattr(self, name)) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.sdd < self.sad:
            raise ValueError(
                "source-to-detector distance (sdd) must be >= source-to-axis "
                "distance (sad)"
            )
        if not (0.0 < float(self.angular_range) <= 2.0 * np.pi + 1e-9):
            raise ValueError("angular_range must be in (0, 2π]")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def theta(self) -> float:
        """Rotation step angle ``θ = angular_range / Np`` (Table 1).

        For the paper's full circular scan this is the familiar ``2π/Np``;
        scenario geometries (short-scan, sparse-view) carry a different span
        or projection count and ``θ`` — hence the FDK Riemann measure —
        follows automatically.
        """
        return self.angular_range / self.np_

    @property
    def magnification(self) -> float:
        """Geometric magnification ``D / d`` at the rotation axis."""
        return self.sdd / self.sad

    @property
    def angles(self) -> np.ndarray:
        """Gantry angles ``β_i = offset + i·θ`` for all projections."""
        return self.angle_offset + np.arange(self.np_) * self.theta

    @property
    def volume_shape(self) -> Tuple[int, int, int]:
        """Volume shape in the ``(Nz, Ny, Nx)`` storage order."""
        return (self.nz, self.ny, self.nx)

    @property
    def detector_shape(self) -> Tuple[int, int]:
        """Detector shape as ``(Nv, Nu)``."""
        return (self.nv, self.nu)

    @property
    def voxel_pitch(self) -> Tuple[float, float, float]:
        return (self.dx, self.dy, self.dz)

    @property
    def fan_angle(self) -> float:
        """Half fan angle ``Δ`` (radians) subtended by the detector.

        The angle between the central ray and the ray through the farthest
        detector-column centre, measured at the source.  This is the ``Δ``
        of the minimal short-scan range ``π + 2Δ`` and the bound on the
        per-ray fan angle ``γ`` used by the Parker redundancy weights.
        """
        half_width = 0.5 * (self.nu - 1) * self.du
        far_edge = half_width + abs(self.detector_offset_u)
        return float(np.arctan2(far_edge, self.sdd))

    @property
    def short_scan_span(self) -> float:
        """Minimal short-scan angular range ``π + 2Δ`` (radians)."""
        return float(np.pi + 2.0 * self.fan_angle)

    def detector_u_mm(self) -> np.ndarray:
        """Physical U offsets (mm) of the detector columns from the principal ray.

        With a centred detector these are symmetric around zero; a lateral
        ``detector_offset_u`` shifts the whole axis.  The fan angle of the
        ray through column ``i`` is ``arctan(u_mm[i] / sdd)``.
        """
        return (
            np.arange(self.nu, dtype=np.float64) - (self.nu - 1) / 2.0
        ) * self.du + self.detector_offset_u

    def fov_radius(self) -> float:
        """Radius (mm) of the cylindrical field of view covered by the fan.

        A point at distance ``r`` from the rotation axis stays inside the
        projection of the detector for all angles when
        ``r <= d * sin(arctan(half_width / D))``.  An offset detector with a
        full rotation extends coverage to the far edge of the shifted panel
        (each point only needs to be seen over half the turn).
        """
        half_width = 0.5 * (self.nu - 1) * self.du + abs(self.detector_offset_u)
        return self.sad * np.sin(np.arctan2(half_width, self.sdd))

    def problem(self) -> "ReconstructionProblem":
        """The :class:`~repro.core.types.ReconstructionProblem` this
        acquisition and volume describe (``Nu x Nv x Np -> Nx x Ny x Nz``)."""
        from .types import ReconstructionProblem  # late: types is a leaf module

        return ReconstructionProblem(
            nu=self.nu, nv=self.nv, np_=self.np_,
            nx=self.nx, ny=self.ny, nz=self.nz,
        )

    def with_detector(self, nu: int, nv: int) -> "CBCTGeometry":
        """Return a copy with a different detector size (pitch preserved)."""
        return replace(self, nu=int(nu), nv=int(nv))

    def with_volume(self, nx: int, ny: int, nz: int) -> "CBCTGeometry":
        """Return a copy with a different volume size (pitch preserved)."""
        return replace(self, nx=int(nx), ny=int(ny), nz=int(nz))

    # ------------------------------------------------------------------ #
    # Transformation matrices (Equation 2)
    # ------------------------------------------------------------------ #
    def matrix_m0(self) -> np.ndarray:
        """Voxel index -> world (mm) transform ``M0`` (4x4).

        ``M0`` centres the index grid on the volume centre and scales by the
        voxel pitch.  The J and K axes are mirrored exactly as in the paper
        so that the detector V axis points "down" in the usual radiographic
        convention.
        """
        scale = np.diag([self.dx, self.dy, self.dz, 1.0])
        center = np.array(
            [
                [1.0, 0.0, 0.0, -(self.nx - 1) / 2.0],
                [0.0, -1.0, 0.0, (self.ny - 1) / 2.0],
                [0.0, 0.0, -1.0, (self.nz - 1) / 2.0],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        return scale @ center

    def matrix_mrot(self, beta: float) -> np.ndarray:
        """World -> camera transform ``Mrot`` (4x4) at gantry angle ``beta``.

        First rotates the world by ``beta`` around the Z axis, then swaps
        axes so that the third camera coordinate points from the source
        towards the detector and translates by the source-to-axis distance
        ``d`` — making the source the origin of camera space.
        """
        c, s = np.cos(beta), np.sin(beta)
        rot_z = np.array(
            [
                [c, -s, 0.0, 0.0],
                [s, c, 0.0, 0.0],
                [0.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        swap = np.array(
            [
                [1.0, 0.0, 0.0, 0.0],
                [0.0, 0.0, -1.0, 0.0],
                [0.0, 1.0, 0.0, self.sad],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        return swap @ rot_z

    def matrix_m1(self) -> np.ndarray:
        """Camera -> detector homogeneous transform ``M1`` (4x4).

        Applies the pinhole projection with focal length ``D`` and converts
        millimetres on the detector to pixel coordinates.  With a centred
        detector the principal ray lands on pixel ``((Nu-1)/2, (Nv-1)/2)``;
        a lateral ``detector_offset_u`` (mm) moves the principal point the
        other way in pixel coordinates.
        """
        to_pixels = np.diag([1.0 / self.du, 1.0 / self.dv, 1.0, 1.0])
        principal_u_mm = (self.nu - 1) * self.du / 2.0 - self.detector_offset_u
        pinhole = np.array(
            [
                [self.sdd, 0.0, principal_u_mm, 0.0],
                [0.0, self.sdd, (self.nv - 1) * self.dv / 2.0, 0.0],
                [0.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )
        return to_pixels @ pinhole

    def projection_matrix(self, beta: float) -> "ProjectionMatrix":
        """The 3x4 projection matrix ``P`` at gantry angle ``beta`` (Eq. 2)."""
        p_hat = self.matrix_m1() @ self.matrix_mrot(beta) @ self.matrix_m0()
        return ProjectionMatrix(matrix=p_hat[:3, :], beta=float(beta), geometry=self)

    def projection_matrices(self, angles: Optional[Sequence[float]] = None):
        """Projection matrices for ``angles`` (defaults to :attr:`angles`)."""
        if angles is None:
            angles = self.angles
        return [self.projection_matrix(float(b)) for b in angles]

    # ------------------------------------------------------------------ #
    # Closed-form divisor (Equation 3 / Theorem 3)
    # ------------------------------------------------------------------ #
    def perspective_divisor(self, beta: float, i, j) -> np.ndarray:
        """The divisor ``z`` of Equation 3 for voxel column ``(i, j)``.

        Theorem 3: for a fixed gantry angle, ``z`` depends only on ``(i, j)``
        — it is constant along the Z axis of the volume.  This is the key
        property exploited by Algorithm 4 to hoist the reciprocal and the
        ``u`` coordinate out of the innermost loop.
        """
        i = np.asarray(i, dtype=np.float64)
        j = np.asarray(j, dtype=np.float64)
        return (
            self.sad
            + np.sin(beta) * (i - (self.nx - 1) / 2.0) * self.dx
            - np.cos(beta) * (j - (self.ny - 1) / 2.0) * self.dy
        )


@dataclass(frozen=True)
class ProjectionMatrix:
    """A 3x4 projection matrix ``P`` plus the geometry it was derived from.

    The matrix maps a homogeneous voxel index ``[i, j, k, 1]`` to
    homogeneous detector coordinates ``[x, y, z]`` with ``u = x / z`` and
    ``v = y / z`` (Equation 1).
    """

    matrix: np.ndarray
    beta: float
    geometry: CBCTGeometry

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix, dtype=np.float64)
        if m.shape != (3, 4):
            raise ValueError(f"projection matrix must be 3x4, got {m.shape}")
        object.__setattr__(self, "matrix", m)

    # ------------------------------------------------------------------ #
    def project(self, i, j, k) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project voxel indices to detector coordinates.

        Returns ``(u, v, z)`` where ``z`` is the perspective divisor.  All
        inputs broadcast against each other.
        """
        i = np.asarray(i, dtype=np.float64)
        j = np.asarray(j, dtype=np.float64)
        k = np.asarray(k, dtype=np.float64)
        p = self.matrix
        x = p[0, 0] * i + p[0, 1] * j + p[0, 2] * k + p[0, 3]
        y = p[1, 0] * i + p[1, 1] * j + p[1, 2] * k + p[1, 3]
        z = p[2, 0] * i + p[2, 1] * j + p[2, 2] * k + p[2, 3]
        return x / z, y / z, z

    def project_homogeneous(self, points: np.ndarray) -> np.ndarray:
        """Apply ``P`` to an ``(n, 4)`` array of homogeneous voxel indices."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 4:
            raise ValueError("points must have shape (n, 4)")
        return points @ self.matrix.T

    # ------------------------------------------------------------------ #
    # Camera-model accessors (used by the forward projector)
    # ------------------------------------------------------------------ #
    @property
    def camera_center(self) -> np.ndarray:
        """Source position in voxel-index coordinates (null space of ``P``)."""
        m = self.matrix[:, :3]
        p4 = self.matrix[:, 3]
        return -np.linalg.solve(m, p4)

    def ray_direction(self, u, v) -> np.ndarray:
        """Back-projected ray directions (voxel-index space) for pixels.

        Returns an array of shape ``broadcast(u, v).shape + (3,)`` whose rows
        are (unnormalized) directions from the source through detector pixel
        ``(u, v)``.
        """
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        u, v = np.broadcast_arrays(u, v)
        m_inv = np.linalg.inv(self.matrix[:, :3])
        pix = np.stack([u, v, np.ones_like(u)], axis=-1)
        return pix @ m_inv.T

    def distance_weight(self, z: np.ndarray) -> np.ndarray:
        """FDK distance weight ``(d / z)^2``.

        Algorithm 2 line 8 uses ``f^2`` with ``f = 1/z``; the additional
        ``d^2`` factor is the constant part of the classical FDK weight
        ``d^2 / U^2`` and only rescales the volume globally.  Keeping it here
        makes the reconstruction quantitatively comparable to the phantom.
        """
        d = self.geometry.sad
        return (d / np.asarray(z)) ** 2


def make_projection_matrices(geometry: CBCTGeometry) -> np.ndarray:
    """Stack all projection matrices into an ``(Np, 3, 4)`` float64 array."""
    return np.stack([pm.matrix for pm in geometry.projection_matrices()], axis=0)


def default_geometry_for_problem(
    nu: int,
    nv: int,
    np_: int,
    nx: int,
    ny: int,
    nz: int,
    *,
    sad_factor: float = 3.0,
    magnification: float = 1.5,
) -> CBCTGeometry:
    """A sensible default geometry for an ``Nu x Nv x Np -> Nx x Ny x Nz`` problem.

    The detector pitch is chosen so the (magnified) volume projects inside
    the detector with a small margin, and the source-to-axis distance is
    ``sad_factor`` times the volume half-extent so the cone angle stays
    moderate — the regime in which FDK is quantitatively accurate.
    """
    dx = dy = dz = 1.0
    half_extent = 0.5 * max(nx * dx, ny * dy, nz * dz)
    sad = sad_factor * max(half_extent, 1.0)
    sdd = magnification * sad
    # The farthest voxel corner is at radius sqrt(3) * half_extent; its
    # projection must fit on the detector with ~5% margin.
    radius = np.sqrt(2.0) * half_extent
    max_mag = sdd / max(sad - radius, 1e-6)
    du = 2.05 * half_extent * max_mag / nu
    dv = 2.05 * half_extent * max_mag / nv
    return CBCTGeometry(
        nu=nu, nv=nv, np_=np_,
        du=du, dv=dv,
        sad=sad, sdd=sdd,
        nx=nx, ny=ny, nz=nz,
        dx=dx, dy=dy, dz=dz,
    )
