"""Cone-beam forward projection.

The paper synthesizes its input data by forward-projecting the Shepp-Logan
phantom with RTK's forward-projection tool (Section 5.1).  This module plays
that role and additionally provides the discrete forward operator needed by
the iterative solvers (Section 6.2: ART, SART, MLEM, MBIR all re-use the
same projection geometry).

Two projectors are provided:

* :func:`forward_project_analytic` — exact cone-beam line integrals of an
  :class:`~repro.core.phantom.EllipsoidPhantom`.  Because the integrals are
  closed-form, this is the gold standard for validating both the geometry
  and the FDK reconstruction quality.
* :func:`forward_project_volume` — a ray-marching projector through an
  arbitrary rasterized volume with trilinear sampling.  This is the matched
  forward operator ``A`` used by the iterative reconstruction methods.

Both projectors derive the source position and per-pixel ray directions
directly from the 3x4 projection matrices (the camera model), so they are
consistent with the back-projection stage by construction.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .geometry import CBCTGeometry, ProjectionMatrix
from .interpolation import trilinear_interpolate
from .phantom import EllipsoidPhantom
from .types import DEFAULT_DTYPE, ProjectionStack, Volume

__all__ = [
    "forward_project_analytic",
    "forward_project_volume",
    "detector_pixel_grid",
    "apply_poisson_gaussian_noise",
]


def detector_pixel_grid(geometry: CBCTGeometry):
    """Meshgrid of detector pixel coordinates ``(u, v)``, each ``(Nv, Nu)``."""
    u = np.arange(geometry.nu, dtype=np.float64)
    v = np.arange(geometry.nv, dtype=np.float64)
    uu, vv = np.meshgrid(u, v)
    return uu, vv


def _physical_direction_norm(
    geometry: CBCTGeometry, directions_index: np.ndarray
) -> np.ndarray:
    """Norm (mm) of index-space direction vectors.

    A step of one unit in index space along axis i/j/k corresponds to a
    physical step of ``dx``/``dy``/``dz`` millimetres (the sign flips of M0
    do not change lengths).
    """
    scale = np.array([geometry.dx, geometry.dy, geometry.dz])
    return np.sqrt(np.einsum("...d,...d->...", directions_index * scale, directions_index * scale))


def _index_to_normalized(geometry: CBCTGeometry, points_index: np.ndarray) -> np.ndarray:
    """Map voxel-index coordinates to the phantom's normalized ``[-1, 1]^3`` frame."""
    centers = np.array(
        [
            (geometry.nx - 1) / 2.0,
            (geometry.ny - 1) / 2.0,
            (geometry.nz - 1) / 2.0,
        ]
    )
    half = np.array([geometry.nx / 2.0, geometry.ny / 2.0, geometry.nz / 2.0])
    return (points_index - centers) / half


def forward_project_analytic(
    phantom: EllipsoidPhantom,
    geometry: CBCTGeometry,
    angles: Optional[Sequence[float]] = None,
) -> ProjectionStack:
    """Exact cone-beam projections of an ellipsoid phantom.

    The phantom is assumed to fill the volume's normalized cube, i.e. its
    normalized coordinates map onto voxel indices exactly as
    :meth:`EllipsoidPhantom.rasterize` does.  The returned projection values
    are line integrals in millimetres of path length times phantom density.
    """
    if angles is None:
        angles = geometry.angles
    matrices = geometry.projection_matrices(angles)
    uu, vv = detector_pixel_grid(geometry)
    data = np.empty((len(matrices), geometry.nv, geometry.nu), dtype=DEFAULT_DTYPE)

    half = np.array([geometry.nx / 2.0, geometry.ny / 2.0, geometry.nz / 2.0])
    for idx, pm in enumerate(matrices):
        source_index = pm.camera_center
        directions_index = pm.ray_direction(uu, vv).reshape(-1, 3)
        origin_norm = _index_to_normalized(geometry, source_index)
        directions_norm = directions_index / half
        integrals_norm = phantom.line_integrals(
            np.broadcast_to(origin_norm, directions_norm.shape), directions_norm
        )
        # Convert chord length from the normalized frame to millimetres:
        # along a fixed ray the two frames are related by a constant ratio.
        norm_normalized = np.sqrt(
            np.einsum("...d,...d->...", directions_norm, directions_norm)
        )
        norm_physical = _physical_direction_norm(geometry, directions_index)
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(norm_normalized > 0, norm_physical / norm_normalized, 0.0)
        data[idx] = (integrals_norm * scale).reshape(geometry.nv, geometry.nu)

    return ProjectionStack(data=data, angles=np.asarray(list(angles), dtype=np.float64))


def apply_poisson_gaussian_noise(
    stack: ProjectionStack,
    *,
    photons: float = 1.0e5,
    electronic_sigma: float = 5.0,
    attenuation_scale: float = 1.0,
    seed: int = 0,
) -> ProjectionStack:
    """Photon-counting + electronic-noise forward model for line integrals.

    Physical CBCT projections are log-transformed photon counts, not clean
    line integrals.  This routine runs the measurement model on an ideal
    stack ``p`` (line integrals, mm·density):

    1. expected counts ``λ = N₀ · exp(−μ·p)`` with ``μ = attenuation_scale``
       (Beer–Lambert; the scale converts the phantom's arbitrary density
       units into attenuation per mm),
    2. a Poisson draw per detector pixel (quantum noise),
    3. additive Gaussian electronic noise of ``electronic_sigma`` counts,
    4. the log transform back to line integrals,
       ``p̂ = −ln(max(counts, 1)/N₀)/μ`` — counts are floored at one photon,
       the usual guard against photon starvation.

    The draw is fully determined by ``seed`` (a fresh
    ``numpy.random.default_rng``), so a scenario's noisy stack is
    reproducible across runs, machines and compute backends.
    """
    if photons <= 0:
        raise ValueError("photons must be positive")
    if electronic_sigma < 0:
        raise ValueError("electronic_sigma must be non-negative")
    if attenuation_scale <= 0:
        raise ValueError("attenuation_scale must be positive")
    rng = np.random.default_rng(seed)
    p = stack.data.astype(np.float64)
    # Clip the exponent so λ stays inside the Poisson sampler's int64 range
    # (negative integrals can occur on synthetic/noise-only stacks).
    attenuation = np.clip(attenuation_scale * p, -20.0, 50.0)
    lam = photons * np.exp(-attenuation)
    counts = rng.poisson(lam).astype(np.float64)
    if electronic_sigma > 0:
        counts += rng.normal(0.0, electronic_sigma, counts.shape)
    counts = np.maximum(counts, 1.0)
    noisy = -np.log(counts / photons) / attenuation_scale
    return ProjectionStack(
        data=noisy.astype(DEFAULT_DTYPE),
        angles=stack.angles.copy(),
        filtered=stack.filtered,
    )


def _ray_box_intersection(
    origins: np.ndarray,
    directions: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
):
    """Slab-method intersection of rays with an axis-aligned box.

    Returns ``(t_near, t_far)`` clipped so that ``t_near <= t_far`` means the
    ray crosses the box.  ``origins`` broadcasts against ``directions``
    (shape ``(..., 3)``).
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = np.where(directions != 0.0, 1.0 / directions, np.inf)
    t0 = (lo - origins) * inv
    t1 = (hi - origins) * inv
    t_near = np.maximum.reduce(np.minimum(t0, t1), axis=-1)
    t_far = np.minimum.reduce(np.maximum(t0, t1), axis=-1)
    return t_near, t_far


def forward_project_volume(
    volume: Volume,
    geometry: CBCTGeometry,
    angles: Optional[Sequence[float]] = None,
    *,
    step_mm: Optional[float] = None,
) -> ProjectionStack:
    """Ray-marching cone-beam projection of a rasterized volume.

    Parameters
    ----------
    volume:
        The ``(Nz, Ny, Nx)`` volume to project.  Its extents must match the
        geometry's ``nx/ny/nz``.
    geometry:
        Acquisition geometry.
    angles:
        Gantry angles to project at (defaults to the geometry's full sweep).
    step_mm:
        Sampling step along each ray in millimetres.  Defaults to half the
        smallest voxel pitch (a common choice that keeps the discretization
        error well below the interpolation error).
    """
    if volume.shape != geometry.volume_shape:
        raise ValueError(
            f"volume shape {volume.shape} does not match geometry "
            f"{geometry.volume_shape}"
        )
    if angles is None:
        angles = geometry.angles
    if step_mm is None:
        step_mm = 0.5 * min(geometry.dx, geometry.dy, geometry.dz)
    if step_mm <= 0:
        raise ValueError("step_mm must be positive")

    matrices = geometry.projection_matrices(angles)
    uu, vv = detector_pixel_grid(geometry)
    data = np.zeros((len(matrices), geometry.nv, geometry.nu), dtype=DEFAULT_DTYPE)

    lo = np.array([-0.5, -0.5, -0.5])
    hi = np.array(
        [geometry.nx - 0.5, geometry.ny - 0.5, geometry.nz - 0.5]
    )

    vol_data = volume.data
    for idx, pm in enumerate(matrices):
        source_index = pm.camera_center
        directions_index = pm.ray_direction(uu, vv).reshape(-1, 3)
        norm_physical = _physical_direction_norm(geometry, directions_index)
        t_near, t_far = _ray_box_intersection(
            source_index[None, :], directions_index, lo, hi
        )
        t_near = np.maximum(t_near, 0.0)
        span = np.maximum(t_far - t_near, 0.0)
        # Parameter-space step that corresponds to `step_mm` physically.
        with np.errstate(divide="ignore", invalid="ignore"):
            dt = np.where(norm_physical > 0, step_mm / norm_physical, 0.0)
        n_steps = int(np.ceil(np.max(np.where(dt > 0, span / np.maximum(dt, 1e-30), 0.0)))) if span.size else 0
        if n_steps == 0:
            continue
        accum = np.zeros(directions_index.shape[0], dtype=np.float64)
        # Midpoint rule along each ray; rays shorter than the longest simply
        # stop contributing once their parameter leaves [t_near, t_far].
        for step in range(n_steps):
            t = t_near + (step + 0.5) * dt
            active = t < t_far
            if not np.any(active):
                break
            pts = source_index[None, :] + t[:, None] * directions_index
            samples = trilinear_interpolate(
                vol_data, pts[:, 0], pts[:, 1], pts[:, 2]
            )
            accum += np.where(active, samples, 0.0)
        data[idx] = (accum * step_mm).reshape(geometry.nv, geometry.nu)

    return ProjectionStack(data=data, angles=np.asarray(list(angles), dtype=np.float64))
