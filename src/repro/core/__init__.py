"""Core algorithms of the iFDK reproduction.

This package contains the paper's primary contribution — the FDK filtering
and back-projection algorithms (standard and proposed variants) — together
with the geometry, phantom, forward-projection and metric utilities needed
to exercise them end-to-end.
"""

from .backprojection import (
    BackProjector,
    OperationCounts,
    backproject_proposed,
    backproject_standard,
    operation_counts,
    projection_compute_reduction,
)
from .fdk import FDKReconstructor, FDKResult, reconstruct_fdk
from .iterative import IterativeResult, art, mlem, osem, sart, sirt
from .filtering import (
    RAMP_FILTERS,
    FilteringStage,
    cosine_weight_table,
    fdk_weight_and_filter,
    filter_projections,
)
from .forward import (
    apply_poisson_gaussian_noise,
    forward_project_analytic,
    forward_project_volume,
)
from .geometry import (
    CBCTGeometry,
    ProjectionMatrix,
    default_geometry_for_problem,
    make_projection_matrices,
)
from .interpolation import bilinear_interpolate, interp2, trilinear_interpolate
from .metrics import gups, normalized_cross_correlation, psnr, rmse
from .phantom import (
    Ellipsoid,
    EllipsoidPhantom,
    point_grid_phantom,
    shepp_logan_2d,
    shepp_logan_3d,
    shepp_logan_ellipsoids,
    uniform_sphere_phantom,
)
from .symmetry import SymmetryReport, verify_geometry_symmetry
from .types import (
    DEFAULT_DTYPE,
    ProjectionStack,
    ReconstructionProblem,
    Volume,
    problem_from_string,
)

__all__ = [
    "BackProjector",
    "CBCTGeometry",
    "IterativeResult",
    "art",
    "mlem",
    "osem",
    "sart",
    "sirt",
    "DEFAULT_DTYPE",
    "Ellipsoid",
    "EllipsoidPhantom",
    "FDKReconstructor",
    "FDKResult",
    "FilteringStage",
    "OperationCounts",
    "ProjectionMatrix",
    "ProjectionStack",
    "RAMP_FILTERS",
    "ReconstructionProblem",
    "SymmetryReport",
    "Volume",
    "apply_poisson_gaussian_noise",
    "backproject_proposed",
    "backproject_standard",
    "bilinear_interpolate",
    "cosine_weight_table",
    "default_geometry_for_problem",
    "fdk_weight_and_filter",
    "filter_projections",
    "forward_project_analytic",
    "forward_project_volume",
    "gups",
    "interp2",
    "make_projection_matrices",
    "normalized_cross_correlation",
    "operation_counts",
    "point_grid_phantom",
    "problem_from_string",
    "projection_compute_reduction",
    "psnr",
    "reconstruct_fdk",
    "rmse",
    "shepp_logan_2d",
    "shepp_logan_3d",
    "shepp_logan_ellipsoids",
    "trilinear_interpolate",
    "uniform_sphere_phantom",
    "verify_geometry_symmetry",
]
