"""repro — reproduction of iFDK (SC'19).

``repro`` is a production-quality Python library reproducing *"iFDK: A
Scalable Framework for Instant High-resolution Image Reconstruction"*
(Chen, Wahib, Takizawa, Takano, Matsuoka — SC 2019).

Sub-packages
------------

``repro.core``
    The FDK algorithms: geometry, phantoms, forward projection, filtering
    (Algorithm 1), the standard and proposed back-projection algorithms
    (Algorithms 2 and 4), iterative solvers and quality metrics.
``repro.backends``
    Pluggable compute backends for the hot paths (``reference``,
    ``vectorized``, ``blocked``), proven interchangeable by the
    cross-backend conformance suite.
``repro.gpusim``
    A simulated GPU substrate: device model, memory tracking, warp/shuffle
    semantics and the five back-projection kernel variants of Table 3 with
    an analytic throughput model (Table 4).
``repro.mpi``
    An in-process MPI substrate: SPMD engine, collectives and the 2-D rank
    grid used by the distributed framework, plus a collective cost model.
``repro.pfs``
    A simulated parallel file system (GPFS-like) with striping and
    bandwidth modelling.
``repro.pipeline``
    The iFDK distributed framework: problem decomposition, the three-thread
    pipeline, the end-to-end driver and the Eq. 8–19 performance model.
``repro.bench``
    Workload definitions and reporting helpers shared by the benchmark
    harness that regenerates every table and figure of the paper.
``repro.service``
    Reconstruction-as-a-service: multi-tenant job queue with admission
    control, SLO-aware GPU cluster scheduling over the performance model,
    and a content-keyed cache of filtered projections.
``repro.scenarios``
    Acquisition scenarios: declarative short-scan, offset-detector,
    sparse-view and noisy protocols with redundancy weighting, locked
    down by the scenario × backend conformance matrix.
``repro.streaming``
    Chunked streaming reconstruction: the ``ProjectionChunkSource``
    protocol (in-memory, PFS-backed and online circular-buffer sources)
    and the ``StreamingReconstructor`` that pipelines per-chunk filtering
    into accumulation under an explicit memory budget — bit-identical to
    the whole-stack path on every backend.
``repro.obs``
    Unified observability: the ambient span tracer and metrics registry
    the backends, pipeline and service are instrumented against, run
    reports, and the Chrome-trace / JSON-lines / summary exporters behind
    ``--trace-out`` and ``repro report``.
``repro.api``
    The public front door: the declarative, serializable
    :class:`~repro.api.ReconstructionPlan` (one canonical description of
    a reconstruction, with a stable content hash) and the
    :class:`~repro.api.Session` executor that compiles a plan onto the
    FDK, iFDK or service path and returns a unified result.
``repro.analysis``
    Static analysis and dynamic sanitizers for the project's invariants:
    the ``repro lint`` AST passes (lock discipline, spawn safety,
    determinism, dtype discipline, error contracts) and the opt-in
    lock-order sanitizer behind ``REPRO_LOCK_SANITIZER=1``.
"""

from . import (
    analysis,
    api,
    backends,
    bench,
    core,
    gpusim,
    mpi,
    obs,
    pfs,
    pipeline,
    scenarios,
    service,
    streaming,
)
from .api import ReconstructionPlan, RunResult, Session

__version__ = "1.6.0"

__all__ = [
    "ReconstructionPlan",
    "RunResult",
    "Session",
    "analysis",
    "api",
    "backends",
    "bench",
    "core",
    "gpusim",
    "mpi",
    "obs",
    "pfs",
    "pipeline",
    "scenarios",
    "service",
    "streaming",
    "__version__",
]
