"""The ``parallel`` backend: multicore tiled execution of the blocked plan.

The ``blocked`` backend already decomposes every hot path into independent,
bounded units of work — ``(z, y)`` volume tiles for back-projection and
detector-row blocks for filtering.  This backend executes those *same*
units across a persistent pool of worker threads: the block kernels spend
their time in NumPy primitives that release the GIL (ufunc arithmetic,
``take`` gathers, real FFTs), so plain threads scale the tile loop across
cores without any change to the arithmetic.

Deterministic by construction
-----------------------------

Concurrency never touches the numerics:

* every worker owns a statically-assigned, *disjoint* subset of the tile
  plan (``tiles[w::workers]``) and writes only its own ``(z, y)`` region of
  one preallocated output volume — there is no shared accumulation, no
  reduction, and therefore no dependence on scheduling order;
* within each tile the per-projection accumulation order is the sequential
  stack order, exactly as ``blocked`` executes it;
* row-blocked rfft filtering writes disjoint row ranges of a preallocated
  output, and each row's transform is independent of how rows are grouped.

The result is **bit-identical** to ``blocked`` (hence to ``vectorized``)
for *every* worker count, every tile refinement and every run — asserted by
``tests/test_backend_conformance.py`` and ``tests/test_parallel_determinism.py``.

Thread hygiene
--------------

The pool starts lazily on first dispatch and its threads are named
``repro-parallel-*`` so they can be accounted for (the ``run_spmd``
discipline: every thread this package starts must be joinable and
attributable).  :meth:`ParallelBackend.close` joins all workers; a closed
pool restarts lazily on the next dispatch, so closing a shared registry
instance is always safe.  ``FDKReconstructor(..., workers=N)`` owns a
dedicated backend and closes it on teardown.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.geometry import CBCTGeometry
from ..core.types import DEFAULT_DTYPE, ProjectionStack, Volume
from ..obs import get_tracer
from .base import ComputeBackend, VolumeAccumulator
from .blocked import DEFAULT_BYTE_BUDGET, plan_tiles
from .vectorized import _BLOCK_KERNELS, _index_grids, rfft_ramp_filter

__all__ = [
    "ParallelBackend",
    "WorkerPool",
    "default_workers",
    "partition_tiles",
    "refine_tiles",
]

#: Thread-name prefix of every pool worker (leak checks grep for this).
WORKER_THREAD_PREFIX = "repro-parallel"


def default_workers() -> int:
    """Worker count when none is given: ``REPRO_PARALLEL_WORKERS`` or cores.

    The environment override is how CI forces a fixed pool width (the
    ``parallel-conformance`` job runs the whole matrix with 4 workers on
    whatever runner it lands on); without it the count follows the host,
    capped at 4 — the tile kernels are memory-bandwidth-bound beyond that.
    """
    env = os.environ.get("REPRO_PARALLEL_WORKERS")
    if env is not None:
        try:
            workers = int(env)
        except ValueError:
            workers = 0
        if workers < 1:
            raise ValueError(
                f"REPRO_PARALLEL_WORKERS must be a positive integer (got {env!r})"
            )
        return workers
    return max(1, min(4, os.cpu_count() or 1))


class WorkerPool:
    """A persistent, lazily-started worker pool with blocking dispatch.

    :meth:`run` executes a batch of callables and returns when all have
    finished, re-raising the first failure.  With one worker (or one task)
    the batch runs inline on the caller's thread — no pool is started, so
    ``workers=1`` is exactly the single-threaded execution it claims to be.
    """

    def __init__(self, workers: int, *, name: str = WORKER_THREAD_PREFIX):
        if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
            raise ValueError(f"workers must be a positive integer (got {workers!r})")
        self.workers = int(workers)
        self.name = name
        self._executor: Optional[ThreadPoolExecutor] = None  # guarded-by: _lock
        self._lock = threading.Lock()

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix=self.name
                )
            return self._executor

    def run(self, tasks: Sequence[Callable[[], None]]) -> None:
        """Run ``tasks`` to completion; the first exception propagates."""
        tasks = list(tasks)
        if not tasks:
            return
        if self.workers == 1 or len(tasks) == 1:
            for task in tasks:
                task()
            return
        executor = self._ensure()
        futures = [executor.submit(task) for task in tasks]
        for future in futures:
            future.result()

    def close(self) -> None:
        """Join every worker thread; the pool restarts lazily if reused."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    @property
    def started(self) -> bool:
        with self._lock:
            return self._executor is not None


def refine_tiles(
    tiles: Sequence[Tuple[int, int, int, int]], min_tiles: int
) -> List[Tuple[int, int, int, int]]:
    """Split tiles deterministically until at least ``min_tiles`` exist.

    The widest Y extent splits first: inside one tile the proposed kernel's
    per-column detector tables are shared along Z, so Y splits add no
    redundant column work while Z splits would recompute those tables once
    per sub-tile.  Ties break toward the earliest tile; 1×1 tiles stop the
    refinement (a degenerate slab simply under-fills the pool).
    """
    if min_tiles < 1:
        raise ValueError("min_tiles must be positive")
    tiles = list(tiles)
    while len(tiles) < min_tiles:
        widest = max(range(len(tiles)), key=lambda t: (tiles[t][3] - tiles[t][2], -t))
        z0, z1, y0, y1 = tiles[widest]
        if y1 - y0 >= 2:
            ym = (y0 + y1) // 2
            tiles[widest : widest + 1] = [(z0, z1, y0, ym), (z0, z1, ym, y1)]
            continue
        tallest = max(range(len(tiles)), key=lambda t: (tiles[t][1] - tiles[t][0], -t))
        z0, z1, y0, y1 = tiles[tallest]
        if z1 - z0 < 2:
            break
        zm = (z0 + z1) // 2
        tiles[tallest : tallest + 1] = [(z0, zm, y0, y1), (zm, z1, y0, y1)]
    return tiles


def partition_tiles(
    tiles: Sequence[Tuple[int, int, int, int]], workers: int
) -> List[List[Tuple[int, int, int, int]]]:
    """Static round-robin shards: worker ``w`` owns ``tiles[w::workers]``.

    Disjoint by construction (every tile appears in exactly one shard) and
    interleaved so each worker gets a spread of Z rows — load balance
    without any scheduling-dependent assignment.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    shards = [list(tiles[w::workers]) for w in range(workers)]
    return [shard for shard in shards if shard]


class _ParallelAccumulator(VolumeAccumulator):
    """Shard-parallel tile accumulation into one preallocated volume."""

    def __init__(
        self,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
        byte_budget: int = DEFAULT_BYTE_BUDGET,
        pool: WorkerPool,
    ):
        super().__init__(
            geometry, algorithm=algorithm, z_range=z_range, use_symmetry=use_symmetry
        )
        self._pool = pool
        self._out = np.zeros(
            (self.nz_local, geometry.ny, geometry.nx), dtype=DEFAULT_DTYPE
        )
        tiles = refine_tiles(
            plan_tiles(
                self.nz_local, geometry.ny, geometry.nx, geometry.nv, byte_budget
            ),
            pool.workers,
        )
        self._shards = partition_tiles(tiles, pool.workers)
        self._kernel = _BLOCK_KERNELS[self.algorithm]

    # ------------------------------------------------------------------ #
    def _shard_task(
        self,
        shard: List[Tuple[int, int, int, int]],
        projections: np.ndarray,
        matrices: List[np.ndarray],
        i_grid: np.ndarray,
        j_grid: np.ndarray,
    ) -> Callable[[], None]:
        z_start = self.z_range[0]
        # ks depends only on the tile's Z extent — build once per tile, not
        # once per (projection, tile) pair.
        tile_ks = [
            np.arange(z_start + z0, z_start + z1, dtype=np.float64)
            for z0, z1, _, _ in shard
        ]

        def task() -> None:
            for matrix, projection in zip(matrices, projections):
                for (z0, z1, y0, y1), ks in zip(shard, tile_ks):
                    self._kernel(
                        self._out[z0:z1, y0:y1, :],
                        projection,
                        matrix,
                        ks,
                        i_grid[y0:y1, :],
                        j_grid[y0:y1, :],
                    )

        return task

    def _dispatch(self, projections: np.ndarray, angles: Sequence[float]) -> None:
        matrices = [
            self.geometry.projection_matrix(float(angle)).matrix for angle in angles
        ]
        j_grid, i_grid = _index_grids(self.geometry.ny, self.geometry.nx)
        tasks = [
            self._shard_task(shard, projections, matrices, i_grid, j_grid)
            for shard in self._shards
        ]
        # Per-worker spans: the ambient tracer and parent span are captured
        # on the dispatching thread (thread-locals do not cross the pool
        # boundary) and handed to each shard task explicitly.  Wrapping
        # happens only when tracing is enabled — the untraced dispatch path
        # is byte-for-byte the pre-instrumentation one.
        tracer = get_tracer()
        if tracer.enabled:
            parent = tracer.current_span_id()
            payload = int(projections.nbytes)

            def traced(task, worker, tiles):
                def run() -> None:
                    with tracer.span(
                        "backproject.worker",
                        payload_bytes=payload,
                        parent=parent,
                        worker=worker,
                        tiles=tiles,
                        projections=len(matrices),
                    ):
                        task()

                return run

            tasks = [
                traced(task, worker, len(shard))
                for worker, (task, shard) in enumerate(zip(tasks, self._shards))
            ]
        self._pool.run(tasks)

    def add(self, projection: np.ndarray, angle: float) -> None:
        projection = np.asarray(projection, dtype=DEFAULT_DTYPE)
        self._validate(projection)
        self._dispatch(projection[None, ...], [angle])

    def add_stack(self, stack: ProjectionStack) -> None:
        """Fold a whole filtered stack with a single dispatch per shard.

        One synchronization point for the entire stack instead of one per
        projection; each shard still accumulates its tiles in sequential
        stack order, so the bits match streaming :meth:`add` exactly.
        """
        data = np.asarray(stack.data, dtype=DEFAULT_DTYPE)
        if data.shape[1:] != (self.geometry.nv, self.geometry.nu):
            raise ValueError(
                f"projection stack {data.shape[1:]} does not match detector "
                f"({self.geometry.nv}, {self.geometry.nu})"
            )
        self._dispatch(data, stack.angles)

    def volume(self) -> Volume:
        return Volume(
            data=self._out.copy(), voxel_pitch=self.geometry.voxel_pitch
        )

    def reset(self) -> None:
        self._out.fill(0)


class ParallelBackend(ComputeBackend):
    """Multicore execution of the blocked tile plan on a worker pool.

    With ``workers=None`` the count is resolved *lazily* from
    :func:`default_workers` on first use — never at construction — so
    importing the package (which registers a default instance) cannot fail
    on a malformed ``REPRO_PARALLEL_WORKERS``; the error surfaces on the
    first parallel execution, inside the normal ValueError paths.
    """

    name = "parallel"

    def __init__(
        self,
        workers: Optional[int] = None,
        byte_budget: int = DEFAULT_BYTE_BUDGET,
    ):
        if workers is not None and (
            isinstance(workers, bool) or not isinstance(workers, int) or workers < 1
        ):
            raise ValueError(f"workers must be a positive integer (got {workers!r})")
        if byte_budget <= 0:
            raise ValueError("byte_budget must be positive")
        self._workers = int(workers) if workers is not None else None
        self.byte_budget = int(byte_budget)
        self._pool: Optional[WorkerPool] = None  # guarded-by: _init_lock
        self._init_lock = threading.Lock()

    @property
    def workers(self) -> int:
        """The resolved worker count (reads the environment on first use)."""
        return self._ensure_pool().workers

    def _ensure_pool(self) -> WorkerPool:
        with self._init_lock:
            if self._pool is None:
                self._pool = WorkerPool(
                    self._workers if self._workers is not None else default_workers()
                )
            return self._pool

    # ------------------------------------------------------------------ #
    def apply_filter(
        self, rows: np.ndarray, response: np.ndarray, tau: float
    ) -> np.ndarray:
        """Row-group rfft filtering, groups processed concurrently.

        Groups share the precomputed frequency ``response`` (the plan/weight
        tables are built once in the shared driver) and write disjoint row
        ranges of one preallocated output; per-row transforms are identical
        regardless of grouping, so any worker count is bit-exact with the
        ``blocked`` row-blocked path.
        """
        rows = np.asarray(rows)
        if rows.ndim <= 1:
            return rfft_ramp_filter(rows, response, tau)
        lead = rows.shape[:-1]
        flat = rows.reshape(-1, rows.shape[-1])
        n_rows = flat.shape[0]
        # Same byte ceiling as `blocked`, but never fewer groups than
        # workers: ~16 bytes of complex spectrum per padded sample per row.
        per_budget = max(1, self.byte_budget // (16 * response.shape[0]))
        per_worker = -(-n_rows // self.workers)
        rows_per_group = max(1, min(per_budget, per_worker))
        out_dtype = rows.dtype if rows.dtype.kind == "f" else DEFAULT_DTYPE
        out = np.empty(flat.shape, dtype=out_dtype)
        tracer = get_tracer()
        parent = tracer.current_span_id() if tracer.enabled else None

        def group_task(start: int) -> Callable[[], None]:
            def task() -> None:
                stop = min(start + rows_per_group, n_rows)
                out[start:stop] = rfft_ramp_filter(flat[start:stop], response, tau)

            if not tracer.enabled:
                return task

            def traced() -> None:
                stop = min(start + rows_per_group, n_rows)
                with tracer.span(
                    "filter.worker",
                    payload_bytes=int(flat[start:stop].nbytes),
                    parent=parent,
                    rows=stop - start,
                ):
                    task()

            return traced

        self._ensure_pool().run(
            [group_task(start) for start in range(0, n_rows, rows_per_group)]
        )
        return out.reshape(*lead, -1)

    def accumulator(
        self,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
        k_chunk: int = 32,  # noqa: ARG002 - tile planning replaces chunking
    ) -> VolumeAccumulator:
        return _ParallelAccumulator(
            geometry,
            algorithm=algorithm,
            z_range=z_range,
            use_symmetry=use_symmetry,
            byte_budget=self.byte_budget,
            pool=self._ensure_pool(),
        )

    def backproject(
        self,
        stack: ProjectionStack,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
        k_chunk: int = 32,
    ) -> Volume:
        """Whole-stack back-projection: one dispatch per worker shard.

        The streaming ``accumulator().add`` seam stays available for the
        rank runtime; this driver amortizes pool synchronization over the
        entire stack (identical bits either way).
        """
        with get_tracer().span(
            "backproject",
            payload_bytes=int(stack.data.nbytes),
            backend=self.name,
            algorithm=algorithm,
            projections=stack.np_,
        ):
            acc = self.accumulator(
                geometry,
                algorithm=algorithm,
                z_range=z_range,
                use_symmetry=use_symmetry,
                k_chunk=k_chunk,
            )
            acc.add_stack(stack)
            return acc.volume()

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Join the worker pool (restarts lazily if the backend is reused)."""
        with self._init_lock:
            pool = self._pool
        if pool is not None:
            pool.close()

    @property
    def pool_started(self) -> bool:
        """Whether the pool currently holds live worker threads."""
        with self._init_lock:
            pool = self._pool
        return pool is not None and pool.started
