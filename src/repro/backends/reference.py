"""The ``reference`` backend: the repo's original NumPy hot paths, unchanged.

This backend is the ground truth of the conformance contract.  It routes
straight to the literal Algorithm 1/2/4 transcriptions in
:mod:`repro.core.filtering` and :mod:`repro.core.backprojection` — the code
every paper-facing test was written against — so its outputs are *defined*
to be correct, and every other backend is measured against it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.backprojection import accumulate_proposed, accumulate_standard
from ..core.filtering import apply_ramp_filter
from ..core.geometry import CBCTGeometry
from ..core.types import DEFAULT_DTYPE, Volume
from .base import ComputeBackend, VolumeAccumulator

__all__ = ["ReferenceBackend"]


class _ReferenceAccumulator(VolumeAccumulator):
    """Per-projection accumulation exactly as the original ``BackProjector``.

    The proposed algorithm accumulates into the k-major layout (the paper's
    ``I~``) and reshapes on :meth:`volume` (Algorithm 4 line 22); the
    standard algorithm accumulates i-major directly.
    """

    def __init__(
        self,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
        k_chunk: int = 32,
    ):
        super().__init__(
            geometry, algorithm=algorithm, z_range=z_range, use_symmetry=use_symmetry
        )
        self.k_chunk = int(k_chunk)
        if algorithm == "proposed":
            self._kmajor: Optional[np.ndarray] = np.zeros(
                (geometry.nx, geometry.ny, self.nz_local), dtype=DEFAULT_DTYPE
            )
            self._imajor: Optional[np.ndarray] = None
        else:
            self._imajor = np.zeros(
                (self.nz_local, geometry.ny, geometry.nx), dtype=DEFAULT_DTYPE
            )
            self._kmajor = None

    def add(self, projection: np.ndarray, angle: float) -> None:
        projection = np.asarray(projection, dtype=DEFAULT_DTYPE)
        self._validate(projection)
        pm = self.geometry.projection_matrix(float(angle))
        if self.algorithm == "proposed":
            accumulate_proposed(
                self._kmajor,
                np.ascontiguousarray(projection.T),  # Algorithm 4 line 3
                pm,
                z_range=self.z_range,
                k_chunk=self.k_chunk,
                use_symmetry=self.use_symmetry,
            )
        else:
            accumulate_standard(
                self._imajor,
                projection,
                pm,
                z_range=self.z_range,
                k_chunk=self.k_chunk,
            )

    def volume(self) -> Volume:
        if self.algorithm == "proposed":
            data = np.ascontiguousarray(
                self._kmajor.transpose(2, 1, 0), dtype=DEFAULT_DTYPE
            )
        else:
            data = self._imajor.copy()
        return Volume(data=data, voxel_pitch=self.geometry.voxel_pitch)

    def reset(self) -> None:
        if self._kmajor is not None:
            self._kmajor.fill(0)
        if self._imajor is not None:
            self._imajor.fill(0)


class ReferenceBackend(ComputeBackend):
    """The original, paper-literal NumPy implementation of the hot paths."""

    name = "reference"

    def apply_filter(
        self, rows: np.ndarray, response: np.ndarray, tau: float
    ) -> np.ndarray:
        return apply_ramp_filter(rows, tau, response=response)

    def accumulator(
        self,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
        k_chunk: int = 32,
    ) -> VolumeAccumulator:
        return _ReferenceAccumulator(
            geometry,
            algorithm=algorithm,
            z_range=z_range,
            use_symmetry=use_symmetry,
            k_chunk=k_chunk,
        )
