"""Pluggable compute backends for the FDK hot paths.

Every layer of the stack — :class:`repro.core.fdk.FDKReconstructor`, the
iFDK rank runtime, the reconstruction service and the CLI — executes its
ramp filtering and back-projection through a named
:class:`~repro.backends.base.ComputeBackend`:

``reference``
    The original paper-literal NumPy implementation (the conformance
    ground truth).
``vectorized``
    Fully batched NumPy: per-projection geometry hoisted per Theorems 2/3,
    fused weight·fetch·accumulate, real-FFT filtering.
``blocked``
    The vectorized kernels tiled over (z, y) slabs under a byte budget —
    bit-identical to ``vectorized``, shaped like a GPU/out-of-core port.
``parallel``
    The blocked tile plan executed across a persistent worker-thread pool
    (``workers=N``) — bit-identical to ``blocked`` at every worker count,
    because workers own disjoint tiles of one preallocated volume.

Adding a backend
----------------

Subclass :class:`~repro.backends.base.ComputeBackend`, implement
``apply_filter`` and ``accumulator``, give it a unique ``name`` and call
:func:`register_backend`.  The new backend must pass the conformance
matrix in ``tests/test_backend_conformance.py`` (≤ 1e-5 relative RMSE
against ``reference`` on every preset/dtype/slab combination) before it is
trusted anywhere; see :mod:`repro.backends.base` for the full contract.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type, Union

from .base import ALGORITHMS, ComputeBackend, VolumeAccumulator
from .blocked import DEFAULT_BYTE_BUDGET, BlockedBackend, plan_tiles
from .parallel import ParallelBackend, WorkerPool, default_workers
from .reference import ReferenceBackend
from .vectorized import VectorizedBackend

__all__ = [
    "ALGORITHMS",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "DEFAULT_BYTE_BUDGET",
    "BlockedBackend",
    "ComputeBackend",
    "ParallelBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "VolumeAccumulator",
    "WorkerPool",
    "available_backends",
    "default_workers",
    "get_backend",
    "plan_tiles",
    "register_backend",
    "resolve_backend",
    "validate_backend",
]

#: The backend every layer defaults to.
DEFAULT_BACKEND = "reference"

_registry: Dict[str, ComputeBackend] = {}


def register_backend(backend: Union[ComputeBackend, Type[ComputeBackend]]) -> ComputeBackend:
    """Register a backend instance (or zero-argument class) by its ``name``."""
    instance = backend() if isinstance(backend, type) else backend
    if not isinstance(instance, ComputeBackend):
        raise TypeError(f"{backend!r} is not a ComputeBackend")
    if not instance.name:
        raise ValueError("backend must define a non-empty name")
    _registry[instance.name] = instance
    return instance


def available_backends() -> Tuple[str, ...]:
    """Names of all registered backends (sorted, ``reference`` first)."""
    names = sorted(_registry)
    if DEFAULT_BACKEND in names:
        names.remove(DEFAULT_BACKEND)
        names.insert(0, DEFAULT_BACKEND)
    return tuple(names)


def get_backend(name: Union[str, ComputeBackend]) -> ComputeBackend:
    """Resolve a backend by name (instances pass through unchanged)."""
    if isinstance(name, ComputeBackend):
        return name
    try:
        return _registry[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


def resolve_backend(
    name: Union[str, ComputeBackend], *, workers: Union[int, None] = None
) -> ComputeBackend:
    """Resolve a backend, optionally overriding the parallel worker count.

    ``workers=None`` is a plain :func:`get_backend` lookup (instances pass
    through).  An explicit worker count builds a *dedicated*
    :class:`ParallelBackend` whose pool the caller owns — close it on
    teardown (``FDKReconstructor.close`` does).  Requesting workers on any
    other backend is a :class:`ValueError`: only ``parallel`` executes on a
    worker pool.
    """
    if workers is None:
        return get_backend(name)
    validate_backend(name, workers=workers)
    return ParallelBackend(workers=workers)


def validate_backend(
    name: Union[str, ComputeBackend], *, workers: Union[int, None] = None
) -> str:
    """Check a backend name / worker-count combination without resolving it.

    The single source of the resolution rules — the name must be
    registered, a worker count must be a positive integer, and an explicit
    worker count requires the ``parallel`` backend.  :func:`resolve_backend`
    enforces them by calling this; the declarative plan layer calls it
    directly because it validates long before anything executes and must
    never construct a dedicated backend or a worker pool.  Returns the
    canonical backend name.
    """
    resolved = get_backend(name).name
    if workers is not None:
        if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
            raise ValueError(
                f"workers must be a positive integer (got {workers!r})"
            )
        if resolved != ParallelBackend.name:
            raise ValueError(
                f"workers={workers!r} requires the 'parallel' backend, but "
                f"backend is {resolved!r}"
            )
    return resolved


register_backend(ReferenceBackend)
register_backend(VectorizedBackend)
register_backend(BlockedBackend)
register_backend(ParallelBackend)

#: Stable tuple of the built-in backend names.
BACKEND_NAMES = available_backends()
