"""The compute-backend protocol for the FDK hot paths.

The paper's central claim is that the *proposed* back-projection is
arithmetically identical to the standard one while being far cheaper.  This
module generalizes that discipline into an execution seam: the three hot
paths of the pipeline — ramp filtering, standard back-projection
(Algorithm 2) and proposed back-projection (Algorithm 4) — are expressed
against an abstract :class:`ComputeBackend`, and every concrete backend must
prove itself *numerically equivalent* to the ``reference`` backend before it
may be selected anywhere in the stack.

The protocol
------------

A backend implements two primitives:

``apply_filter(rows, response, tau)``
    Convolve detector rows (last axis) with a precomputed ramp-filter
    frequency ``response``; the surrounding cosine weighting and FDK
    normalization are shared code (they are cheap elementwise products), so
    a backend only owns the FFT convolution itself.

``accumulator(geometry, algorithm=..., z_range=..., ...)``
    Return a :class:`VolumeAccumulator` bound to one geometry and Z slab.
    The accumulator receives filtered projections one at a time (the shape
    the streaming iFDK pipeline produces) and owns the voxel-update loop —
    this is where backends differ in batching, blocking and memory layout.

Everything else (`filter_stack`, `backproject`) is derived from those two
primitives by shared driver code in this class, so all backends execute the
*same* orchestration and differ only in the inner kernels.

The conformance contract
------------------------

A new backend is correct when ``tests/test_backend_conformance.py`` passes
with it registered:

* each hot path must agree with ``reference`` to a relative RMSE of at most
  ``1e-5`` on every geometry preset, input dtype and Z-slab decomposition of
  the matrix (in practice the NumPy backends agree to ~1e-7);
* backends that share arithmetic but differ only in traversal order (for
  example ``blocked`` vs ``vectorized``) must agree **bit-exactly**;
* the Theorem 1–3 invariants (mirror-row reflection, u/z/Wdis constant
  along Z) must survive the backend's algebraic rearrangements.

Register the backend with :func:`repro.backends.register_backend` and add
its name to the conformance matrix; nothing else in the stack needs to
change — `FDKReconstructor`, the iFDK rank runtime, the service and the CLI
all select backends by name.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from ..core.filtering import (
    broadcast_redundancy_table,
    cosine_weight_table,
    fdk_normalization,
    ramp_filter_frequency_response,
)
from ..core.geometry import CBCTGeometry
from ..core.types import DEFAULT_DTYPE, ProjectionStack, Volume
from ..obs import get_tracer

__all__ = ["ComputeBackend", "VolumeAccumulator", "ALGORITHMS"]

#: Back-projection algorithm names every backend must support.
ALGORITHMS = ("standard", "proposed")


class VolumeAccumulator(abc.ABC):
    """A streaming back-projection accumulator bound to one Z slab.

    One projection at a time is folded into the accumulator via :meth:`add`;
    :meth:`volume` returns the accumulated sub-volume in the canonical
    i-major ``(Nz_local, Ny, Nx)`` layout regardless of the backend's
    internal storage.  Accumulation must be deterministic: the result may
    depend only on the sequence of ``(projection, angle)`` pairs, never on
    wall-clock, thread scheduling or allocation addresses.
    """

    def __init__(
        self,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
    ):
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        self.geometry = geometry
        self.algorithm = algorithm
        self.use_symmetry = use_symmetry
        self.z_range = z_range if z_range is not None else (0, geometry.nz)
        z_start, z_stop = self.z_range
        if not (0 <= z_start < z_stop <= geometry.nz):
            raise ValueError(f"invalid z_range {z_range} for Nz={geometry.nz}")

    @property
    def nz_local(self) -> int:
        return self.z_range[1] - self.z_range[0]

    @abc.abstractmethod
    def add(self, projection: np.ndarray, angle: float) -> None:
        """Fold one filtered ``(Nv, Nu)`` projection into the sub-volume."""

    @abc.abstractmethod
    def volume(self) -> Volume:
        """The accumulated sub-volume, i-major ``(Nz_local, Ny, Nx)``."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Zero the accumulator, keeping geometry and configuration."""

    def _validate(self, projection: np.ndarray) -> None:
        if projection.shape != (self.geometry.nv, self.geometry.nu):
            raise ValueError(
                f"projection shape {projection.shape} does not match detector "
                f"({self.geometry.nv}, {self.geometry.nu})"
            )


class ComputeBackend(abc.ABC):
    """One execution strategy for the FDK hot paths.

    Subclasses implement :meth:`apply_filter` and :meth:`accumulator`; the
    stack-level drivers below are shared so every backend runs the same
    orchestration (weighting, normalization, per-projection streaming) and
    differs only in its inner kernels.
    """

    #: Registry name (``--backend`` value); subclasses must override.
    name: str = ""

    # ------------------------------------------------------------------ #
    # Primitives
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def apply_filter(
        self, rows: np.ndarray, response: np.ndarray, tau: float
    ) -> np.ndarray:
        """Convolve detector rows (last axis) with the ramp ``response``.

        ``response`` is the full-length frequency response produced by
        :func:`repro.core.filtering.ramp_filter_frequency_response`; the
        output must include the ``tau`` Riemann-sum factor and keep the
        input's floating dtype (promoting integers to float32).
        """

    @abc.abstractmethod
    def accumulator(
        self,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
        k_chunk: int = 32,
    ) -> VolumeAccumulator:
        """A fresh zeroed :class:`VolumeAccumulator` for one Z slab."""

    # ------------------------------------------------------------------ #
    # Shared drivers
    # ------------------------------------------------------------------ #
    def filter_stack(
        self,
        stack: ProjectionStack,
        geometry: CBCTGeometry,
        window: str = "ram-lak",
        *,
        apply_fdk_scale: bool = True,
        redundancy: Optional[np.ndarray] = None,
    ) -> ProjectionStack:
        """Algorithm 1 on a whole stack: cosine weight, ramp filter, scale.

        ``redundancy`` is an optional ``(Np, Nu)`` per-projection
        ray-redundancy table from an acquisition scenario (short-scan
        Parker weights, offset-detector weights).  It is applied here, in
        the shared driver, so every backend consumes the identical weighted
        input — scenario handling can never diverge between backends, and
        row/tile blocking stays bit-exact.
        """
        if stack.nu != geometry.nu or stack.nv != geometry.nv:
            raise ValueError(
                f"projection stack ({stack.nv}x{stack.nu}) does not match detector "
                f"({geometry.nv}x{geometry.nu})"
            )
        with get_tracer().span(
            "filter",
            payload_bytes=int(stack.data.nbytes),
            backend=self.name,
            projections=stack.np_,
            window=window,
        ):
            fcos = cosine_weight_table(geometry)
            tau = geometry.du * geometry.sad / geometry.sdd
            response = ramp_filter_frequency_response(geometry.nu, tau, window)
            weighted = stack.data * fcos[None, :, :]
            if redundancy is not None:
                weighted = (
                    weighted
                    * broadcast_redundancy_table(redundancy, stack.np_, stack.nu)
                ).astype(DEFAULT_DTYPE, copy=False)
            filtered = self.apply_filter(weighted, response, tau)
            if apply_fdk_scale:
                filtered = filtered * DEFAULT_DTYPE(fdk_normalization(geometry))
            return ProjectionStack(
                data=filtered.astype(DEFAULT_DTYPE, copy=False),
                angles=stack.angles.copy(),
                filtered=True,
            )

    def backproject(
        self,
        stack: ProjectionStack,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
        k_chunk: int = 32,
    ) -> Volume:
        """Back-project a filtered stack through this backend's accumulator.

        The span covers the whole tile/voxel accumulation loop of this
        backend; per-projection ``backproject.add`` spans are recorded only
        when tracing is enabled, so the hot loop stays untouched otherwise.
        """
        tracer = get_tracer()
        with tracer.span(
            "backproject",
            payload_bytes=int(stack.data.nbytes),
            backend=self.name,
            algorithm=algorithm,
            projections=stack.np_,
        ):
            acc = self.accumulator(
                geometry,
                algorithm=algorithm,
                z_range=z_range,
                use_symmetry=use_symmetry,
                k_chunk=k_chunk,
            )
            if tracer.enabled:
                for index, (angle, projection) in enumerate(stack):
                    with tracer.span("backproject.add", projection_index=index):
                        acc.add(projection, angle)
            else:
                for angle, projection in stack:
                    acc.add(projection, angle)
            return acc.volume()

    def close(self) -> None:
        """Release execution resources (worker threads); idempotent no-op here.

        Backends that own threads (``parallel``) override this; closing must
        always be safe — a closed backend restarts its resources lazily on
        the next call, so shared registry instances tolerate it too.
        """

    def __enter__(self) -> "ComputeBackend":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def reconstruct(
        self,
        stack: ProjectionStack,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        window: str = "ram-lak",
        z_range: Optional[Tuple[int, int]] = None,
        redundancy: Optional[np.ndarray] = None,
    ) -> Volume:
        """Full FDK (filter + back-project) on this backend."""
        if stack.filtered and redundancy is not None:
            raise ValueError(
                "redundancy weights are applied in the filtering stage, but "
                "this stack is already filtered"
            )
        filtered = stack if stack.filtered else self.filter_stack(
            stack, geometry, window, redundancy=redundancy
        )
        return self.backproject(
            filtered, geometry, algorithm=algorithm, z_range=z_range
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} name={self.name!r}>"
