"""The ``blocked`` backend: cache/memory-bounded tiled execution.

The ``vectorized`` backend materializes ``(Nz, Ny, Nx)``-sized float64
temporaries — fine at test scale, ruinous for a 2048³ volume or for a GPU
with a fixed device memory.  This backend runs the *same* block kernels
over ``(z, y)`` tiles whose working set is bounded by a byte budget,
which is exactly the shape a real GPU or out-of-core port needs: each tile
is an independent, bounded unit of work that touches one sub-slab of the
accumulator and one column-table of the projection.

Because the kernels in :mod:`repro.backends.vectorized` are elementwise in
the ``(k, y)`` block (no reductions across the tiled axes), tiling changes
*nothing* about the arithmetic: for any byte budget the blocked backend
produces **bit-identical** volumes to the vectorized backend, and the
conformance suite asserts exactly that.  Filtering is likewise the same
real-FFT convolution applied over bounded row blocks — each detector row's
transform is independent, so row blocking is bit-exact too.

Tile planning is deterministic: starting from the whole slab, the longer of
the (z, y) tile axes is halved until the estimated float64 working set fits
the budget (never below one slice/row).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.geometry import CBCTGeometry
from ..core.types import DEFAULT_DTYPE, Volume
from .base import ComputeBackend, VolumeAccumulator
from .vectorized import _BLOCK_KERNELS, _index_grids, rfft_ramp_filter

__all__ = ["BlockedBackend", "plan_tiles", "DEFAULT_BYTE_BUDGET"]

#: Default working-set bound: 32 MiB of float64 temporaries per tile —
#: roughly an L3-cache-friendly footprint on current CPUs.
DEFAULT_BYTE_BUDGET = 32 << 20


def _block_bytes(kt: int, yt: int, nx: int, nv: int) -> int:
    """Estimated float64 working set of one ``(kt, yt)`` tile.

    The proposed kernel's column tables are ``(Nv, yt, Nx)`` (three live at
    once) and both kernels hold ~8 ``(kt, yt, Nx)`` coordinate/sample
    temporaries; this deliberately over-counts a little so the budget is a
    ceiling, not a target.
    """
    return 8 * (3 * nv * yt * nx + 8 * kt * yt * nx)


def plan_tiles(
    nz_local: int,
    ny: int,
    nx: int,
    nv: int,
    byte_budget: int,
) -> List[Tuple[int, int, int, int]]:
    """Deterministic ``(z0, z1, y0, y1)`` tiling under ``byte_budget`` bytes.

    Local Z coordinates (``0 <= z0 < z1 <= nz_local``).  The longer tile
    axis is halved until the estimate fits; degenerate budgets bottom out at
    1x1-slice tiles rather than failing.
    """
    if byte_budget <= 0:
        raise ValueError("byte_budget must be positive")
    kt, yt = nz_local, ny
    while _block_bytes(kt, yt, nx, nv) > byte_budget and (kt > 1 or yt > 1):
        if kt >= yt and kt > 1:
            kt = (kt + 1) // 2
        else:
            yt = (yt + 1) // 2
    tiles = []
    for z0 in range(0, nz_local, kt):
        z1 = min(z0 + kt, nz_local)
        for y0 in range(0, ny, yt):
            tiles.append((z0, z1, y0, min(y0 + yt, ny)))
    return tiles


class _BlockedAccumulator(VolumeAccumulator):
    """Tile-at-a-time accumulation with a bounded working set."""

    def __init__(
        self,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
        byte_budget: int = DEFAULT_BYTE_BUDGET,
    ):
        super().__init__(
            geometry, algorithm=algorithm, z_range=z_range, use_symmetry=use_symmetry
        )
        self.byte_budget = int(byte_budget)
        self._out = np.zeros(
            (self.nz_local, geometry.ny, geometry.nx), dtype=DEFAULT_DTYPE
        )
        self._tiles = plan_tiles(
            self.nz_local, geometry.ny, geometry.nx, geometry.nv, self.byte_budget
        )
        self._kernel = _BLOCK_KERNELS[self.algorithm]

    def add(self, projection: np.ndarray, angle: float) -> None:
        projection = np.asarray(projection, dtype=DEFAULT_DTYPE)
        self._validate(projection)
        pm = self.geometry.projection_matrix(float(angle))
        j_grid, i_grid = _index_grids(self.geometry.ny, self.geometry.nx)
        z_start = self.z_range[0]
        for z0, z1, y0, y1 in self._tiles:
            ks = np.arange(z_start + z0, z_start + z1, dtype=np.float64)
            self._kernel(
                self._out[z0:z1, y0:y1, :],
                projection,
                pm.matrix,
                ks,
                i_grid[y0:y1, :],
                j_grid[y0:y1, :],
            )

    def volume(self) -> Volume:
        return Volume(
            data=self._out.copy(), voxel_pitch=self.geometry.voxel_pitch
        )

    def reset(self) -> None:
        self._out.fill(0)


class BlockedBackend(ComputeBackend):
    """Tiled execution of the vectorized kernels under a byte budget."""

    name = "blocked"

    def __init__(self, byte_budget: int = DEFAULT_BYTE_BUDGET):
        if byte_budget <= 0:
            raise ValueError("byte_budget must be positive")
        self.byte_budget = int(byte_budget)

    def apply_filter(
        self, rows: np.ndarray, response: np.ndarray, tau: float
    ) -> np.ndarray:
        rows = np.asarray(rows)
        if rows.ndim <= 1:
            return rfft_ramp_filter(rows, response, tau)
        lead = rows.shape[:-1]
        flat = rows.reshape(-1, rows.shape[-1])
        # ~16 bytes of complex spectrum per padded sample, per row.
        rows_per_block = max(1, self.byte_budget // (16 * response.shape[0]))
        pieces = [
            rfft_ramp_filter(flat[start : start + rows_per_block], response, tau)
            for start in range(0, flat.shape[0], rows_per_block)
        ]
        return np.concatenate(pieces, axis=0).reshape(*lead, -1)

    def accumulator(
        self,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
        k_chunk: int = 32,  # noqa: ARG002 - tile planning replaces chunking
    ) -> VolumeAccumulator:
        return _BlockedAccumulator(
            geometry,
            algorithm=algorithm,
            z_range=z_range,
            use_symmetry=use_symmetry,
            byte_budget=self.byte_budget,
        )
