"""The ``vectorized`` backend: fully batched NumPy kernels for the hot paths.

Where the ``reference`` backend is a literal transcription of the paper's
algorithms (per-projection Python loops, chunked coordinate batches, SciPy
``map_coordinates`` fetches), this backend restructures the same arithmetic
for NumPy throughput:

* **Filtering** uses the real-input FFT (``rfft``/``irfft``) over the whole
  stack at once — the ramp response is real and even, so multiplying the
  half-spectrum is mathematically identical to the complex FFT path at half
  the transform work.
* **Proposed back-projection (Algorithm 4)** hoists everything Theorems 2
  and 3 allow out of the Z loop *and* fuses the remaining work: for each
  projection the per-column detector coordinate ``u``, reciprocal ``f=1/z``
  and distance weight ``Wdis=f²`` are computed once per ``(i, j)`` column,
  the ``u`` interpolation **and** the distance weight are folded into a
  pre-gathered column table ``cols[v, j, i] = Wdis·((1-du)·Q[v,u0]+du·Q[v,u0+1])``,
  and every Z slice then costs one fused multiply-add for ``v`` (affine in
  ``k`` by Theorem 3) plus a 1-D linear interpolation into ``cols``.  The
  explicit mirror-row reflection of Theorem 1 buys nothing here — the ``v``
  computation is already a single vectorized FMA — so all slices are
  evaluated directly, which also makes Z-slab decompositions bit-exact.
* **Standard back-projection (Algorithm 2)** evaluates the full three inner
  products per voxel as the paper prescribes, but over the entire ``(k, j,
  i)`` block at once with a manual fused bilinear gather instead of chunked
  ``map_coordinates`` calls.

All interpolation weights are computed in float64 and each projection's
contribution is rounded to float32 exactly once, at accumulation — the same
rounding structure as the reference path, which is why the two agree to
~1e-7 relative RMSE (the conformance bound is 1e-5).

The block kernels take explicit ``(k, y)`` sub-ranges and are elementwise in
the block, so the ``blocked`` backend reuses them tile-by-tile and produces
**bit-identical** volumes (asserted by the conformance suite).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

try:  # SciPy's pocketfft is noticeably faster than numpy.fft for real FFTs.
    from scipy import fft as _fft
except ImportError:  # pragma: no cover - scipy is a hard dependency
    from numpy import fft as _fft  # type: ignore[no-redef]

from ..core.geometry import CBCTGeometry
from ..core.types import DEFAULT_DTYPE, Volume
from .base import ComputeBackend, VolumeAccumulator

__all__ = [
    "VectorizedBackend",
    "rfft_ramp_filter",
    "accumulate_proposed_block",
    "accumulate_standard_block",
]


@lru_cache(maxsize=8)
def _index_grids(ny: int, nx: int) -> Tuple[np.ndarray, np.ndarray]:
    """Read-only float64 ``(j_grid, i_grid)`` meshes, shared across calls."""
    jj = np.arange(ny, dtype=np.float64)
    ii = np.arange(nx, dtype=np.float64)
    j_grid, i_grid = np.meshgrid(jj, ii, indexing="ij")
    j_grid.setflags(write=False)
    i_grid.setflags(write=False)
    return j_grid, i_grid


def _gather_dtype(max_index: int):
    """Smallest integer dtype for gather indices (int32 halves index traffic)."""
    return np.int32 if max_index < 2**31 - 1 else np.intp


def _padded_index(coord_int: np.ndarray, bound: int, dtype) -> np.ndarray:
    """Map floor coordinates onto a double-zero-padded axis.

    ``coord_int`` holds float64 ``floor`` values; the returned integers index
    an axis laid out as ``[0, 0, data[0..bound-1], 0, 0]``.  Clipping to
    ``[-2, bound]`` parks every out-of-range neighbour (and the neighbour's
    ``+1`` successor) on a zero sample, which replaces the bounds masks of a
    classic bilinear gather with plain arithmetic.
    """
    return (np.clip(coord_int, -2.0, float(bound)) + 2.0).astype(dtype)


# --------------------------------------------------------------------------- #
# Filtering: real-FFT ramp convolution
# --------------------------------------------------------------------------- #
def rfft_ramp_filter(
    rows: np.ndarray, response: np.ndarray, tau: float
) -> np.ndarray:
    """Convolve rows (last axis) with the ramp response via the real FFT.

    The ramp kernel is real and even, so its frequency response is real and
    even too and the half-spectrum product equals the full complex-FFT
    product.  Output matches :func:`repro.core.filtering.apply_ramp_filter`
    to floating-point round-off (and is itself deterministic per row, which
    is what makes row-blocked execution bit-exact).
    """
    rows = np.asarray(rows)
    nu = rows.shape[-1]
    pad = response.shape[0]
    if pad < nu:
        raise ValueError("response is shorter than the rows to filter")
    half = response[: pad // 2 + 1]
    spectrum = _fft.rfft(rows, n=pad, axis=-1)
    filtered = _fft.irfft(spectrum * half, n=pad, axis=-1)[..., :nu]
    return (filtered * tau).astype(
        rows.dtype if rows.dtype.kind == "f" else DEFAULT_DTYPE
    )


# --------------------------------------------------------------------------- #
# Back-projection block kernels (elementwise in the (k, y) block)
# --------------------------------------------------------------------------- #
def accumulate_proposed_block(
    out_block: np.ndarray,
    projection: np.ndarray,
    p: np.ndarray,
    ks: np.ndarray,
    i_grid: np.ndarray,
    j_grid: np.ndarray,
) -> None:
    """Fused Algorithm 4 update of one ``(K, By, Nx)`` block.

    Parameters
    ----------
    out_block:
        Float32 accumulator view of shape ``(K, By, Nx)`` — Z slices ``ks``
        by a Y tile by the full X extent, in the i-major layout.
    projection:
        One filtered projection ``(Nv, Nu)``.
    p:
        The 3x4 projection matrix for this projection's angle.
    ks:
        Global Z indices of the block's slices, float64 ``(K,)``.
    i_grid, j_grid:
        Float64 index meshes of shape ``(By, Nx)`` for the Y tile.
    """
    nv, nu = projection.shape
    n_k = len(ks)
    n_y, n_x = i_grid.shape
    n_cols = n_y * n_x
    # Theorems 2 and 3: u, 1/z and Wdis depend only on (i, j).  This block is
    # K-independent, so it stays in float64 — it is amortized over all Z.
    x = p[0, 0] * i_grid + p[0, 1] * j_grid + p[0, 3]
    z = p[2, 0] * i_grid + p[2, 1] * j_grid + p[2, 3]
    f = 1.0 / z
    u = x * f
    w = f * f
    y_base = p[1, 0] * i_grid + p[1, 1] * j_grid + p[1, 3]

    # Fold the u interpolation and the distance weight into per-column
    # detector tables: cols[v, jy, ix] = Wdis * ((1-du)·Q[v,u0] + du·Q[v,u0+1]),
    # stored inside two zero rows top and bottom so the Z-loop gathers below
    # need no bounds masks.
    u0 = np.floor(u).astype(np.intp)
    du = u - u0
    left_ok = (u0 >= 0) & (u0 < nu)
    right_ok = (u0 + 1 >= 0) & (u0 + 1 < nu)
    u0c = np.clip(u0, 0, nu - 1).ravel()
    u1c = np.clip(u0 + 1, 0, nu - 1).ravel()
    cw_left = (np.where(left_ok, 1.0 - du, 0.0) * w).astype(np.float32).ravel()
    cw_right = (np.where(right_ok, du, 0.0) * w).astype(np.float32).ravel()
    padded = np.zeros((nv + 4, n_cols), dtype=np.float32)
    np.add(
        projection[:, u0c] * cw_left,
        projection[:, u1c] * cw_right,
        out=padded[2 : nv + 2],
    )
    flat_cols = padded.ravel()

    # Theorem 3 again: v is affine in k with slope p[1,2]·f per column.  The
    # coordinate is computed in float64 (sub-pixel accuracy), the blend in
    # float32 — a single rounding per sample, like the reference path.
    v = (y_base * f).ravel()[None, :] + (p[1, 2] * f).ravel()[None, :] * ks[:, None]
    v0 = np.floor(v)
    dv = (v - v0).astype(np.float32)
    dtype = _gather_dtype((nv + 4) * n_cols)
    index = _padded_index(v0, nv, dtype)
    index *= n_cols
    index += np.arange(n_cols, dtype=dtype)[None, :]
    sample_low = flat_cols.take(index)
    index += n_cols
    sample_high = flat_cols.take(index)
    sample_low *= 1.0 - dv
    sample_high *= dv
    sample_low += sample_high
    out_block += sample_low.reshape(n_k, n_y, n_x)


def accumulate_standard_block(
    out_block: np.ndarray,
    projection: np.ndarray,
    p: np.ndarray,
    ks: np.ndarray,
    i_grid: np.ndarray,
    j_grid: np.ndarray,
) -> None:
    """Fused Algorithm 2 update of one ``(K, By, Nx)`` block.

    Three inner products per voxel (no hoisting — this is the standard
    scheme), with the bilinear fetch done as four masked flat gathers fused
    with the ``Wdis`` weighting.
    """
    nv, nu = projection.shape
    n_k = len(ks)
    n_y, n_x = i_grid.shape
    x_base = p[0, 0] * i_grid + p[0, 1] * j_grid + p[0, 3]
    y_base = p[1, 0] * i_grid + p[1, 1] * j_grid + p[1, 3]
    z_base = p[2, 0] * i_grid + p[2, 1] * j_grid + p[2, 3]
    kcol = ks[:, None, None]
    # Coordinates in float64 (sub-pixel accuracy); weights and samples in
    # float32, matching the single rounding per sample of the reference.
    x = x_base[None, :, :] + p[0, 2] * kcol
    y = y_base[None, :, :] + p[1, 2] * kcol
    z = z_base[None, :, :] + p[2, 2] * kcol
    f = 1.0 / z
    u = x * f
    v = y * f
    w = (f * f).astype(np.float32)

    # The projection is embedded in a plane with two zero rows/columns on
    # every side, so all four bilinear neighbours resolve by arithmetic
    # alone — out-of-detector fetches land on stored zeros, no masks.
    width = nu + 4
    plane = np.zeros((nv + 4, width), dtype=np.float32)
    plane[2 : nv + 2, 2 : nu + 2] = projection
    flat_plane = plane.ravel()

    u0 = np.floor(u)
    v0 = np.floor(v)
    du = (u - u0).astype(np.float32)
    dv = (v - v0).astype(np.float32)
    dtype = _gather_dtype((nv + 4) * width)
    index = _padded_index(v0, nv, dtype)
    index *= width
    index += _padded_index(u0, nu, dtype)
    p00 = flat_plane.take(index)
    index += 1
    p10 = flat_plane.take(index)
    index += width
    p11 = flat_plane.take(index)
    index -= 1
    p01 = flat_plane.take(index)

    t1 = p00 * (1.0 - du) + p10 * du
    t2 = p01 * (1.0 - du) + p11 * du
    out_block += w * (t1 * (1.0 - dv) + t2 * dv)


_BLOCK_KERNELS = {
    "proposed": accumulate_proposed_block,
    "standard": accumulate_standard_block,
}


# --------------------------------------------------------------------------- #
# Accumulator and backend
# --------------------------------------------------------------------------- #
class _VectorizedAccumulator(VolumeAccumulator):
    """Whole-slab accumulation: one fused block update per projection."""

    def __init__(
        self,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
    ):
        super().__init__(
            geometry, algorithm=algorithm, z_range=z_range, use_symmetry=use_symmetry
        )
        self._out = np.zeros(
            (self.nz_local, geometry.ny, geometry.nx), dtype=DEFAULT_DTYPE
        )
        self._ks = np.arange(self.z_range[0], self.z_range[1], dtype=np.float64)
        self._kernel = _BLOCK_KERNELS[self.algorithm]

    def add(self, projection: np.ndarray, angle: float) -> None:
        projection = np.asarray(projection, dtype=DEFAULT_DTYPE)
        self._validate(projection)
        pm = self.geometry.projection_matrix(float(angle))
        j_grid, i_grid = _index_grids(self.geometry.ny, self.geometry.nx)
        self._kernel(self._out, projection, pm.matrix, self._ks, i_grid, j_grid)

    def volume(self) -> Volume:
        return Volume(
            data=self._out.copy(), voxel_pitch=self.geometry.voxel_pitch
        )

    def reset(self) -> None:
        self._out.fill(0)


class VectorizedBackend(ComputeBackend):
    """Fully batched NumPy execution of the FDK hot paths."""

    name = "vectorized"

    def apply_filter(
        self, rows: np.ndarray, response: np.ndarray, tau: float
    ) -> np.ndarray:
        return rfft_ramp_filter(rows, response, tau)

    def accumulator(
        self,
        geometry: CBCTGeometry,
        *,
        algorithm: str = "proposed",
        z_range: Optional[Tuple[int, int]] = None,
        use_symmetry: bool = True,
        k_chunk: int = 32,  # noqa: ARG002 - whole-slab batching ignores chunking
    ) -> VolumeAccumulator:
        return _VectorizedAccumulator(
            geometry, algorithm=algorithm, z_range=z_range, use_symmetry=use_symmetry
        )
