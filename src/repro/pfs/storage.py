"""Simulated parallel file system (PFS).

ABCI mounts a 6.6 PB GPFS file system; the paper measures its aggregate
bandwidth with LLNL's IOR (``BW_load``/``BW_store`` in Section 4.2.1) and a
peak sequential write bandwidth of 28.5 GB/s (Section 5.3.3).  This module
replaces GPFS with :class:`SimulatedPFS`:

* data can be held **in memory** (default — fast, used by tests and by the
  functional distributed runs) or **on local disk** under a directory
  (used by the examples so the output volume really lands in files);
* every read and write is charged against a bandwidth/striping model so the
  framework can report modelled ``T_load``/``T_store`` values alongside the
  wall-clock ones;
* files are striped across ``stripe_count`` object-storage targets with a
  configurable ``stripe_size`` — mirroring the paper's note that the output
  slices "written to PFS [are] not tuned to the ideal stripe size".
"""

from __future__ import annotations

import io
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

import numpy as np

__all__ = ["PFSConfig", "PFSStatistics", "SimulatedPFS"]


@dataclass(frozen=True)
class PFSConfig:
    """Bandwidth and striping parameters of the simulated file system.

    The defaults model ABCI's GPFS as characterized in the paper:
    28.5 GB/s aggregate sequential write, a comparable aggregate read rate,
    and 1 MiB stripes across 16 targets.
    """

    read_bandwidth: float = 40.0e9
    write_bandwidth: float = 28.5e9
    stripe_size: int = 1 << 20
    stripe_count: int = 16
    per_file_latency: float = 1.0e-3

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.stripe_size <= 0 or self.stripe_count <= 0:
            raise ValueError("stripe_size and stripe_count must be positive")
        if self.per_file_latency < 0:
            raise ValueError("per_file_latency must be non-negative")

    def stripe_efficiency(self, nbytes: int) -> float:
        """Fraction of peak bandwidth achieved for a file of ``nbytes``.

        A file that spans at least one full stripe per target streams at
        peak; smaller files only engage a subset of the targets.
        """
        if nbytes <= 0:
            return 1.0
        stripes = max(1, -(-nbytes // self.stripe_size))  # ceil division
        engaged = min(stripes, self.stripe_count)
        return engaged / self.stripe_count

    def write_seconds(self, nbytes: int) -> float:
        """Modelled time to write ``nbytes`` as a single file."""
        eff = self.stripe_efficiency(nbytes)
        return self.per_file_latency + nbytes / (self.write_bandwidth * eff)

    def read_seconds(self, nbytes: int) -> float:
        """Modelled time to read ``nbytes`` as a single file."""
        eff = self.stripe_efficiency(nbytes)
        return self.per_file_latency + nbytes / (self.read_bandwidth * eff)


@dataclass
class PFSStatistics:
    """Aggregate I/O accounting of one simulated file system."""

    bytes_read: int = 0
    bytes_written: int = 0
    files_read: int = 0
    files_written: int = 0
    modelled_read_seconds: float = 0.0
    modelled_write_seconds: float = 0.0


class SimulatedPFS:
    """A named, flat namespace of binary files with modelled timings."""

    def __init__(
        self,
        config: Optional[PFSConfig] = None,
        *,
        root_dir: Optional[os.PathLike] = None,
    ):
        self.config = config or PFSConfig()
        self.root_dir = Path(root_dir) if root_dir is not None else None
        if self.root_dir is not None:
            self.root_dir.mkdir(parents=True, exist_ok=True)
        self._objects: Dict[str, bytes] = {}
        self._lock = threading.Lock()
        self.stats = PFSStatistics()

    # ------------------------------------------------------------------ #
    def _path_for(self, name: str) -> Path:
        assert self.root_dir is not None
        safe = name.replace("/", "__")
        return self.root_dir / safe

    def write_array(self, name: str, array: np.ndarray) -> float:
        """Store an array under ``name``; returns the modelled write time."""
        array = np.ascontiguousarray(array)
        payload = array.tobytes()
        header = _encode_header(array)
        blob = header + payload
        with self._lock:
            if self.root_dir is not None:
                self._path_for(name).write_bytes(blob)
            else:
                self._objects[name] = blob
            seconds = self.config.write_seconds(len(blob))
            self.stats.bytes_written += len(blob)
            self.stats.files_written += 1
            self.stats.modelled_write_seconds += seconds
        return seconds

    def read_array(self, name: str) -> np.ndarray:
        """Load the array stored under ``name`` (raises ``KeyError`` if absent)."""
        with self._lock:
            if self.root_dir is not None:
                path = self._path_for(name)
                if not path.exists():
                    raise KeyError(f"no PFS object named {name!r}")
                blob = path.read_bytes()
            else:
                if name not in self._objects:
                    raise KeyError(f"no PFS object named {name!r}")
                blob = self._objects[name]
            seconds = self.config.read_seconds(len(blob))
            self.stats.bytes_read += len(blob)
            self.stats.files_read += 1
            self.stats.modelled_read_seconds += seconds
        return _decode_blob(blob)

    def exists(self, name: str) -> bool:
        with self._lock:
            if self.root_dir is not None:
                return self._path_for(name).exists()
            return name in self._objects

    def list_objects(self) -> List[str]:
        with self._lock:
            if self.root_dir is not None:
                return sorted(p.name for p in self.root_dir.iterdir() if p.is_file())
            return sorted(self._objects)

    def delete(self, name: str) -> None:
        with self._lock:
            if self.root_dir is not None:
                path = self._path_for(name)
                if path.exists():
                    path.unlink()
            else:
                self._objects.pop(name, None)

    # ------------------------------------------------------------------ #
    def modelled_aggregate_write_seconds(self, total_bytes: int) -> float:
        """Time to write ``total_bytes`` at the aggregate bandwidth (Eq. 16)."""
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        return total_bytes / self.config.write_bandwidth

    def modelled_aggregate_read_seconds(self, total_bytes: int) -> float:
        """Time to read ``total_bytes`` at the aggregate bandwidth (Eq. 8)."""
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        return total_bytes / self.config.read_bandwidth


# --------------------------------------------------------------------------- #
# Tiny self-describing serialization (dtype + shape header, raw bytes payload)
# --------------------------------------------------------------------------- #
def _encode_header(array: np.ndarray) -> bytes:
    descr = np.lib.format.dtype_to_descr(array.dtype)
    header = repr({"descr": descr, "shape": array.shape}).encode("ascii")
    return len(header).to_bytes(4, "little") + header


def _decode_blob(blob: bytes) -> np.ndarray:
    header_len = int.from_bytes(blob[:4], "little")
    header = eval(blob[4 : 4 + header_len].decode("ascii"))  # noqa: S307 - trusted, self-written
    dtype = np.lib.format.descr_to_dtype(header["descr"])
    shape = tuple(header["shape"])
    payload = blob[4 + header_len :]
    return np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
