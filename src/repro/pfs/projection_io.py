"""Projection input on the simulated PFS.

In iFDK "ranks in each column of the 2D-grid load a subset of projections
from the PFS independently" (Section 4.1.1).  This module provides the
dataset layout those loads operate on: one object per projection, named by
its index, plus helpers to write a whole acquisition and to read the subset
assigned to one rank.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..core.types import ProjectionStack
from .storage import SimulatedPFS

__all__ = [
    "projection_object_name",
    "write_projection_dataset",
    "read_projection_subset",
    "dataset_angles",
]

_ANGLES_OBJECT = "projections/angles"


def projection_object_name(index: int) -> str:
    """PFS object name of projection ``index``."""
    if index < 0:
        raise ValueError("projection index must be non-negative")
    return f"projections/{index:06d}"


def write_projection_dataset(pfs: SimulatedPFS, stack: ProjectionStack) -> float:
    """Write a full acquisition to the PFS; returns the modelled write time."""
    total = pfs.write_array(_ANGLES_OBJECT, stack.angles)
    for index in range(stack.np_):
        total += pfs.write_array(projection_object_name(index), stack.data[index])
    return total


def dataset_angles(pfs: SimulatedPFS) -> np.ndarray:
    """Gantry angles of the stored acquisition."""
    return pfs.read_array(_ANGLES_OBJECT)


def read_projection_subset(
    pfs: SimulatedPFS, indices: Sequence[int]
) -> ProjectionStack:
    """Read the projections with the given global indices (in that order)."""
    indices = list(int(i) for i in indices)
    if not indices:
        raise ValueError("at least one projection index is required")
    angles = dataset_angles(pfs)
    images: List[np.ndarray] = []
    selected_angles: List[float] = []
    for index in indices:
        if not 0 <= index < len(angles):
            raise IndexError(
                f"projection index {index} outside dataset of {len(angles)} projections"
            )
        images.append(pfs.read_array(projection_object_name(index)))
        selected_angles.append(float(angles[index]))
    return ProjectionStack(
        data=np.stack(images, axis=0),
        angles=np.asarray(selected_angles, dtype=np.float64),
    )
