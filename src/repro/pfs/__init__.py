"""Simulated parallel-file-system substrate (GPFS stand-in) for iFDK."""

from .projection_io import (
    dataset_angles,
    projection_object_name,
    read_projection_subset,
    write_projection_dataset,
)
from .storage import PFSConfig, PFSStatistics, SimulatedPFS
from .volume_io import (
    modelled_store_seconds,
    read_volume,
    slice_object_name,
    write_volume_slices,
)

__all__ = [
    "PFSConfig",
    "PFSStatistics",
    "SimulatedPFS",
    "dataset_angles",
    "modelled_store_seconds",
    "projection_object_name",
    "read_projection_subset",
    "read_volume",
    "slice_object_name",
    "write_projection_dataset",
    "write_volume_slices",
]
