"""Volume output on the simulated PFS.

Section 4.1.3: "the volume of size Nx×Ny×Nz is stored as slices of number
Nz, the size of each slice is Nx×Ny.  There is room for improvement by
tuning the size of each slice to optimize for the throughput of storing to
the PFS (i.e. tune slice size to optimize for file striping)."  The writer
below stores Z-slices (optionally grouped into slabs — the stripe-tuning
knob) and the reader reassembles the full volume, so the distributed store
path and the stripe-size ablation benchmark share one implementation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.types import Volume
from .storage import SimulatedPFS

__all__ = [
    "slice_object_name",
    "write_volume_slices",
    "read_volume",
    "modelled_store_seconds",
]


def slice_object_name(volume_name: str, z_start: int, z_stop: int) -> str:
    """PFS object name of the slab covering ``[z_start, z_stop)``."""
    return f"volumes/{volume_name}/z{z_start:06d}-{z_stop:06d}"


def write_volume_slices(
    pfs: SimulatedPFS,
    volume_name: str,
    data: np.ndarray,
    *,
    z_offset: int = 0,
    slices_per_file: int = 1,
) -> float:
    """Write an ``(Nz_local, Ny, Nx)`` slab as per-slice (or per-slab) objects.

    Returns the modelled write time.  ``slices_per_file`` is the
    stripe-tuning knob: 1 reproduces the paper's per-slice layout, larger
    values produce fewer, bigger files.
    """
    if data.ndim != 3:
        raise ValueError("volume data must be 3-D (Nz, Ny, Nx)")
    if slices_per_file <= 0:
        raise ValueError("slices_per_file must be positive")
    total = 0.0
    nz = data.shape[0]
    for start in range(0, nz, slices_per_file):
        stop = min(start + slices_per_file, nz)
        name = slice_object_name(volume_name, z_offset + start, z_offset + stop)
        total += pfs.write_array(name, data[start:stop])
    return total


def read_volume(
    pfs: SimulatedPFS,
    volume_name: str,
    *,
    voxel_pitch: Tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> Volume:
    """Reassemble a volume previously written with :func:`write_volume_slices`."""
    prefix = f"volumes/{volume_name}/"
    names = [n for n in pfs.list_objects() if n.startswith(prefix) or
             n.startswith(prefix.replace("/", "__"))]
    if not names:
        raise KeyError(f"no stored volume named {volume_name!r}")

    def z_start_of(name: str) -> int:
        tail = name.rsplit("z", 1)[-1]
        return int(tail.split("-")[0])

    names.sort(key=z_start_of)
    slabs: List[np.ndarray] = [pfs.read_array(n.replace("__", "/")) for n in names]
    data = np.concatenate(slabs, axis=0)
    return Volume(data=data, voxel_pitch=voxel_pitch)


def modelled_store_seconds(pfs: SimulatedPFS, volume_bytes: int) -> float:
    """Equation 16: ``T_store = sizeof(float)·Nx·Ny·Nz / BW_store``."""
    return pfs.modelled_aggregate_write_seconds(volume_bytes)
