"""error-contract: the two failure boundaries must stay sealed.

Two contracts, one per scoped file:

* ``cli.py`` — ``main()`` must keep the ``except ValueError`` handler
  that returns exit code 2.  Every subcommand signals bad input by
  raising ``ValueError``; if the central handler disappears, bad input
  becomes a traceback and scripts keying on exit codes break.
* ``service/http.py`` — every ``do_*`` HTTP handler must not let an
  exception escape the handler boundary: either the handler body is
  itself a ``try`` with a broad ``except``, or it consists solely of
  calls to a same-class guard method (one level of indirection, e.g.
  ``self._guard(self._route_get)``) that contains one.  An escaping
  exception kills the connection mid-response instead of producing a
  well-formed 4xx/5xx.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from ..findings import Finding

RULE = "error-contract"


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for t in types:
        if isinstance(t, ast.Name) and t.id in ("Exception", "BaseException"):
            return True
    return False


def _contains_broad_try(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Try) and any(
            _is_broad_handler(h) for h in node.handlers
        ):
            return True
    return False


def _catches_value_error(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return False
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    return any(isinstance(t, ast.Name) and t.id == "ValueError" for t in types)


def _returns_two(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if (
            isinstance(node, ast.Return)
            and isinstance(node.value, ast.Constant)
            and node.value.value == 2
        ):
            return True
    return False


def _check_cli_main(source, findings: List[Finding]) -> None:
    main = None
    for stmt in source.tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "main":
            main = stmt
            break
    if main is None:
        return
    for node in ast.walk(main):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            if _catches_value_error(handler) and _returns_two(handler):
                return
    findings.append(
        Finding(
            rule=RULE,
            path=source.path,
            line=main.lineno,
            message=(
                "main() must map ValueError to exit code 2 (an "
                "'except ValueError' handler returning 2); subcommands "
                "signal bad input by raising ValueError"
            ),
            symbol="main",
        )
    )


def _strip_docstring(body: List[ast.stmt]) -> List[ast.stmt]:
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        return body[1:]
    return body


def _guard_call_target(stmt: ast.stmt) -> Optional[str]:
    """``self._guard(...)`` as a bare statement or return -> ``"_guard"``."""
    value: Optional[ast.expr] = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Return):
        value = stmt.value
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and isinstance(value.func.value, ast.Name)
        and value.func.value.id == "self"
    ):
        return value.func.attr
    return None


def _check_http_handlers(source, findings: List[Finding]) -> None:
    for cls in ast.walk(source.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods: Dict[str, ast.FunctionDef] = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)
        }
        for name, method in methods.items():
            if not name.startswith("do_"):
                continue
            if _handler_is_sealed(method, methods):
                continue
            findings.append(
                Finding(
                    rule=RULE,
                    path=source.path,
                    line=method.lineno,
                    message=(
                        f"HTTP handler {name} may let exceptions escape the "
                        f"handler boundary; wrap the body in a broad "
                        f"try/except or route through a guard method that "
                        f"has one"
                    ),
                    symbol=f"{cls.name}.{name}",
                )
            )


def _handler_is_sealed(
    method: ast.FunctionDef, methods: Dict[str, ast.FunctionDef]
) -> bool:
    body = _strip_docstring(method.body)
    if not body:
        return False
    # Direct form: the whole body is one broad try/except.
    if len(body) == 1 and isinstance(body[0], ast.Try):
        return any(_is_broad_handler(h) for h in body[0].handlers)
    # Indirect form: every statement routes through a guard method that
    # contains a broad try/except.
    for stmt in body:
        target = _guard_call_target(stmt)
        if target is None:
            return False
        guard = methods.get(target)
        if guard is None or not _contains_broad_try(guard):
            return False
    return True


def run(source) -> List[Finding]:
    findings: List[Finding] = []
    posix = source.path.replace("\\", "/")
    if posix.endswith("cli.py"):
        _check_cli_main(source, findings)
    if posix.endswith("http.py"):
        _check_http_handlers(source, findings)
    return findings
