"""dtype-discipline: the float32 hot path must not silently promote.

The iFDK pipeline carries projections and volumes as float32; a stray
float64 intermediate doubles memory traffic and breaks the golden
bit-identity hashes.  The pass flags, in the kernel/driver scope:

* dtype-less array constructors — ``np.arange``, ``np.zeros``,
  ``np.ones``, ``np.empty``, ``np.full``, ``np.linspace`` default to
  float64 (or a platform-dependent integer type); every constructor on
  the hot path must state its dtype.  An explicit ``dtype=np.float64``
  is *allowed*: stated intent is not silent promotion.
* ``np.float64(...)`` scalars used as arithmetic operands — unlike bare
  Python floats (which are weak-typed and preserve a float32 array's
  dtype), a NumPy float64 scalar is strongly typed and promotes the
  whole expression.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..findings import Finding
from .determinism import _enclosing_symbol

RULE = "dtype-discipline"

_CONSTRUCTORS = {"arange", "zeros", "ones", "empty", "full", "linspace"}


def _np_attr(node: ast.AST) -> Optional[str]:
    """``np.arange`` / ``numpy.arange`` -> ``"arange"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    ):
        return node.attr
    return None


def run(source) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            attr = _np_attr(node.func)
            if attr in _CONSTRUCTORS:
                has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
                if not has_dtype:
                    findings.append(
                        Finding(
                            rule=RULE,
                            path=source.path,
                            line=node.lineno,
                            message=(
                                f"np.{attr} without an explicit dtype defaults "
                                f"to float64 on the float32 hot path; pass "
                                f"dtype= explicitly"
                            ),
                            symbol=_enclosing_symbol(source.tree, node.lineno),
                        )
                    )
        elif isinstance(node, ast.BinOp):
            for operand in (node.left, node.right):
                if (
                    isinstance(operand, ast.Call)
                    and _np_attr(operand.func) == "float64"
                ):
                    findings.append(
                        Finding(
                            rule=RULE,
                            path=source.path,
                            line=operand.lineno,
                            message=(
                                "np.float64 scalar operand promotes float32 "
                                "arrays to float64; use a bare Python float "
                                "(weak-typed) or np.float32"
                            ),
                            symbol=_enclosing_symbol(source.tree, operand.lineno),
                        )
                    )
    return findings
