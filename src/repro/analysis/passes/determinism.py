"""determinism: numeric paths must replay bit-identically.

The reconstruction contract (backends, scenarios, streaming) is that the
same inputs produce the same float32 volume, byte for byte — the
conformance suite and the golden hashes depend on it.  Three constructs
silently break that:

* legacy ``np.random.*`` global-state calls (``seed``, ``rand``,
  ``normal``, ...) — hidden global state shared across call sites; the
  project uses explicitly seeded ``np.random.default_rng`` /
  ``Generator`` objects instead;
* the stdlib ``random`` module's global functions — same problem, plus
  thread-unsafe state (explicit ``random.Random(seed)`` instances pass);
* wall-clock reads (``time.time``, ``time.time_ns``, ``datetime.now``,
  ``utcnow``, ``date.today``) — results must not depend on when the run
  happened.  Monotonic duration clocks (``perf_counter``,
  ``monotonic``) are fine: they time work, they never enter the data.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..findings import Finding

RULE = "determinism"

#: np.random attributes that construct explicitly seeded state — allowed.
_SEEDED_FACTORIES = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}

#: stdlib random attributes that construct isolated state — allowed.
_RANDOM_FACTORIES = {"Random", "SystemRandom"}

_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "localtime"),
    ("time", "gmtime"),
    ("time", "ctime"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``np.random.seed`` -> ["np", "random", "seed"]; None if not a chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _enclosing_symbol(tree: ast.Module, lineno: int) -> str:
    symbol = ""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            end = getattr(node, "end_lineno", node.lineno)
            if node.lineno <= lineno <= end:
                symbol = node.name if not symbol else f"{symbol}.{node.name}"
    return symbol


def run(source) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if not chain:
            continue
        message = None
        # np.random.<fn>(...) / numpy.random.<fn>(...)
        if (
            len(chain) >= 3
            and chain[0] in ("np", "numpy")
            and chain[1] == "random"
            and chain[2] not in _SEEDED_FACTORIES
        ):
            message = (
                f"np.random.{chain[2]} uses hidden global RNG state; use an "
                f"explicitly seeded np.random.default_rng(...) generator"
            )
        # random.<fn>(...) from the stdlib global instance.
        elif (
            len(chain) == 2
            and chain[0] == "random"
            and chain[1] not in _RANDOM_FACTORIES
        ):
            message = (
                f"random.{chain[1]} uses the global stdlib RNG; use an "
                f"explicitly seeded random.Random(seed) instance"
            )
        # Wall-clock reads.
        elif len(chain) >= 2 and (chain[-2], chain[-1]) in _WALL_CLOCK:
            message = (
                f"wall-clock read {'.'.join(chain)}() makes numeric output "
                f"depend on when the run happened; thread a timestamp in "
                f"from the caller"
            )
        if message:
            findings.append(
                Finding(
                    rule=RULE,
                    path=source.path,
                    line=node.lineno,
                    message=message,
                    symbol=_enclosing_symbol(source.tree, node.lineno),
                )
            )
    return findings
