"""spawn-safety: work shipped across a process boundary must pickle.

Callables handed to a ``ProcessPoolExecutor`` (as ``submit(fn, ...)``
targets or as the pool's ``initializer=``) are pickled by reference: they
must be module-level, closure-free functions.  Lambdas, nested ``def``s
and bound methods either fail to pickle or silently capture the parent's
state at fork time.  The pass flags:

* ``submit`` first arguments that are lambdas, ``self.<method>`` bound
  methods, or names bound to a def nested inside the calling function;
* the same shapes passed as ``initializer=`` when constructing a pool;
* ``multiprocessing.get_context("fork")`` / ``set_start_method("fork")``
  — the project contract is spawn-safe code, and fork start hides
  pickling bugs until the method changes.

A receiver counts as a process pool when it *provably* is one: a direct
``ProcessPoolExecutor(...)`` call, a local assigned from one (or from a
same-class helper annotated ``-> ProcessPoolExecutor``), or a ``self``
attribute whose annotation names ``ProcessPoolExecutor``.  Thread pools
(``WorkerPool``, ``ThreadPoolExecutor``) are deliberately exempt: their
closures never cross a process boundary, and the parallel backend relies
on that.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..findings import Finding

RULE = "spawn-safety"

_POOL_NAME = "ProcessPoolExecutor"
_FORK_SETTERS = {"get_context", "set_start_method"}


def _annotation_names_pool(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == _POOL_NAME:
            return True
        if isinstance(node, ast.Attribute) and node.attr == _POOL_NAME:
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if _POOL_NAME in node.value:
                return True
    return False


def _is_pool_constructor(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and (
            (isinstance(node.func, ast.Name) and node.func.id == _POOL_NAME)
            or (isinstance(node.func, ast.Attribute) and node.func.attr == _POOL_NAME)
        )
    )


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ClassInfo:
    """What one class statically reveals about its process pools."""

    def __init__(self, cls: ast.ClassDef):
        self.pool_attrs: Set[str] = set()
        self.pool_methods: Set[str] = set()
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _annotation_names_pool(stmt.returns):
                    self.pool_methods.add(stmt.name)
                for node in ast.walk(stmt):
                    if isinstance(node, ast.AnnAssign):
                        name = _self_attr(node.target)
                        if name and _annotation_names_pool(node.annotation):
                            self.pool_attrs.add(name)
                    elif isinstance(node, ast.Assign) and _is_pool_constructor(
                        node.value
                    ):
                        for tgt in node.targets:
                            name = _self_attr(tgt)
                            if name:
                                self.pool_attrs.add(name)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if _annotation_names_pool(stmt.annotation):
                    self.pool_attrs.add(stmt.target.id)


def _collect_module_defs(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(stmt.name)
    return names


class _FunctionContext:
    """Local bindings inside the function owning a submit call."""

    def __init__(self, func: ast.AST, cls_info: Optional[_ClassInfo]):
        self.pool_locals: Set[str] = set()
        self.nested_defs: Set[str] = set()
        self.lambda_locals: Set[str] = set()
        for node in ast.walk(func):
            if node is func:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.nested_defs.add(node.name)
            elif isinstance(node, ast.Assign):
                value = node.value
                is_pool = _is_pool_constructor(value)
                if not is_pool and cls_info and isinstance(value, ast.Call):
                    method = _self_attr(value.func)
                    is_pool = method in cls_info.pool_methods
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        if is_pool:
                            self.pool_locals.add(tgt.id)
                        if isinstance(value, ast.Lambda):
                            self.lambda_locals.add(tgt.id)


def _receiver_is_pool(
    receiver: ast.AST, cls_info: Optional[_ClassInfo], ctx: _FunctionContext
) -> bool:
    if _is_pool_constructor(receiver):
        return True
    if isinstance(receiver, ast.Name) and receiver.id in ctx.pool_locals:
        return True
    name = _self_attr(receiver)
    if name is not None and cls_info is not None and name in cls_info.pool_attrs:
        return True
    if isinstance(receiver, ast.Call) and cls_info is not None:
        method = _self_attr(receiver.func)
        if method in cls_info.pool_methods:
            return True
    return False


def _callable_problem(
    arg: ast.AST, module_defs: Set[str], ctx: _FunctionContext
) -> Optional[str]:
    """Return a description when ``arg`` cannot cross a process boundary."""
    if isinstance(arg, ast.Lambda):
        return "a lambda"
    name = _self_attr(arg)
    if name is not None:
        return f"the bound method self.{name}"
    if isinstance(arg, ast.Name):
        if arg.id in ctx.nested_defs:
            return f"the nested function {arg.id!r}"
        if arg.id in ctx.lambda_locals:
            return f"{arg.id!r}, a local bound to a lambda"
        # Module-level defs and imported names pickle by reference; an
        # unknown name gets the benefit of the doubt.
        return None
    if isinstance(arg, ast.Call):
        func = arg.func
        is_partial = (isinstance(func, ast.Name) and func.id == "partial") or (
            isinstance(func, ast.Attribute) and func.attr == "partial"
        )
        if is_partial and arg.args:
            return _callable_problem(arg.args[0], module_defs, ctx)
    return None


def _check_submit(
    call: ast.Call,
    source,
    symbol: str,
    module_defs: Set[str],
    ctx: _FunctionContext,
    findings: List[Finding],
) -> None:
    if not call.args:
        return
    problem = _callable_problem(call.args[0], module_defs, ctx)
    if problem:
        findings.append(
            Finding(
                rule=RULE,
                path=source.path,
                line=call.lineno,
                message=(
                    f"process-pool submit target is {problem}; only "
                    f"module-level functions pickle across the process "
                    f"boundary"
                ),
                symbol=symbol,
            )
        )


def _check_constructor(
    call: ast.Call,
    source,
    symbol: str,
    module_defs: Set[str],
    ctx: _FunctionContext,
    findings: List[Finding],
) -> None:
    for kw in call.keywords:
        if kw.arg == "initializer":
            problem = _callable_problem(kw.value, module_defs, ctx)
            if problem:
                findings.append(
                    Finding(
                        rule=RULE,
                        path=source.path,
                        line=call.lineno,
                        message=(
                            f"process-pool initializer is {problem}; only "
                            f"module-level functions pickle across the "
                            f"process boundary"
                        ),
                        symbol=symbol,
                    )
                )


def _check_fork(call: ast.Call, source, symbol: str, findings: List[Finding]) -> None:
    func = call.func
    fname = None
    if isinstance(func, ast.Attribute):
        fname = func.attr
    elif isinstance(func, ast.Name):
        fname = func.id
    if fname not in _FORK_SETTERS or not call.args:
        return
    first = call.args[0]
    if isinstance(first, ast.Constant) and first.value == "fork":
        findings.append(
            Finding(
                rule=RULE,
                path=source.path,
                line=call.lineno,
                message=(
                    f"{fname}('fork') breaks the spawn-safety contract; "
                    f"fork start masks pickling bugs and is unsafe with "
                    f"threads"
                ),
                symbol=symbol,
            )
        )


def run(source) -> List[Finding]:
    findings: List[Finding] = []
    module_defs = _collect_module_defs(source.tree)

    def scan_function(func: ast.AST, cls_info: Optional[_ClassInfo], symbol: str):
        ctx = _FunctionContext(func, cls_info)
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            _check_fork(node, source, symbol, findings)
            if _is_pool_constructor(node):
                _check_constructor(node, source, symbol, module_defs, ctx, findings)
            if isinstance(node.func, ast.Attribute) and node.func.attr == "submit":
                if _receiver_is_pool(node.func.value, cls_info, ctx):
                    _check_submit(node, source, symbol, module_defs, ctx, findings)

    for stmt in source.tree.body:
        if isinstance(stmt, ast.ClassDef):
            info = _ClassInfo(stmt)
            for method in stmt.body:
                if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan_function(method, info, f"{stmt.name}.{method.name}")
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(stmt, None, stmt.name)
    return findings
