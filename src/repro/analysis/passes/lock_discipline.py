"""lock-discipline: guarded attributes must be touched under their lock.

An instance attribute whose assignment in ``__init__`` (or whose
dataclass field declaration) carries a trailing ``# guarded-by: <lock>``
comment may only be read or written:

* lexically inside ``with self.<lock>:`` in the same method, or
* in ``__init__`` itself (the object is not yet shared), or
* in a method whose ``def`` line carries ``# caller-locked`` — the
  documented contract that the caller already holds the lock.

The special guard name ``caller`` declares "this whole object is
serialized by its owner's lock" (queues, fairness state, metric structs
owned by the service).  It is documentation: the pass records it but
enforces nothing, because the owning object's discipline is what keeps it
safe.

Nested ``def``s are analyzed with an *empty* held-lock set: a closure
defined under ``with self._lock:`` typically runs later, on another
thread, when the lock is no longer held.  Lambdas inherit the enclosing
held set — they are overwhelmingly called inline (sort keys, defaults).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..findings import Finding

RULE = "lock-discipline"

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")
_CALLER_LOCKED_RE = re.compile(r"#\s*caller-locked\b")

#: Guard name meaning "serialized by the owning object" — documented, not
#: enforced here.
CALLER_GUARD = "caller"

_EMPTY: FrozenSet[str] = frozenset()


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guard_on_line(source, lineno: int) -> Optional[str]:
    match = _GUARDED_BY_RE.search(source.line_text(lineno))
    return match.group("lock") if match else None


def _collect_guarded(source, cls: ast.ClassDef) -> Dict[str, str]:
    """Map attribute name -> guard lock name for one class."""
    guarded: Dict[str, str] = {}
    # Class-level declarations (dataclass fields and class attributes).
    for stmt in cls.body:
        target = None
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            target = stmt.target.id
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            target = stmt.targets[0].id
        if target is not None:
            guard = _guard_on_line(source, stmt.lineno)
            if guard:
                guarded[target] = guard
    # `self.X = ...` annotations inside __init__.
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for tgt in targets:
                    name = _self_attr(tgt)
                    if name is None:
                        continue
                    guard = _guard_on_line(source, node.lineno)
                    if guard:
                        guarded[name] = guard
    return guarded


class _MethodScanner:
    """Lexically track held ``with self.<lock>`` blocks through one method."""

    def __init__(self, source, cls_name: str, method: ast.FunctionDef, guarded):
        self.source = source
        self.cls_name = cls_name
        self.method = method
        self.guarded = guarded
        self.findings: List[Finding] = []
        self._flagged: set = set()

    def scan(self) -> List[Finding]:
        for stmt in self.method.body:
            self._visit(stmt, _EMPTY)
        return self.findings

    def _visit(self, node: ast.AST, held: FrozenSet[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def usually escapes the lock scope (runs later on a
            # worker thread), so it gets no credit for enclosing `with`s.
            for child in node.body:
                self._visit(child, _EMPTY)
            return
        if isinstance(node, ast.With):
            acquired = set(held)
            for item in node.items:
                self._visit(item.context_expr, held)
                name = _self_attr(item.context_expr)
                if name is not None:
                    acquired.add(name)
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, held)
            inner = frozenset(acquired)
            for child in node.body:
                self._visit(child, inner)
            return
        name = _self_attr(node)
        if name is not None:
            guard = self.guarded.get(name)
            if guard is not None and guard != CALLER_GUARD and guard not in held:
                self._flag(node, name, guard)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _flag(self, node: ast.AST, attr: str, guard: str) -> None:
        key = (node.lineno, attr)
        if key in self._flagged:
            return
        self._flagged.add(key)
        self.findings.append(
            Finding(
                rule=RULE,
                path=self.source.path,
                line=node.lineno,
                message=(
                    f"self.{attr} is guarded by self.{guard} but accessed "
                    f"without holding it"
                ),
                symbol=f"{self.cls_name}.{self.method.name}",
            )
        )


def run(source) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        guarded = _collect_guarded(source, node)
        if not guarded:
            continue
        enforced = {k: v for k, v in guarded.items() if v != CALLER_GUARD}
        if not enforced:
            continue
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__":
                continue
            if _CALLER_LOCKED_RE.search(source.line_text(stmt.lineno)):
                continue
            scanner = _MethodScanner(source, node.name, stmt, enforced)
            findings.extend(scanner.scan())
    return findings
