"""The five project-specific lint passes.

Each pass module exposes two names consumed by the engine:

``RULE``
    The rule id reported in findings, used in scopes, suppressions and
    the baseline.

``run(source: SourceFile) -> List[Finding]``
    Analyze one parsed file and return its findings.  Passes are pure
    functions of the source text + AST; all filtering (scope,
    suppression, baseline) happens in the engine.
"""

from __future__ import annotations

from . import (
    determinism,
    dtype_discipline,
    error_contract,
    lock_discipline,
    spawn_safety,
)

#: Engine dispatch order (stable so output ordering is deterministic).
ALL_PASSES = (
    lock_discipline,
    spawn_safety,
    determinism,
    dtype_discipline,
    error_contract,
)

RULES = tuple(p.RULE for p in ALL_PASSES)

__all__ = ["ALL_PASSES", "RULES"]
