"""The lint engine: file discovery, pass dispatch, suppressions, baseline.

The engine is deliberately small: it turns paths into parsed
:class:`SourceFile` objects, hands each to every in-scope pass, and
filters the yielded findings through the inline suppressions and the
baseline.  All project knowledge lives in the passes
(:mod:`repro.analysis.passes`); all policy about *where* passes run lives
in :class:`~repro.analysis.config.LintConfig`.

Exit-code contract (shared by ``repro lint`` and ``python -m
repro.analysis``):

* ``0`` — no unsuppressed, non-baselined findings;
* ``1`` — findings exist;
* ``2`` — the *invocation* is broken: missing paths, malformed config or
  baseline, unparseable source (raised as :class:`ValueError` and mapped
  by the CLI convention).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .config import LintConfig, load_baseline
from .findings import Finding, Suppression, apply_suppressions, parse_suppressions

__all__ = ["LintResult", "SourceFile", "lint_paths", "lint_sources", "format_text"]


@dataclass
class SourceFile:
    """One parsed source file handed to every pass."""

    path: str
    lines: List[str]
    tree: ast.Module
    suppressions: List[Suppression] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, text: str) -> "tuple":
        """Parse source text; returns ``(source_file, suppression_findings)``."""
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            raise ValueError(f"cannot parse {path}: {exc}") from exc
        lines = text.splitlines()
        suppressions, findings = parse_suppressions(lines, path)
        return cls(path=path, lines=lines, tree=tree, suppressions=suppressions), findings

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.clean else 1


def _discover(paths: Sequence) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    if not paths:
        raise ValueError("no paths given; point the linter at files or packages")
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            raise ValueError(f"lint path {path} does not exist")
    # Stable order, no duplicates: output must be diffable run to run.
    seen = set()
    unique: List[Path] = []
    for path in files:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def lint_sources(
    sources: Iterable[SourceFile],
    config: LintConfig,
    *,
    extra_findings: Optional[List[Finding]] = None,
) -> LintResult:
    """Run every configured pass over already-parsed sources."""
    from .passes import ALL_PASSES  # late: passes import this module's types

    result = LintResult()
    all_findings: List[Finding] = list(extra_findings or [])
    for source in sources:
        result.files_checked += 1
        findings: List[Finding] = []
        for lint_pass in ALL_PASSES:
            if config.rule(lint_pass.RULE).applies_to(source.path):
                findings.extend(lint_pass.run(source))
        all_findings.extend(apply_suppressions(findings, source.suppressions))
    baseline_keys = [dict(entry) for entry in config.baseline]
    for finding in sorted(all_findings, key=Finding.sort_key):
        if finding.baseline_key() in baseline_keys:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result


def lint_paths(
    paths: Sequence,
    *,
    config: Optional[LintConfig] = None,
    config_file=None,
    baseline_file=None,
) -> LintResult:
    """Lint files/directories; the library entry behind ``repro lint``."""
    if config is None:
        config = (
            LintConfig.from_file(config_file)
            if config_file is not None
            else LintConfig.default()
        )
    if baseline_file is not None:
        config.baseline = load_baseline(baseline_file)
    sources: List[SourceFile] = []
    extra: List[Finding] = []
    for path in _discover(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ValueError(f"cannot read {path}: {exc}") from exc
        source, suppression_findings = SourceFile.parse(str(path), text)
        sources.append(source)
        extra.extend(suppression_findings)
    return lint_sources(sources, config, extra_findings=extra)


def format_text(result: LintResult) -> str:
    """Human-readable rendering: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    if result.baselined:
        lines.append(f"{len(result.baselined)} baselined finding(s) not shown")
    lines.append(
        f"{len(result.findings)} finding(s) in {result.files_checked} file(s)"
    )
    return "\n".join(lines)


def format_json(result: LintResult) -> Dict[str, object]:
    """Machine-readable rendering for tooling and the example script."""
    return {
        "findings": [finding.as_dict() for finding in result.findings],
        "baselined": [finding.as_dict() for finding in result.baselined],
        "files_checked": result.files_checked,
    }
