"""``python -m repro.analysis`` — the standalone lint entry point.

Mirrors ``repro lint`` (same flags, same exit-code contract) for
environments where only the package is on ``PYTHONPATH``:

* ``0`` — clean, ``1`` — findings, ``2`` — bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .engine import format_json, format_text, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the project-invariant lint passes.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument("--config", help="JSON config overriding rule scopes")
    parser.add_argument("--baseline", help="JSON baseline of accepted findings")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        result = lint_paths(
            args.paths, config_file=args.config, baseline_file=args.baseline
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(format_json(result), indent=2))
    else:
        print(format_text(result))
    return result.exit_code()


if __name__ == "__main__":
    sys.exit(main())
