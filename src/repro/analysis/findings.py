"""Finding and suppression primitives shared by every lint pass.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects: passes yield them, the engine filters them through
inline suppressions and the baseline, the CLI renders them.  Everything is
deterministic and sortable so lint output is stable across runs — the
self-clean gate diffs against an exact expectation.

Inline suppressions use the project syntax::

    something_flagged()  # repro-lint: disable=<rule>[,<rule>] -- <reason>

The reason after ``--`` is **required**: a suppression without one is
itself a finding (rule ``suppression``), so "silenced because why?" can
never land unreviewed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

__all__ = [
    "Finding",
    "Suppression",
    "SUPPRESSION_RULE",
    "apply_suppressions",
    "parse_suppressions",
]

#: The meta-rule reported for malformed suppression comments.
SUPPRESSION_RULE = "suppression"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s-]+?)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    symbol: str = ""

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        symbol = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule}: {self.message}{symbol}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "symbol": self.symbol,
        }

    def baseline_key(self) -> Dict[str, str]:
        """The line-number-free identity used by baseline matching.

        Baselines deliberately exclude line numbers so an unrelated edit
        above a baselined finding does not resurrect it.
        """
        return {"rule": self.rule, "path": self.path, "message": self.message}


@dataclass
class Suppression:
    """One inline ``repro-lint: disable=`` comment."""

    line: int
    rules: Set[str] = field(default_factory=set)
    reason: str = ""
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        return finding.line == self.line and (
            "all" in self.rules or finding.rule in self.rules
        )


def parse_suppressions(source_lines: List[str], path: str) -> "tuple":
    """Extract suppressions from source lines.

    Returns ``(suppressions, findings)``: the usable suppressions plus a
    ``suppression`` finding for each comment that omits the required
    ``-- <reason>`` trailer (such comments suppress nothing).
    """
    suppressions: List[Suppression] = []
    findings: List[Finding] = []
    for lineno, text in enumerate(source_lines, start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rules = {
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        }
        reason = (match.group("reason") or "").strip()
        if not reason:
            findings.append(
                Finding(
                    rule=SUPPRESSION_RULE,
                    path=path,
                    line=lineno,
                    message=(
                        "suppression is missing its reason; write "
                        "'# repro-lint: disable=<rule> -- <why>'"
                    ),
                )
            )
            continue
        suppressions.append(Suppression(line=lineno, rules=rules, reason=reason))
    return suppressions, findings


def apply_suppressions(
    findings: List[Finding], suppressions: List[Suppression]
) -> List[Finding]:
    """Drop findings covered by a same-line suppression for their rule."""
    kept: List[Finding] = []
    for finding in findings:
        suppressed = False
        for suppression in suppressions:
            if suppression.matches(finding):
                suppression.used = True
                suppressed = True
                break
        if not suppressed:
            kept.append(finding)
    return kept
