"""A lightweight dynamic lock-order sanitizer (opt-in, test-time).

Deadlocks need two ingredients: two locks and two threads that acquire
them in opposite orders.  The second ingredient is timing-dependent and
rarely reproduces under test; the *order inversion* itself is not — any
run that takes ``A`` then ``B`` on one code path and ``B`` then ``A`` on
another has proven the hazard, whether or not the threads collided.

:class:`LockOrderSanitizer` wraps ``threading.Lock``/``RLock`` objects in
a tracking proxy, records the directed acquisition graph (an edge
``A -> B`` whenever ``B`` is acquired while ``A`` is held, on any
thread), and reports an inversion the moment both ``A -> B`` and
``B -> A`` have been observed — with the acquisition stack of *both*
sides, so the two conflicting code paths are immediately readable.

Enable it for a test run with::

    REPRO_LOCK_SANITIZER=1 python -m pytest -m "serving or fairness"

(``tests/conftest.py`` installs the factory shim when the variable is
set and fails the session if any inversion was recorded).  Locks are
identified by a per-wrapper monotonic token, never ``id()`` — CPython
reuses addresses after garbage collection, and id-keyed graphs grow
phantom edges between unrelated locks.

Reentrant acquisition of an ``RLock`` the thread already holds records
no edges: re-entry cannot deadlock against another lock.
"""

from __future__ import annotations

import itertools
import os
import sys
import threading
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["LockOrderSanitizer", "Inversion", "enabled_from_env", "ENV_VAR"]

ENV_VAR = "REPRO_LOCK_SANITIZER"

#: Path fragments identifying frames that belong to this project (and the
#: analysis package itself, which must never track its own locks).
_PROJECT_FRAGMENT = os.sep + "repro" + os.sep
_SELF_FRAGMENT = os.sep + "analysis" + os.sep


def enabled_from_env() -> bool:
    return os.environ.get(ENV_VAR, "") == "1"


@dataclass
class Inversion:
    """One detected lock-order inversion: A->B and B->A both observed."""

    first_label: str
    second_label: str
    forward_stack: str
    reverse_stack: str

    def render(self) -> str:
        return (
            f"lock-order inversion between {self.first_label} and "
            f"{self.second_label}\n"
            f"--- acquired {self.second_label} while holding "
            f"{self.first_label} at:\n{self.forward_stack}"
            f"--- acquired {self.first_label} while holding "
            f"{self.second_label} at:\n{self.reverse_stack}"
        )


class _TrackedLock:
    """Proxy around a real Lock/RLock that reports acquisitions."""

    def __init__(self, sanitizer: "LockOrderSanitizer", raw, token: int, label: str):
        self._san_sanitizer = sanitizer
        self._san_raw = raw
        self._san_token = token
        self._san_label = label

    def acquire(self, blocking=True, timeout=-1):
        got = self._san_raw.acquire(blocking, timeout)
        if got:
            self._san_sanitizer._on_acquire(self)
        return got

    def release(self):
        self._san_sanitizer._on_release(self)
        self._san_raw.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc_value, tb):
        self.release()
        return False

    def locked(self):
        return self._san_raw.locked()

    def __getattr__(self, name):
        # Delegate everything else (RLock._is_owned, Condition's
        # _release_save/_acquire_restore probing, ...) to the real lock.
        return getattr(self._san_raw, name)

    def __repr__(self):
        return f"<tracked {self._san_label} {self._san_raw!r}>"


class LockOrderSanitizer:
    """Record the cross-thread lock acquisition graph; detect inversions."""

    def __init__(self, stack_limit: int = 12):
        self._stack_limit = stack_limit
        self._tokens = itertools.count(1)
        self._tls = threading.local()
        # Internal guard: a *raw* lock, invisible to tracking.
        self._guard = threading.Lock()
        # (held_token, acquired_token) -> formatted stack at first sight.
        self._edges: Dict[Tuple[int, int], str] = {}
        self._labels: Dict[int, str] = {}
        self._inversions: List[Inversion] = []
        self._saved_factories: Optional[Tuple] = None

    # -- wrapping ---------------------------------------------------------

    def wrap(self, lock, label: str = "") -> _TrackedLock:
        """Wrap one lock object in a tracking proxy."""
        token = next(self._tokens)
        label = label or f"lock#{token}"
        with self._guard:
            # Two locks born on the same source line (e.g. two Counter
            # instances) must stay distinguishable in inversion reports.
            if label in self._labels.values():
                label = f"{label}#{token}"
            self._labels[token] = label
        return _TrackedLock(self, lock, token, label)

    def install(self) -> None:
        """Patch ``threading.Lock``/``RLock`` to hand out tracked locks.

        Only locks created from project code are wrapped (decided by
        walking the creating frames); stdlib internals get raw locks so
        interpreter machinery is never perturbed.
        """
        if self._saved_factories is not None:
            return
        raw_lock, raw_rlock = threading.Lock, threading.RLock
        self._saved_factories = (raw_lock, raw_rlock)

        def make(raw_factory, kind):
            def factory(*args, **kwargs):
                lock = raw_factory(*args, **kwargs)
                site = _project_creation_site()
                if site is None:
                    return lock
                return self.wrap(lock, label=f"{kind}@{site}")

            return factory

        threading.Lock = make(raw_lock, "Lock")
        threading.RLock = make(raw_rlock, "RLock")

    def uninstall(self) -> None:
        if self._saved_factories is None:
            return
        threading.Lock, threading.RLock = self._saved_factories
        self._saved_factories = None

    # -- tracking ---------------------------------------------------------

    def _held(self) -> List[_TrackedLock]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def _on_acquire(self, lock: _TrackedLock) -> None:
        held = self._held()
        reentrant = any(h._san_token == lock._san_token for h in held)
        if not reentrant and held:
            stack = "".join(
                traceback.format_stack(sys._getframe(2), limit=self._stack_limit)
            )
            with self._guard:
                for prior in held:
                    key = (prior._san_token, lock._san_token)
                    if key in self._edges:
                        continue
                    self._edges[key] = stack
                    reverse = (lock._san_token, prior._san_token)
                    if reverse in self._edges:
                        self._inversions.append(
                            Inversion(
                                first_label=self._labels[prior._san_token],
                                second_label=self._labels[lock._san_token],
                                forward_stack=stack,
                                reverse_stack=self._edges[reverse],
                            )
                        )
        held.append(lock)

    def _on_release(self, lock: _TrackedLock) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i]._san_token == lock._san_token:
                del held[i]
                return

    # -- reporting --------------------------------------------------------

    @property
    def inversions(self) -> List[Inversion]:
        with self._guard:
            return list(self._inversions)

    @property
    def edge_count(self) -> int:
        with self._guard:
            return len(self._edges)

    def report(self) -> str:
        inversions = self.inversions
        if not inversions:
            return (
                f"lock sanitizer: no inversions "
                f"({self.edge_count} acquisition edge(s) observed)"
            )
        parts = [
            f"lock sanitizer: {len(inversions)} lock-order inversion(s) detected"
        ]
        parts.extend(inv.render() for inv in inversions)
        return "\n".join(parts)


def _project_creation_site() -> Optional[str]:
    """Nearest project frame that created the lock, or None for stdlib."""
    frame = sys._getframe(1)
    for _ in range(20):
        if frame is None:
            return None
        filename = frame.f_code.co_filename
        if _PROJECT_FRAGMENT in filename and _SELF_FRAGMENT not in filename:
            return f"{os.path.basename(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return None
