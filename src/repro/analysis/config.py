"""Configuration for the lint engine: rule scopes and the baseline.

The defaults below encode the project's invariants — which layers each
pass patrols — and an external JSON config can narrow, widen or disable
any of them (``repro lint --config lint.json``)::

    {
      "rules": {
        "determinism": {"enabled": true, "include": ["*/backends/*.py"]},
        "dtype-discipline": {"enabled": false}
      }
    }

Scopes are ``fnmatch`` globs matched against the POSIX form of each
file's path, so configs work identically for absolute paths, relative
paths and fixture trees.  A malformed config (bad JSON, unknown rule,
wrong types) raises :class:`ValueError` — the CLI convention maps that to
exit code 2, distinct from "findings exist" (exit 1).

The baseline file is a JSON list of line-number-free finding identities
(see :meth:`~repro.analysis.findings.Finding.baseline_key`): findings
matching an entry are reported as baselined, not as failures.  The
checked-in ``lint-baseline.json`` is empty — every genuine finding on the
tree was fixed, and the file exists so future unavoidable debt has an
audited place to live.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import PurePath
from typing import Dict, List, Optional

__all__ = ["LintConfig", "RuleConfig", "DEFAULT_SCOPES", "load_baseline"]

#: Default file scopes per rule: fnmatch globs over POSIX-style paths.
#: An empty include list means "every analyzed file".
DEFAULT_SCOPES: Dict[str, List[str]] = {
    # Annotation-driven: only files carrying `# guarded-by:` comments
    # produce obligations, so the pass safely runs everywhere.
    "lock-discipline": [],
    # Process pools live in the dispatcher and the parallel backend.
    "spawn-safety": ["*/service/*.py", "*/backends/*.py"],
    # Numeric paths that must replay bit-identically.
    "determinism": [
        "*/backends/*.py",
        "*/scenarios/*.py",
        "*/streaming/*.py",
    ],
    # The float32 hot paths: backend kernels and the filter/backproject
    # drivers.
    "dtype-discipline": [
        "*/backends/*.py",
        "*/core/filtering.py",
        "*/core/backprojection.py",
    ],
    # The CLI's ValueError -> exit 2 contract and the HTTP handler boundary.
    "error-contract": ["*/cli.py", "*/service/http.py"],
}

_KNOWN_RULES = tuple(DEFAULT_SCOPES)


@dataclass
class RuleConfig:
    """One pass's switch and file scope."""

    enabled: bool = True
    include: List[str] = field(default_factory=list)

    def applies_to(self, path: str) -> bool:
        if not self.enabled:
            return False
        if not self.include:
            return True
        posix = PurePath(path).as_posix()
        return any(fnmatch(posix, pattern) for pattern in self.include)


@dataclass
class LintConfig:
    """Resolved configuration: per-rule scopes plus the baseline entries."""

    rules: Dict[str, RuleConfig] = field(default_factory=dict)
    baseline: List[Dict[str, str]] = field(default_factory=list)

    @classmethod
    def default(cls) -> "LintConfig":
        return cls(
            rules={
                name: RuleConfig(enabled=True, include=list(scope))
                for name, scope in DEFAULT_SCOPES.items()
            }
        )

    @classmethod
    def from_file(cls, path) -> "LintConfig":
        """Defaults overlaid with a JSON config file (ValueError on junk)."""
        try:
            text = open(path, "r", encoding="utf-8").read()
        except OSError as exc:
            raise ValueError(f"cannot read lint config {path}: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed lint config {path}: {exc}") from exc
        return cls.default().overlay(data, origin=str(path))

    def overlay(self, data, *, origin: str = "<config>") -> "LintConfig":
        """Apply a parsed config dict on top of this configuration."""
        if not isinstance(data, dict):
            raise ValueError(f"{origin}: lint config must be a JSON object")
        unknown = set(data) - {"rules"}
        if unknown:
            raise ValueError(
                f"{origin}: unknown config keys {sorted(unknown)}; "
                "expected 'rules'"
            )
        rules = data.get("rules", {})
        if not isinstance(rules, dict):
            raise ValueError(f"{origin}: 'rules' must be an object")
        for name, spec in rules.items():
            if name not in _KNOWN_RULES:
                raise ValueError(
                    f"{origin}: unknown rule {name!r}; known rules: "
                    f"{', '.join(_KNOWN_RULES)}"
                )
            if not isinstance(spec, dict):
                raise ValueError(f"{origin}: rule {name!r} must be an object")
            bad = set(spec) - {"enabled", "include"}
            if bad:
                raise ValueError(
                    f"{origin}: rule {name!r} has unknown keys {sorted(bad)}"
                )
            current = self.rules.setdefault(name, RuleConfig())
            if "enabled" in spec:
                if not isinstance(spec["enabled"], bool):
                    raise ValueError(f"{origin}: {name}.enabled must be a boolean")
                current.enabled = spec["enabled"]
            if "include" in spec:
                include = spec["include"]
                if not isinstance(include, list) or not all(
                    isinstance(pattern, str) for pattern in include
                ):
                    raise ValueError(
                        f"{origin}: {name}.include must be a list of glob strings"
                    )
                current.include = list(include)
        return self

    def rule(self, name: str) -> RuleConfig:
        return self.rules.setdefault(name, RuleConfig())


def load_baseline(path) -> List[Dict[str, str]]:
    """Load a baseline file: a JSON list of finding identities."""
    try:
        text = open(path, "r", encoding="utf-8").read()
    except OSError as exc:
        raise ValueError(f"cannot read lint baseline {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed lint baseline {path}: {exc}") from exc
    if not isinstance(data, list):
        raise ValueError(f"lint baseline {path} must be a JSON list")
    entries: List[Dict[str, str]] = []
    for i, entry in enumerate(data):
        if not isinstance(entry, dict) or not {"rule", "path", "message"} <= set(entry):
            raise ValueError(
                f"lint baseline {path} entry {i} must be an object with "
                "'rule', 'path' and 'message' keys"
            )
        entries.append(
            {
                "rule": str(entry["rule"]),
                "path": str(entry["path"]),
                "message": str(entry["message"]),
            }
        )
    return entries
