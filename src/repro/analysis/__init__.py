"""Static analysis and dynamic sanitizers for the project's invariants.

The repo's core guarantees — lock-guarded service state, spawn-safe
process dispatch, deterministic seeded noise, a float32 hot path, the
CLI/HTTP error contracts — were previously enforced only by runtime
tests.  This package checks them statically (an AST lint framework with
five project-specific passes) and dynamically (an opt-in lock-order
sanitizer), so invariant-breaking edits fail loudly at review time.

Entry points:

* ``repro lint <paths>`` / ``python -m repro.analysis <paths>`` — run
  the lint passes; exit 0 clean, 1 findings, 2 bad invocation.
* ``REPRO_LOCK_SANITIZER=1`` — ``tests/conftest.py`` installs
  :class:`~repro.analysis.locksan.LockOrderSanitizer` for the test run.

This package deliberately depends only on the standard library (``ast``,
``json``, ``threading``) so importing :mod:`repro` never pays for it.
"""

from __future__ import annotations

from .config import DEFAULT_SCOPES, LintConfig, RuleConfig, load_baseline
from .engine import LintResult, SourceFile, format_json, format_text, lint_paths, lint_sources
from .findings import SUPPRESSION_RULE, Finding, Suppression
from .locksan import ENV_VAR, Inversion, LockOrderSanitizer, enabled_from_env
from .passes import ALL_PASSES, RULES

__all__ = [
    "ALL_PASSES",
    "DEFAULT_SCOPES",
    "ENV_VAR",
    "Finding",
    "Inversion",
    "LintConfig",
    "LintResult",
    "LockOrderSanitizer",
    "RULES",
    "RuleConfig",
    "SUPPRESSION_RULE",
    "SourceFile",
    "Suppression",
    "enabled_from_env",
    "format_json",
    "format_text",
    "lint_paths",
    "lint_sources",
    "load_baseline",
]
