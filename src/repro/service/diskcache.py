"""Shared on-disk LRU cache of filtered projections.

The in-memory :class:`~repro.service.cache.FilteredProjectionCache` models
the PFS scratch reservation inside one process.  Real serving needs the
same thing *across* processes and restarts: a pilot filtered in worker
process A must be a cache hit for worker process B, and for the service
that comes back after a ``kill -9``.  :class:`OnDiskFilteredCache` provides
that as plain files under a cache directory — no daemon, no new deps:

* one ``<tag>.meta.json`` per entry (key fields + byte size + whether a
  payload is present), where ``tag`` is the same
  ``sha256(dataset_id|filter_key)`` prefix the in-memory cache uses for
  its PFS object names — the two caches agree on identity by construction;
* one ``<tag>.npz`` holding the filtered stack (data + angles) when the
  entry carries a real payload;
* **mtime is the LRU clock**: every hit touches the meta file, and
  eviction removes the oldest-mtime entries until the recorded byte sizes
  fit the capacity — the same byte-budget LRU semantics as in memory,
  except the recency order is durable and shared;
* writes are atomic (temp file + ``os.replace``), and every read tolerates
  a concurrently evicted entry by degrading to a miss — cross-process
  races cost a refilter, never corruption.

Like the in-memory cache, an entry larger than the whole capacity is
rejected up front with ``ValueError`` — no amount of eviction can make it
fit, and accepting it would immediately evict the entire cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from ..core.types import ProjectionStack
from .cache import CacheKey, CacheStatistics

__all__ = ["OnDiskFilteredCache"]

_META_SUFFIX = ".meta.json"
_PAYLOAD_SUFFIX = ".npz"


def _key_tag(key: CacheKey) -> str:
    """Entry tag: the same hash the in-memory cache's PFS objects use."""
    return hashlib.sha256(
        f"{key.dataset_id}|{key.filter_key}".encode("utf-8")
    ).hexdigest()[:16]


class OnDiskFilteredCache:
    """File-backed filtered-projection cache shared across processes.

    Duck-types the :class:`~repro.service.cache.FilteredProjectionCache`
    surface the scheduler and service use (``contains`` / ``lookup`` /
    ``insert`` / ``get_filtered`` / ``used_bytes`` / ``stats``), so either
    can be plugged into :class:`~repro.service.service.ReconstructionService`.
    ``stats`` are process-local (each process counts its own hits and
    misses); the *entries* are shared.
    """

    def __init__(self, cache_dir, capacity_bytes: int = 256 * 1024**3):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.capacity_bytes = int(capacity_bytes)
        self.stats = CacheStatistics()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _meta_path(self, tag: str) -> Path:
        return self.cache_dir / (tag + _META_SUFFIX)

    def _payload_path(self, tag: str) -> Path:
        return self.cache_dir / (tag + _PAYLOAD_SUFFIX)

    def _read_meta(self, tag: str) -> Optional[dict]:
        try:
            return json.loads(self._meta_path(tag).read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            # Concurrently evicted or mid-replace: a miss, never an error.
            return None

    def _entries(self) -> List[Tuple[float, str, dict]]:
        """Every committed entry as ``(mtime, tag, meta)``, oldest first."""
        rows: List[Tuple[float, str, dict]] = []
        for meta_path in self.cache_dir.glob("*" + _META_SUFFIX):
            tag = meta_path.name[: -len(_META_SUFFIX)]
            meta = self._read_meta(tag)
            if meta is None:
                continue
            try:
                mtime = meta_path.stat().st_mtime
            except FileNotFoundError:
                continue
            rows.append((mtime, tag, meta))
        rows.sort(key=lambda row: row[0])
        return rows

    def _atomic_write(self, path: Path, writer) -> None:
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            writer(tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries())

    def __contains__(self, key: CacheKey) -> bool:
        return self.contains(key)

    def contains(self, key: CacheKey) -> bool:
        """Peek without touching LRU order or hit/miss statistics."""
        return self._read_meta(_key_tag(key)) is not None

    @property
    def used_bytes(self) -> int:
        return sum(int(meta.get("nbytes", 0)) for _, _, meta in self._entries())

    # ------------------------------------------------------------------ #
    def lookup(self, key: CacheKey) -> bool:
        """Counted lookup: refreshes the entry's LRU recency on a hit."""
        tag = _key_tag(key)
        meta = self._read_meta(tag)
        if meta is None:
            self.stats.misses += 1
            return False
        self._touch(tag)
        self.stats.hits += 1
        return True

    def _touch(self, tag: str) -> None:
        try:
            os.utime(self._meta_path(tag))
        except FileNotFoundError:
            pass

    def insert(
        self,
        key: CacheKey,
        *,
        nbytes: Optional[int] = None,
        filtered: Optional[ProjectionStack] = None,
    ) -> None:
        """Add (or refresh) an entry; payload written when a stack is given."""
        if filtered is not None:
            nbytes = filtered.nbytes
        if nbytes is None:
            raise ValueError("insert needs either nbytes or a filtered stack")
        nbytes = int(nbytes)
        if nbytes > self.capacity_bytes:
            raise ValueError(
                f"cannot cache a {nbytes}-byte filtered dataset: it exceeds "
                f"the cache capacity of {self.capacity_bytes} bytes (no "
                "amount of eviction can make it fit)"
            )
        tag = _key_tag(key)
        with self._lock:
            existing = self._read_meta(tag)
            if filtered is not None:
                # Write through an open handle: ``np.savez`` appends ``.npz``
                # to a bare *filename*, which would orphan the temp file.
                def _write_payload(tmp: Path) -> None:
                    with tmp.open("wb") as handle:
                        np.savez(handle, data=filtered.data, angles=filtered.angles)

                self._atomic_write(self._payload_path(tag), _write_payload)
            has_payload = bool(
                (filtered is not None)
                or (existing is not None and existing.get("payload"))
            )
            meta = {
                "dataset_id": key.dataset_id,
                "filter_key": key.filter_key,
                "nbytes": nbytes,
                "payload": has_payload,
            }
            self._atomic_write(
                self._meta_path(tag),
                lambda tmp: tmp.write_text(
                    json.dumps(meta, sort_keys=True), encoding="utf-8"
                ),
            )
            if existing is None:
                self.stats.insertions += 1
            self._evict_over_capacity(keep_tag=tag)

    def get_filtered(self, key: CacheKey, *, count: bool = True) -> Optional[ProjectionStack]:
        """Read the filtered stack back; size-only entries miss here."""
        tag = _key_tag(key)
        meta = self._read_meta(tag)
        usable = meta is not None and meta.get("payload")
        stack: Optional[ProjectionStack] = None
        if usable:
            try:
                with np.load(self._payload_path(tag)) as archive:
                    stack = ProjectionStack(
                        data=archive["data"],
                        angles=archive["angles"],
                        filtered=True,
                    )
                self._touch(tag)
            except (FileNotFoundError, KeyError, ValueError, OSError):
                stack = None  # evicted or torn between meta read and load
        if count:
            if stack is not None:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
        return stack

    # ------------------------------------------------------------------ #
    def _evict_over_capacity(self, keep_tag: Optional[str] = None) -> None:
        entries = self._entries()
        used = sum(int(meta.get("nbytes", 0)) for _, _, meta in entries)
        for _, tag, meta in entries:
            if used <= self.capacity_bytes:
                break
            if tag == keep_tag:
                continue  # never evict the entry just inserted
            self._delete(tag)
            used -= int(meta.get("nbytes", 0))
            self.stats.evictions += 1

    def _delete(self, tag: str) -> None:
        for path in (self._meta_path(tag), self._payload_path(tag)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def clear(self) -> None:
        """Drop every entry (statistics are kept; they are process-local)."""
        with self._lock:
            for _, tag, _ in self._entries():
                self._delete(tag)
