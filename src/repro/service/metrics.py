"""Service-level metrics: throughput, tail latency, queueing, cache efficacy.

The collector accumulates one record per finished (or rejected) job plus a
time series of queue-depth samples, and reduces them to the numbers a
service operator watches:

* throughput — completed jobs/s and aggregate GUPS over the makespan
  (the Section 2.3(II) metric, summed across tenants);
* latency — p50/p99/mean/max of arrival-to-completion time, and SLO
  attainment;
* queueing — mean and peak queue depth;
* cache — hit rate of the filtered-projection cache;
* utilization — busy GPU-seconds over cluster capacity;
* stage split — aggregate filtering vs back-projection seconds across
  completed jobs (the ``FDKResult``-level split, surfaced service-wide);
* worker accounting — when placements run for real on the batched
  dispatcher, the measured wall seconds and worker occupancy of those
  executions, summed across jobs;
* failures — jobs whose real execution crashed or timed out past the
  retry budget (process dispatcher), plus the dispatch-level
  retry/timeout/crash counters, so "failed loudly" is visible in the
  same summary operators already read;
* per-tenant tails — p99 latency and job count per tenant, because a
  multi-tenant service's aggregate p99 hides exactly the tenant being
  starved;
* fairness — per-tenant quota rejections (the HTTP 429 backpressure
  path), each tenant's share of the placed service seconds and a Jain's
  fairness index over weight-normalized service, emitted when the service
  runs the :class:`~repro.service.fairness.FairShareQueue` (the
  ``tenant_weights`` argument of :meth:`ServiceMetrics.summary`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from .cache import FilteredProjectionCache
from .job import JobState, ReconstructionJob
from .queue import QUOTA_REJECTION_PREFIX

__all__ = ["QueueSample", "ServiceMetrics", "percentile"]


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolated percentile; ``nan`` for an empty series."""
    if not values:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass(frozen=True)
class QueueSample:
    """Queue depth observed at one scheduling event."""

    time_seconds: float
    depth: int


@dataclass
class ServiceMetrics:
    """Accumulates per-job outcomes and reduces them to service KPIs."""

    # No lock of its own: the owning service's lock serializes mutation
    # and snapshot (report() copies these lists under that lock).
    completed: List[ReconstructionJob] = field(default_factory=list)  # guarded-by: caller
    rejected: List[ReconstructionJob] = field(default_factory=list)  # guarded-by: caller
    failed: List[ReconstructionJob] = field(default_factory=list)  # guarded-by: caller
    queue_samples: List[QueueSample] = field(default_factory=list)  # guarded-by: caller
    # Dispatch-level fault counters (process dispatcher): cumulative over
    # the metrics window, folded into summary() when non-zero.
    dispatch_retries: int = 0
    dispatch_timeouts: int = 0
    dispatch_crashes: int = 0

    # ------------------------------------------------------------------ #
    def record_completion(self, job: ReconstructionJob) -> None:
        if job.state is not JobState.COMPLETED:
            raise ValueError(f"job {job.job_id} is {job.state.value}, not completed")
        self.completed.append(job)

    def record_rejection(self, job: ReconstructionJob) -> None:
        if job.state is not JobState.REJECTED:
            raise ValueError(f"job {job.job_id} is {job.state.value}, not rejected")
        self.rejected.append(job)

    def record_failure(self, job: ReconstructionJob) -> bool:
        """Record a job whose real execution failed (crash/timeout).

        The simulated event loop may already have counted the job as
        completed — the pilot verdict arrives when the dispatcher drains,
        after the discrete clock moved on — so a failed job is *removed*
        from the completed list: one job, one outcome.  Returns ``True``
        when a completion was overturned this way, so callers keeping
        monotonic completion counters (e.g. the obs registry) can count
        the demotion separately.
        """
        if job.state is not JobState.FAILED:
            raise ValueError(f"job {job.job_id} is {job.state.value}, not failed")
        demoted = True
        try:
            self.completed.remove(job)
        except ValueError:
            demoted = False
        self.failed.append(job)
        return demoted

    def sample_queue_depth(self, now: float, depth: int) -> None:
        self.queue_samples.append(QueueSample(time_seconds=now, depth=depth))

    # ------------------------------------------------------------------ #
    @property
    def latencies(self) -> List[float]:
        return [j.latency_seconds for j in self.completed if j.latency_seconds is not None]

    @property
    def scenario_counts(self) -> Dict[str, int]:
        """Completed jobs per acquisition scenario (the workload mix)."""
        counts: Dict[str, int] = {}
        for job in self.completed:
            counts[job.scenario] = counts.get(job.scenario, 0) + 1
        return counts

    @property
    def tenant_latencies(self) -> Dict[str, List[float]]:
        """Arrival-to-completion latencies grouped by tenant."""
        grouped: Dict[str, List[float]] = {}
        for job in self.completed:
            if job.latency_seconds is not None:
                grouped.setdefault(job.tenant, []).append(job.latency_seconds)
        return grouped

    @property
    def quota_rejections(self) -> Dict[str, int]:
        """Per-tenant fair-share quota rejections (the 429 backpressure path)."""
        counts: Dict[str, int] = {}
        for job in self.rejected:
            reason = job.rejection_reason or ""
            if reason.startswith(QUOTA_REJECTION_PREFIX):
                counts[job.tenant] = counts.get(job.tenant, 0) + 1
        return counts

    def tenant_service_seconds(self) -> Dict[str, float]:
        """Busy GPU-seconds per tenant across completed jobs."""
        grouped: Dict[str, float] = {}
        for job in self.completed:
            seconds = (job.runtime_seconds or 0.0) * (job.gpus or 0)
            grouped[job.tenant] = grouped.get(job.tenant, 0.0) + seconds
        return grouped

    @property
    def makespan_seconds(self) -> float:
        """First arrival to last completion across the replayed workload."""
        if not self.completed:
            return 0.0
        start = min(j.arrival_seconds for j in self.completed)
        finish = max(j.finish_seconds for j in self.completed)
        return finish - start

    def summary(
        self,
        *,
        cache: Optional[FilteredProjectionCache] = None,
        cluster_gpus: Optional[int] = None,
        tenant_weights: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """Reduce everything recorded so far to a flat KPI dictionary."""
        latencies = self.latencies
        makespan = self.makespan_seconds
        n_done = len(self.completed)
        total_updates = sum(j.problem.updates for j in self.completed)
        slo_jobs = [j for j in self.completed if j.slo_seconds is not None]
        busy_gpu_seconds = sum(
            (j.runtime_seconds or 0.0) * (j.gpus or 0) for j in self.completed
        )
        depths = [s.depth for s in self.queue_samples]
        out: Dict[str, float] = {
            "jobs_completed": float(n_done),
            "jobs_rejected": float(len(self.rejected)),
            "jobs_failed": float(len(self.failed)),
            "makespan_s": makespan,
            "throughput_jobs_per_s": (n_done / makespan) if makespan > 0 else float("nan"),
            "aggregate_gups": (
                total_updates / (makespan * 2.0**30) if makespan > 0 else float("nan")
            ),
            "latency_p50_s": percentile(latencies, 50.0),
            "latency_p99_s": percentile(latencies, 99.0),
            "latency_mean_s": float(np.mean(latencies)) if latencies else float("nan"),
            "latency_max_s": max(latencies) if latencies else float("nan"),
            "slo_attainment": (
                sum(1 for j in slo_jobs if j.met_slo) / len(slo_jobs)
                if slo_jobs else float("nan")
            ),
            "queue_depth_mean": float(np.mean(depths)) if depths else 0.0,
            "queue_depth_max": float(max(depths)) if depths else 0.0,
        }
        filter_total = sum(j.filter_seconds or 0.0 for j in self.completed)
        bp_total = sum(j.backprojection_seconds or 0.0 for j in self.completed)
        out["filter_seconds_total"] = filter_total
        out["backprojection_seconds_total"] = bp_total
        # 0.0 (not NaN) when nothing completed: the report must stay valid
        # JSON for strict parsers even on an all-rejected replay.
        out["filter_fraction"] = (
            filter_total / (filter_total + bp_total)
            if (filter_total + bp_total) > 0 else 0.0
        )
        # Real-execution worker accounting (absent when nothing ran for
        # real, so model-only reports keep their exact shape).
        executed = [j for j in self.completed if j.worker_seconds is not None]
        if executed:
            out["jobs_executed"] = float(len(executed))
            out["executed_wall_seconds_total"] = float(
                sum(j.executed_wall_seconds for j in executed)
            )
            out["worker_seconds_total"] = float(
                sum(j.worker_seconds for j in executed)
            )
        # Dispatch-fault accounting rides along only when the process
        # dispatcher saw faults, keeping model-only report shapes exact.
        if self.dispatch_retries or self.dispatch_timeouts or self.dispatch_crashes:
            out["dispatch_retries"] = float(self.dispatch_retries)
            out["dispatch_timeouts"] = float(self.dispatch_timeouts)
            out["dispatch_crashes"] = float(self.dispatch_crashes)
        # One flat entry per scenario in the completed mix, so operators
        # (and the JSON report) see which acquisition protocols the
        # cluster actually served.
        for scenario, count in sorted(self.scenario_counts.items()):
            out[f"scenario[{scenario}]_jobs"] = float(count)
        # Per-tenant tail latency: the aggregate p99 of a multi-tenant mix
        # hides a starved tenant; the per-tenant p99 does not.
        for tenant, latencies_t in sorted(self.tenant_latencies.items()):
            out[f"tenant[{tenant}]_jobs"] = float(len(latencies_t))
            out[f"tenant[{tenant}]_p99_s"] = percentile(latencies_t, 99.0)
        # Quota rejections ride along whenever the fair-share layer
        # rejected anything, keeping non-fair report shapes exact.
        quota = self.quota_rejections
        if quota:
            out["quota_rejections"] = float(sum(quota.values()))
            for tenant, count in sorted(quota.items()):
                out[f"tenant[{tenant}]_quota_rejections"] = float(count)
        # Fairness KPIs are opt-in via tenant_weights (the service passes
        # its FairShareQueue's resolved weights): each tenant's share of
        # the placed service and Jain's index over weight-normalized
        # service — 1.0 means every tenant got exactly its weighted share.
        if tenant_weights is not None:
            from .fairness import jains_index  # late: fairness imports queue

            service = self.tenant_service_seconds()
            total_service = sum(service.values())
            normalized: List[float] = []
            for tenant, seconds in sorted(service.items()):
                if total_service > 0:
                    out[f"tenant[{tenant}]_share_of_service"] = (
                        seconds / total_service
                    )
                normalized.append(
                    seconds / float(tenant_weights.get(tenant, 1.0))
                )
            out["fairness_index"] = jains_index(normalized)
        if cache is not None:
            out["cache_hit_rate"] = cache.stats.hit_rate
            out["cache_hits"] = float(cache.stats.hits)
            out["cache_evictions"] = float(cache.stats.evictions)
        if cluster_gpus and makespan > 0:
            out["gpu_utilization"] = busy_gpu_seconds / (cluster_gpus * makespan)
        return out
