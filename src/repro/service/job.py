"""Reconstruction jobs and their lifecycle.

The serving layer treats one end-to-end reconstruction (the whole Section 4
pipeline: load → filter → AllGather → back-project → reduce → store) as a
*job*.  A job carries the reconstruction problem, the tenant that submitted
it, a priority class, a latency SLO and — once the scheduler has placed it —
the ``(R, C)`` rank-grid decomposition and GPU allocation it ran with.

States follow the usual service lifecycle::

    PENDING --offer--> QUEUED --place--> RUNNING --finish--> COMPLETED
        \\                  \\                \\
         +--admission-------+----------> REJECTED
                                              \\
                                               +--pilot crash/timeout--> FAILED

``FAILED`` is terminal and only ever set by the real-execution path: a
job whose pilot reconstruction crashed its worker process or exhausted
its timeout/retry budget is failed loudly (with the reason recorded)
instead of being silently counted as completed.

Priorities are small integers with **0 the most urgent** (like an inverted
Unix nice value); ties break on the earlier SLO deadline, then on submission
order.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.types import ReconstructionProblem, problem_from_string

__all__ = ["JobState", "ReconstructionJob", "job_sort_key"]

_job_counter = itertools.count()


class JobState(enum.Enum):
    """Lifecycle state of a :class:`ReconstructionJob`."""

    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    REJECTED = "rejected"
    FAILED = "failed"


@dataclass
class ReconstructionJob:
    """One tenant request for a full reconstruction.

    Parameters
    ----------
    problem:
        The reconstruction problem to solve.
    tenant:
        Identifier of the submitting tenant (used for reporting only).
    dataset_id:
        Content key of the input projection dataset.  Two jobs with the same
        ``dataset_id`` and ``ramp_filter`` read the *same* acquisitions, so
        the second can reuse the first's filtered projections from the
        :class:`~repro.service.cache.FilteredProjectionCache`.
    priority:
        Priority class, 0 = most urgent.
    slo_seconds:
        Latency target measured from :attr:`arrival_seconds`; ``None`` means
        best-effort.
    arrival_seconds:
        Submission time on the simulated service clock.
    scenario:
        Acquisition-scenario preset name (see
        :func:`repro.scenarios.available_scenarios`).  Part of the job's
        *data identity*: two jobs on the same dataset but different
        scenarios filter different projections (different angular subset,
        detector window and redundancy weights), so the filtered-projection
        cache must never serve one to the other.
    """

    problem: ReconstructionProblem
    tenant: str = "default"
    dataset_id: str = ""
    priority: int = 1
    slo_seconds: Optional[float] = None
    arrival_seconds: float = 0.0
    ramp_filter: str = "ram-lak"
    scenario: str = "full_scan"
    # Fair-share QoS overrides carried from the submitting plan: the
    # tenant's scheduling weight and in-flight quota.  Only consulted when
    # the service runs a FairShareQueue, and only for tenants the service's
    # own AdmissionPolicy does not already configure (operator wins).
    tenant_weight: Optional[float] = None
    max_inflight: Optional[int] = None
    job_id: str = ""
    # Canonical identity of the plan this job was derived from (see
    # ReconstructionJob.from_plan); empty for hand-built or trace jobs.
    plan_key: str = ""
    # Acquisition-physics token of the job's geometry (see
    # repro.api.acquisition_token).  Trace jobs carry only a problem
    # shape, so theirs stays "" — the physics is implied by dataset_id.
    acquisition: str = ""

    # Filled in by the service / scheduler.
    state: JobState = JobState.PENDING
    backend: str = "reference"
    estimated_seconds: Optional[float] = None
    start_seconds: Optional[float] = None
    finish_seconds: Optional[float] = None
    gpus: Optional[int] = None
    rows: Optional[int] = None
    columns: Optional[int] = None
    cache_hit: bool = False
    filter_seconds: Optional[float] = None
    backprojection_seconds: Optional[float] = None
    rejection_reason: Optional[str] = None
    # Real-execution accounting, filled in by the BatchedDispatcher when the
    # service runs placements for real (wall-clock seconds on the pool's
    # epoch, not the simulated service clock).
    workers: Optional[int] = None
    executed_start_seconds: Optional[float] = None
    executed_finish_seconds: Optional[float] = None
    # Whether the pilot's filtered projections came from the shared on-disk
    # cache (ProcessDispatcher only; None when no real pilot ran or the
    # dispatcher has no cache attached).
    pilot_cache_hit: Optional[bool] = None
    # How many times the real execution was attempted (retries after worker
    # crashes/timeouts increment this past 1).
    execution_attempts: int = 0
    failure_reason: Optional[str] = None
    # Backpressure hint attached to quota/backlog rejections: how long the
    # tenant should wait before resubmitting (drives HTTP 429 Retry-After).
    # ``None`` for admitted jobs and for never-feasible rejections.
    retry_after_seconds: Optional[float] = None
    sequence: int = field(default_factory=lambda: next(_job_counter))

    def __post_init__(self) -> None:
        if isinstance(self.problem, str):
            self.problem = problem_from_string(self.problem)
        if self.priority < 0:
            raise ValueError("priority must be non-negative (0 = most urgent)")
        if self.slo_seconds is not None and self.slo_seconds <= 0:
            raise ValueError("slo_seconds must be positive when given")
        if self.arrival_seconds < 0:
            raise ValueError("arrival_seconds must be non-negative")
        if not self.scenario:
            raise ValueError("scenario must be a non-empty preset name")
        if self.tenant_weight is not None and not self.tenant_weight > 0:
            raise ValueError("tenant_weight must be positive when given")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be a positive integer when given")
        if not self.job_id:
            self.job_id = f"job-{self.sequence:04d}"
        if not self.dataset_id:
            self.dataset_id = f"dataset-{self.job_id}"

    # ------------------------------------------------------------------ #
    @classmethod
    def from_plan(
        cls,
        plan,
        *,
        dataset_id: str = "",
        arrival_seconds: float = 0.0,
        job_id: str = "",
        tenant: Optional[str] = None,
        priority: Optional[int] = None,
        slo_seconds: Optional[float] = None,
    ) -> "ReconstructionJob":
        """Derive a service job from a :class:`~repro.api.ReconstructionPlan`.

        The plan supplies the problem (its base geometry), the filtering
        and scenario identity, the backend and the QoS defaults (tenant,
        priority, SLO); its canonical :meth:`~repro.api.ReconstructionPlan.key`
        is recorded on the job so reports and caches share one identity.
        Per-submission values (``dataset_id``, arrival time, an explicit
        tenant/priority/SLO) override the plan's defaults.
        """
        from ..api.plan import acquisition_token  # late: api imports service

        job = cls(
            problem=plan.problem,
            acquisition=acquisition_token(plan.geometry),
            tenant=plan.tenant if tenant is None else tenant,
            dataset_id=dataset_id,
            priority=plan.priority if priority is None else priority,
            slo_seconds=plan.slo_seconds if slo_seconds is None else slo_seconds,
            arrival_seconds=arrival_seconds,
            ramp_filter=plan.ramp_filter,
            scenario=plan.scenario,
            tenant_weight=plan.tenant_weight,
            max_inflight=plan.max_inflight,
            job_id=job_id,
            plan_key=plan.key(),
        )
        job.backend = plan.backend
        return job

    # ------------------------------------------------------------------ #
    @property
    def deadline_seconds(self) -> float:
        """Absolute completion deadline (``inf`` for best-effort jobs)."""
        if self.slo_seconds is None:
            return float("inf")
        return self.arrival_seconds + self.slo_seconds

    @property
    def latency_seconds(self) -> Optional[float]:
        """Arrival-to-completion latency; ``None`` until the job finishes."""
        if self.finish_seconds is None:
            return None
        return self.finish_seconds - self.start_to_finish_origin

    @property
    def start_to_finish_origin(self) -> float:
        return self.arrival_seconds

    @property
    def met_slo(self) -> Optional[bool]:
        """Whether the job finished inside its SLO (``None`` until done)."""
        if self.finish_seconds is None:
            return None
        return self.finish_seconds <= self.deadline_seconds

    @property
    def runtime_seconds(self) -> Optional[float]:
        if self.start_seconds is None or self.finish_seconds is None:
            return None
        return self.finish_seconds - self.start_seconds

    @property
    def executed_wall_seconds(self) -> Optional[float]:
        """Measured wall-clock of the real pilot execution (``None`` if none ran)."""
        if self.executed_start_seconds is None or self.executed_finish_seconds is None:
            return None
        return self.executed_finish_seconds - self.executed_start_seconds

    @property
    def worker_seconds(self) -> Optional[float]:
        """Worker occupancy of the real execution: wall seconds × workers."""
        wall = self.executed_wall_seconds
        if wall is None or self.workers is None:
            return None
        return wall * self.workers

    # ------------------------------------------------------------------ #
    def mark_queued(self) -> None:
        self.state = JobState.QUEUED

    def mark_running(self, now: float, *, gpus: int, rows: int, columns: int,
                     cache_hit: bool,
                     filter_seconds: Optional[float] = None,
                     backprojection_seconds: Optional[float] = None) -> None:
        self.state = JobState.RUNNING
        self.start_seconds = now
        self.gpus = gpus
        self.rows = rows
        self.columns = columns
        self.cache_hit = cache_hit
        self.filter_seconds = filter_seconds
        self.backprojection_seconds = backprojection_seconds

    def mark_completed(self, now: float) -> None:
        self.state = JobState.COMPLETED
        self.finish_seconds = now

    def mark_executed(self, start: float, finish: float, *, workers: int) -> None:
        """Record the real (wall-clock) execution of this job's placement."""
        if finish < start:
            raise ValueError("execution must finish at or after its start")
        if workers < 1:
            raise ValueError("workers must be a positive integer")
        self.executed_start_seconds = start
        self.executed_finish_seconds = finish
        self.workers = int(workers)

    def mark_rejected(
        self, reason: str, *, retry_after_seconds: Optional[float] = None
    ) -> None:
        """Reject the job; ``retry_after_seconds`` marks a *transient*
        rejection (quota/backlog backpressure — "try later"), as opposed to
        a never-feasible one."""
        self.state = JobState.REJECTED
        self.rejection_reason = reason
        self.retry_after_seconds = retry_after_seconds

    def mark_failed(self, reason: str) -> None:
        """Fail the job loudly (pilot crash, timeout, exhausted retries)."""
        self.state = JobState.FAILED
        self.failure_reason = reason

    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        """The *static* identity of this job, for the durable job store.

        Only submission-time fields travel: the journal records state
        transitions as separate events, and recovery rebuilds a fresh
        ``PENDING`` job from this payload before replaying them.
        """
        return {
            "job_id": self.job_id,
            "problem": str(self.problem),
            "tenant": self.tenant,
            "dataset_id": self.dataset_id,
            "priority": self.priority,
            "slo_seconds": self.slo_seconds,
            "arrival_seconds": self.arrival_seconds,
            "ramp_filter": self.ramp_filter,
            "scenario": self.scenario,
            "tenant_weight": self.tenant_weight,
            "max_inflight": self.max_inflight,
            "plan_key": self.plan_key,
            "acquisition": self.acquisition,
            "backend": self.backend,
            "estimated_seconds": self.estimated_seconds,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ReconstructionJob":
        """Rebuild a fresh ``PENDING`` job from :meth:`to_payload` output."""
        try:
            job = cls(
                problem=problem_from_string(str(payload["problem"])),
                tenant=str(payload.get("tenant", "default")),
                dataset_id=str(payload.get("dataset_id", "")),
                priority=int(payload.get("priority", 1)),
                slo_seconds=(
                    None if payload.get("slo_seconds") is None
                    else float(payload["slo_seconds"])
                ),
                arrival_seconds=float(payload.get("arrival_seconds", 0.0)),
                ramp_filter=str(payload.get("ramp_filter", "ram-lak")),
                scenario=str(payload.get("scenario", "full_scan")),
                tenant_weight=(
                    None if payload.get("tenant_weight") is None
                    else float(payload["tenant_weight"])
                ),
                max_inflight=(
                    None if payload.get("max_inflight") is None
                    else int(payload["max_inflight"])
                ),
                job_id=str(payload["job_id"]),
                plan_key=str(payload.get("plan_key", "")),
                acquisition=str(payload.get("acquisition", "")),
            )
        except KeyError as exc:
            raise ValueError(f"job payload missing required field {exc}") from exc
        job.backend = str(payload.get("backend", job.backend))
        if payload.get("estimated_seconds") is not None:
            job.estimated_seconds = float(payload["estimated_seconds"])
        return job

    # ------------------------------------------------------------------ #
    def as_record(self) -> dict:
        """Flat dictionary for reports and tables."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "dataset": self.dataset_id,
            "problem": str(self.problem),
            "priority": self.priority,
            "state": self.state.value,
            "arrival_s": self.arrival_seconds,
            "start_s": self.start_seconds,
            "finish_s": self.finish_seconds,
            "latency_s": self.latency_seconds,
            "slo_s": self.slo_seconds,
            "met_slo": self.met_slo,
            "gpus": self.gpus,
            "grid": (f"{self.rows}x{self.columns}"
                     if self.rows and self.columns else None),
            "cache_hit": self.cache_hit,
            "scenario": self.scenario,
            "backend": self.backend,
            "plan_key": self.plan_key or None,
            "filter_s": self.filter_seconds,
            "backprojection_s": self.backprojection_seconds,
            "workers": self.workers,
            "executed_wall_s": self.executed_wall_seconds,
            "worker_seconds": self.worker_seconds,
            "pilot_cache_hit": self.pilot_cache_hit,
            "execution_attempts": self.execution_attempts,
            "rejection_reason": self.rejection_reason,
            "retry_after_s": self.retry_after_seconds,
            "failure_reason": self.failure_reason,
        }


def job_sort_key(job: ReconstructionJob) -> Tuple[int, float, int]:
    """Scheduling order: priority class, then earliest deadline, then FIFO."""
    return (job.priority, job.deadline_seconds, job.sequence)
