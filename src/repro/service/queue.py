"""The service job queue with admission control.

Admission control keeps the service stable under overload instead of letting
the queue (and every tenant's latency) grow without bound:

* **depth cap** — at most ``max_depth`` jobs may wait;
* **backlog cap** — the sum of the queued jobs' estimated service times may
  not exceed ``max_backlog_seconds`` (the service estimates each job's
  full-cluster runtime at submission via the performance model).

Jobs that fail admission are marked :attr:`~repro.service.job.JobState.REJECTED`
with a reason, so tenants can tell "try later" from "never feasible" (the
latter is detected by the service before the queue is consulted).

The queue itself is a small ordered collection — scheduling order is
``(priority, deadline, submission order)`` via
:func:`~repro.service.job.job_sort_key` — with selective removal so the
scheduler can backfill jobs from the middle of the queue.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Iterator, List, Mapping, Optional, Sequence

from .job import JobState, ReconstructionJob, job_sort_key

__all__ = [
    "AdmissionPolicy",
    "JobQueue",
    "QUOTA_REJECTION_PREFIX",
    "model_runtime_estimator",
]

#: Rejection reasons carrying this prefix are per-tenant fair-share quota
#: rejections: transient backpressure ("try later", HTTP 429), never a
#: statement about feasibility.
QUOTA_REJECTION_PREFIX = "tenant quota"


def model_runtime_estimator(model=None) -> Callable[[ReconstructionJob], Optional[float]]:
    """An estimator of a job's service time from the Eq. 8-19 model.

    Returns a callable mapping a job to its predicted runtime on the
    smallest feasible power-of-two GPU grid (the most conservative — i.e.
    largest — admission estimate), or ``None`` when no grid up to 1024 GPUs
    fits the problem.  This is the default the queue falls back on when a
    job arrives without ``estimated_seconds``, so the backlog admission cap
    cannot be silently bypassed.
    """
    from ..pipeline.config import choose_grid  # late import: pipeline imports core
    from ..pipeline.perfmodel import IFDKPerformanceModel

    model = model or IFDKPerformanceModel()

    def estimate(job: ReconstructionJob) -> Optional[float]:
        gpus = 1
        while gpus <= 1024:
            try:
                rows, columns = choose_grid(job.problem, gpus)
            except ValueError:
                gpus *= 2
                continue
            return model.breakdown(job.problem, rows, columns).t_runtime
        return None

    return estimate


@dataclass(frozen=True)
class AdmissionPolicy:
    """Limits enforced when a job is offered to the queue.

    The fair-share fields configure the
    :class:`~repro.service.fairness.FairShareQueue` the service builds when
    any of them is set (or ``fair_share=True`` forces it with defaults):

    * ``tenant_weights`` — scheduling weight per tenant name; unlisted
      tenants get ``default_tenant_weight``.  Weights are relative service
      shares under contention (weight 2 gets twice the cluster seconds of
      weight 1), enforced by deficit round-robin.
    * ``max_inflight_per_tenant`` — at most this many of a tenant's jobs
      may be running at once; excess stays queued (throttling, not
      rejection).
    * ``max_queue_depth_per_tenant`` — at most this many of a tenant's
      jobs may *wait*; excess is rejected with a ``tenant quota`` reason
      and a Retry-After hint (the HTTP 429 path).
    * ``quantum_seconds`` — the DRR quantum: estimated service seconds a
      tenant may spend per round-robin visit, scaled by its weight.
    * ``aging_seconds`` — starvation bound: once a tenant's *oldest*
      waiting job has waited this long, it jumps the fair-share order (one
      job per tenant per cycle, so aging cannot undo fairness wholesale).
    """

    max_depth: int = 256
    max_backlog_seconds: Optional[float] = None
    fair_share: bool = False
    tenant_weights: Optional[Mapping[str, float]] = None
    default_tenant_weight: float = 1.0
    max_inflight_per_tenant: Optional[int] = None
    max_queue_depth_per_tenant: Optional[int] = None
    quantum_seconds: float = 5.0
    aging_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_depth <= 0:
            raise ValueError("max_depth must be positive")
        if self.max_backlog_seconds is not None and self.max_backlog_seconds <= 0:
            raise ValueError("max_backlog_seconds must be positive when given")
        if self.tenant_weights is not None:
            for tenant, weight in self.tenant_weights.items():
                if not weight > 0:
                    raise ValueError(
                        f"tenant weight for {tenant!r} must be positive "
                        f"(got {weight!r})"
                    )
        if not self.default_tenant_weight > 0:
            raise ValueError("default_tenant_weight must be positive")
        for name in ("max_inflight_per_tenant", "max_queue_depth_per_tenant"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be a positive integer when given")
        if not self.quantum_seconds > 0:
            raise ValueError("quantum_seconds must be positive")
        if self.aging_seconds is not None and self.aging_seconds <= 0:
            raise ValueError("aging_seconds must be positive when given")

    @property
    def fairness_enabled(self) -> bool:
        """Whether any fair-share knob asks for a FairShareQueue."""
        return bool(
            self.fair_share
            or self.tenant_weights is not None
            or self.max_inflight_per_tenant is not None
            or self.max_queue_depth_per_tenant is not None
            or self.aging_seconds is not None
        )


class JobQueue:
    """Priority queue of waiting jobs with admission control."""

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        *,
        estimator: Optional[Callable[[ReconstructionJob], Optional[float]]] = None,
    ):
        self.policy = policy or AdmissionPolicy()
        # The queue has no lock of its own: the owning service serializes
        # every call on its lock (see ReconstructionService).
        self._jobs: List[ReconstructionJob] = []  # guarded-by: caller
        self.offered = 0  # guarded-by: caller
        self.rejected = 0  # guarded-by: caller
        # Lazily built: most callers (the service) estimate before offering,
        # so the model is only constructed when a job actually needs it.
        self._estimator = estimator

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[ReconstructionJob]:
        return iter(self.ordered())

    @property
    def backlog_seconds(self) -> float:
        """Sum of the queued jobs' estimated service times."""
        return sum(job.estimated_seconds or 0.0 for job in self._jobs)

    def ordered(self) -> List[ReconstructionJob]:
        """Snapshot of the queue in scheduling order."""
        return sorted(self._jobs, key=job_sort_key)

    def scheduling_order(
        self, now: float, running: Sequence = ()
    ) -> List[ReconstructionJob]:
        """The order the scheduler should consider waiting jobs in.

        The seam the fair-share layer plugs into: the base queue ignores
        ``now`` and the running placements and returns the plain
        ``(priority, deadline, FIFO)`` order;
        :class:`~repro.service.fairness.FairShareQueue` overrides this with
        deficit-round-robin across per-tenant subqueues, starvation aging
        and in-flight quotas.
        """
        return self.ordered()

    def peek(self) -> Optional[ReconstructionJob]:
        """The job the scheduler should consider first (or ``None``)."""
        if not self._jobs:
            return None
        return min(self._jobs, key=job_sort_key)

    # ------------------------------------------------------------------ #
    def offer(self, job: ReconstructionJob) -> bool:
        """Apply admission control; enqueue on success.

        Returns ``True`` and marks the job ``QUEUED`` when admitted;
        otherwise marks it ``REJECTED`` with the reason and returns
        ``False``.

        A job arriving without ``estimated_seconds`` does **not** bypass the
        backlog cap: its service time is estimated from the performance
        model (and recorded on the job, so it also counts against later
        arrivals).  Only when no estimate can be produced at all is the job
        admitted with a warning — loud, never silent.
        """
        self.offered += 1
        if len(self._jobs) >= self.policy.max_depth:
            # Transient overload, not infeasibility: hint when a slot
            # should free (the mean queued service time).
            job.mark_rejected(
                f"queue full: depth {len(self._jobs)} at cap {self.policy.max_depth}",
                retry_after_seconds=max(
                    1.0, self.backlog_seconds / max(1, len(self._jobs))
                ),
            )
            self.rejected += 1
            return False
        cap = self.policy.max_backlog_seconds
        if cap is not None:
            if job.estimated_seconds is None:
                job.estimated_seconds = self._estimate(job)
            if job.estimated_seconds is None:
                warnings.warn(
                    f"job {job.job_id} has no runtime estimate and none could "
                    "be derived from the performance model; admitting it "
                    "without counting it against the backlog cap",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                backlog = self.backlog_seconds + job.estimated_seconds
                if backlog > cap:
                    job.mark_rejected(
                        f"backlog {backlog:.1f}s exceeds admission cap {cap:.1f}s",
                        retry_after_seconds=max(1.0, backlog - cap),
                    )
                    self.rejected += 1
                    return False
        job.mark_queued()
        self._jobs.append(job)
        return True

    def _estimate(self, job: ReconstructionJob) -> Optional[float]:
        if self._estimator is None:
            self._estimator = model_runtime_estimator()
        return self._estimator(job)

    def remove(self, job: ReconstructionJob) -> None:
        """Remove a specific job (used when the scheduler places it)."""
        self._jobs.remove(job)

    def drain(self) -> List[ReconstructionJob]:
        """Remove and return every queued job in scheduling order."""
        jobs = self.ordered()
        self._jobs.clear()
        return jobs
