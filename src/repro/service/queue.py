"""The service job queue with admission control.

Admission control keeps the service stable under overload instead of letting
the queue (and every tenant's latency) grow without bound:

* **depth cap** — at most ``max_depth`` jobs may wait;
* **backlog cap** — the sum of the queued jobs' estimated service times may
  not exceed ``max_backlog_seconds`` (the service estimates each job's
  full-cluster runtime at submission via the performance model).

Jobs that fail admission are marked :attr:`~repro.service.job.JobState.REJECTED`
with a reason, so tenants can tell "try later" from "never feasible" (the
latter is detected by the service before the queue is consulted).

The queue itself is a small ordered collection — scheduling order is
``(priority, deadline, submission order)`` via
:func:`~repro.service.job.job_sort_key` — with selective removal so the
scheduler can backfill jobs from the middle of the queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from .job import JobState, ReconstructionJob, job_sort_key

__all__ = ["AdmissionPolicy", "JobQueue"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Limits enforced when a job is offered to the queue."""

    max_depth: int = 256
    max_backlog_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_depth <= 0:
            raise ValueError("max_depth must be positive")
        if self.max_backlog_seconds is not None and self.max_backlog_seconds <= 0:
            raise ValueError("max_backlog_seconds must be positive when given")


class JobQueue:
    """Priority queue of waiting jobs with admission control."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None):
        self.policy = policy or AdmissionPolicy()
        self._jobs: List[ReconstructionJob] = []
        self.offered = 0
        self.rejected = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[ReconstructionJob]:
        return iter(self.ordered())

    @property
    def backlog_seconds(self) -> float:
        """Sum of the queued jobs' estimated service times."""
        return sum(job.estimated_seconds or 0.0 for job in self._jobs)

    def ordered(self) -> List[ReconstructionJob]:
        """Snapshot of the queue in scheduling order."""
        return sorted(self._jobs, key=job_sort_key)

    def peek(self) -> Optional[ReconstructionJob]:
        """The job the scheduler should consider first (or ``None``)."""
        if not self._jobs:
            return None
        return min(self._jobs, key=job_sort_key)

    # ------------------------------------------------------------------ #
    def offer(self, job: ReconstructionJob) -> bool:
        """Apply admission control; enqueue on success.

        Returns ``True`` and marks the job ``QUEUED`` when admitted;
        otherwise marks it ``REJECTED`` with the reason and returns
        ``False``.
        """
        self.offered += 1
        if len(self._jobs) >= self.policy.max_depth:
            job.mark_rejected(
                f"queue full: depth {len(self._jobs)} at cap {self.policy.max_depth}"
            )
            self.rejected += 1
            return False
        cap = self.policy.max_backlog_seconds
        if cap is not None and job.estimated_seconds is not None:
            backlog = self.backlog_seconds + job.estimated_seconds
            if backlog > cap:
                job.mark_rejected(
                    f"backlog {backlog:.1f}s exceeds admission cap {cap:.1f}s"
                )
                self.rejected += 1
                return False
        job.mark_queued()
        self._jobs.append(job)
        return True

    def remove(self, job: ReconstructionJob) -> None:
        """Remove a specific job (used when the scheduler places it)."""
        self._jobs.remove(job)

    def drain(self) -> List[ReconstructionJob]:
        """Remove and return every queued job in scheduling order."""
        jobs = self.ordered()
        self._jobs.clear()
        return jobs
