"""The service job queue with admission control.

Admission control keeps the service stable under overload instead of letting
the queue (and every tenant's latency) grow without bound:

* **depth cap** — at most ``max_depth`` jobs may wait;
* **backlog cap** — the sum of the queued jobs' estimated service times may
  not exceed ``max_backlog_seconds`` (the service estimates each job's
  full-cluster runtime at submission via the performance model).

Jobs that fail admission are marked :attr:`~repro.service.job.JobState.REJECTED`
with a reason, so tenants can tell "try later" from "never feasible" (the
latter is detected by the service before the queue is consulted).

The queue itself is a small ordered collection — scheduling order is
``(priority, deadline, submission order)`` via
:func:`~repro.service.job.job_sort_key` — with selective removal so the
scheduler can backfill jobs from the middle of the queue.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from .job import JobState, ReconstructionJob, job_sort_key

__all__ = ["AdmissionPolicy", "JobQueue", "model_runtime_estimator"]


def model_runtime_estimator(model=None) -> Callable[[ReconstructionJob], Optional[float]]:
    """An estimator of a job's service time from the Eq. 8-19 model.

    Returns a callable mapping a job to its predicted runtime on the
    smallest feasible power-of-two GPU grid (the most conservative — i.e.
    largest — admission estimate), or ``None`` when no grid up to 1024 GPUs
    fits the problem.  This is the default the queue falls back on when a
    job arrives without ``estimated_seconds``, so the backlog admission cap
    cannot be silently bypassed.
    """
    from ..pipeline.config import choose_grid  # late import: pipeline imports core
    from ..pipeline.perfmodel import IFDKPerformanceModel

    model = model or IFDKPerformanceModel()

    def estimate(job: ReconstructionJob) -> Optional[float]:
        gpus = 1
        while gpus <= 1024:
            try:
                rows, columns = choose_grid(job.problem, gpus)
            except ValueError:
                gpus *= 2
                continue
            return model.breakdown(job.problem, rows, columns).t_runtime
        return None

    return estimate


@dataclass(frozen=True)
class AdmissionPolicy:
    """Limits enforced when a job is offered to the queue."""

    max_depth: int = 256
    max_backlog_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_depth <= 0:
            raise ValueError("max_depth must be positive")
        if self.max_backlog_seconds is not None and self.max_backlog_seconds <= 0:
            raise ValueError("max_backlog_seconds must be positive when given")


class JobQueue:
    """Priority queue of waiting jobs with admission control."""

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        *,
        estimator: Optional[Callable[[ReconstructionJob], Optional[float]]] = None,
    ):
        self.policy = policy or AdmissionPolicy()
        self._jobs: List[ReconstructionJob] = []
        self.offered = 0
        self.rejected = 0
        # Lazily built: most callers (the service) estimate before offering,
        # so the model is only constructed when a job actually needs it.
        self._estimator = estimator

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[ReconstructionJob]:
        return iter(self.ordered())

    @property
    def backlog_seconds(self) -> float:
        """Sum of the queued jobs' estimated service times."""
        return sum(job.estimated_seconds or 0.0 for job in self._jobs)

    def ordered(self) -> List[ReconstructionJob]:
        """Snapshot of the queue in scheduling order."""
        return sorted(self._jobs, key=job_sort_key)

    def peek(self) -> Optional[ReconstructionJob]:
        """The job the scheduler should consider first (or ``None``)."""
        if not self._jobs:
            return None
        return min(self._jobs, key=job_sort_key)

    # ------------------------------------------------------------------ #
    def offer(self, job: ReconstructionJob) -> bool:
        """Apply admission control; enqueue on success.

        Returns ``True`` and marks the job ``QUEUED`` when admitted;
        otherwise marks it ``REJECTED`` with the reason and returns
        ``False``.

        A job arriving without ``estimated_seconds`` does **not** bypass the
        backlog cap: its service time is estimated from the performance
        model (and recorded on the job, so it also counts against later
        arrivals).  Only when no estimate can be produced at all is the job
        admitted with a warning — loud, never silent.
        """
        self.offered += 1
        if len(self._jobs) >= self.policy.max_depth:
            job.mark_rejected(
                f"queue full: depth {len(self._jobs)} at cap {self.policy.max_depth}"
            )
            self.rejected += 1
            return False
        cap = self.policy.max_backlog_seconds
        if cap is not None:
            if job.estimated_seconds is None:
                job.estimated_seconds = self._estimate(job)
            if job.estimated_seconds is None:
                warnings.warn(
                    f"job {job.job_id} has no runtime estimate and none could "
                    "be derived from the performance model; admitting it "
                    "without counting it against the backlog cap",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                backlog = self.backlog_seconds + job.estimated_seconds
                if backlog > cap:
                    job.mark_rejected(
                        f"backlog {backlog:.1f}s exceeds admission cap {cap:.1f}s"
                    )
                    self.rejected += 1
                    return False
        job.mark_queued()
        self._jobs.append(job)
        return True

    def _estimate(self, job: ReconstructionJob) -> Optional[float]:
        if self._estimator is None:
            self._estimator = model_runtime_estimator()
        return self._estimator(job)

    def remove(self, job: ReconstructionJob) -> None:
        """Remove a specific job (used when the scheduler places it)."""
        self._jobs.remove(job)

    def drain(self) -> List[ReconstructionJob]:
        """Remove and return every queued job in scheduling order."""
        jobs = self.ordered()
        self._jobs.clear()
        return jobs
