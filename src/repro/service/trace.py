"""Multi-tenant arrival traces: JSON format, replay input, synthesis.

A trace is the workload the service replays on its simulated clock: one
entry per job with an arrival time, the submitting tenant, the problem
specification (``"NuxNvxNp->NxxNyxNz"``), the dataset content key, a
priority class and a latency SLO.  Traces round-trip through a small JSON
document::

    {
      "version": 1,
      "cluster_gpus": 16,
      "jobs": [
        {"id": "job-0000", "tenant": "tenant-0", "arrival": 0.0,
         "problem": "1024x1024x1024->512x512x512", "dataset": "ds-2",
         "priority": 1, "slo": 20.0, "ramp_filter": "ram-lak"},
        ...
      ]
    }

:func:`synthetic_trace` generates the mixed multi-tenant workload used by
``repro serve``, the throughput benchmark and the example: a seeded Poisson
arrival process over a population of Table-4-class interactive jobs and
2K-class heavy reconstructions (the Figure 6 problem), with tenants
re-requesting a small pool of datasets so the filtered-projection cache
sees repeats — the traffic shape a hospital PACS or beamline facility
produces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.types import ReconstructionProblem, problem_from_string
from .job import ReconstructionJob

__all__ = ["TraceEntry", "ArrivalTrace", "synthetic_trace", "MIXED_TABLE4_PROBLEMS"]

TRACE_VERSION = 1

#: The interactive slice of the synthetic workload: Table-4-class problems
#: (1024-projection scans, small-to-medium outputs) a single node can serve.
MIXED_TABLE4_PROBLEMS: Sequence[str] = (
    "512x512x1024->256x256x256",
    "512x512x1024->512x512x512",
    "1024x1024x1024->512x512x512",
    "1024x1024x1024->1024x1024x1024",
    "2048x2048x1024->1024x1024x1024",
)

#: The heavy slice: the Figure 6 2K reconstruction (4096 projections,
#: 2048^3 output) whose sub-volume forces R >= 4 on a 16 GB V100.
HEAVY_PROBLEM = "2048x2048x4096->2048x2048x2048"


@dataclass(frozen=True)
class TraceEntry:
    """One job request in a trace."""

    job_id: str
    tenant: str
    arrival_seconds: float
    problem: str
    dataset_id: str
    priority: int = 1
    slo_seconds: Optional[float] = None
    ramp_filter: str = "ram-lak"
    scenario: str = "full_scan"

    def to_json(self) -> Dict:
        return {
            "id": self.job_id,
            "tenant": self.tenant,
            "arrival": self.arrival_seconds,
            "problem": self.problem,
            "dataset": self.dataset_id,
            "priority": self.priority,
            "slo": self.slo_seconds,
            "ramp_filter": self.ramp_filter,
            "scenario": self.scenario,
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "TraceEntry":
        try:
            return cls(
                job_id=str(payload["id"]),
                tenant=str(payload.get("tenant", "default")),
                arrival_seconds=float(payload["arrival"]),
                problem=str(payload["problem"]),
                dataset_id=str(payload.get("dataset", "")),
                priority=int(payload.get("priority", 1)),
                slo_seconds=(
                    None if payload.get("slo") is None else float(payload["slo"])
                ),
                ramp_filter=str(payload.get("ramp_filter", "ram-lak")),
                scenario=str(payload.get("scenario", "full_scan")),
            )
        except KeyError as exc:
            raise ValueError(f"trace entry missing required field {exc}") from exc
        except TypeError as exc:
            raise ValueError(f"trace entry field has the wrong type: {exc}") from exc

    def to_job(self) -> ReconstructionJob:
        return ReconstructionJob(
            problem=problem_from_string(self.problem),
            tenant=self.tenant,
            dataset_id=self.dataset_id or f"dataset-{self.job_id}",
            priority=self.priority,
            slo_seconds=self.slo_seconds,
            arrival_seconds=self.arrival_seconds,
            ramp_filter=self.ramp_filter,
            scenario=self.scenario,
            job_id=self.job_id,
        )


@dataclass
class ArrivalTrace:
    """An ordered multi-tenant workload plus the cluster it targets."""

    entries: List[TraceEntry] = field(default_factory=list)
    cluster_gpus: int = 16
    description: str = ""

    def __post_init__(self) -> None:
        if self.cluster_gpus <= 0:
            raise ValueError("cluster_gpus must be positive")
        self.entries = sorted(self.entries, key=lambda e: (e.arrival_seconds, e.job_id))

    def __len__(self) -> int:
        return len(self.entries)

    def jobs(self) -> List[ReconstructionJob]:
        """Fresh :class:`ReconstructionJob` objects, in arrival order."""
        return [entry.to_job() for entry in self.entries]

    @property
    def tenants(self) -> List[str]:
        return sorted({entry.tenant for entry in self.entries})

    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        return json.dumps(
            {
                "version": TRACE_VERSION,
                "cluster_gpus": self.cluster_gpus,
                "description": self.description,
                "jobs": [entry.to_json() for entry in self.entries],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ArrivalTrace":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "jobs" not in payload:
            raise ValueError("trace must be a JSON object with a 'jobs' array")
        if not isinstance(payload["jobs"], list):
            raise ValueError(
                f"trace 'jobs' must be an array, got "
                f"{type(payload['jobs']).__name__}"
            )
        version = payload.get("version", TRACE_VERSION)
        if version != TRACE_VERSION:
            raise ValueError(f"unsupported trace version {version!r}")
        if not all(isinstance(job, dict) for job in payload["jobs"]):
            raise ValueError("every trace job entry must be a JSON object")
        try:
            cluster_gpus = int(payload.get("cluster_gpus", 16))
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"trace 'cluster_gpus' must be an integer: {exc}"
            ) from exc
        return cls(
            entries=[TraceEntry.from_json(job) for job in payload["jobs"]],
            cluster_gpus=cluster_gpus,
            description=str(payload.get("description", "")),
        )

    def save(self, path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path) -> "ArrivalTrace":
        return cls.from_json(Path(path).read_text())


def synthetic_trace(
    n_jobs: int = 24,
    *,
    cluster_gpus: int = 16,
    seed: int = 0,
    n_tenants: int = 4,
    n_datasets: int = 6,
    heavy_fraction: float = 0.25,
    mean_interarrival_seconds: float = 1.2,
    interactive_slo_seconds: float = 25.0,
    heavy_slo_seconds: float = 90.0,
    scenario_mix: Optional[Dict[str, float]] = None,
    tenant_mix: Optional[Dict[str, float]] = None,
) -> ArrivalTrace:
    """Generate a seeded multi-tenant arrival trace (deterministic per seed).

    Arrivals follow a Poisson process; each job is a heavy 2K reconstruction
    with probability ``heavy_fraction`` and an interactive Table-4-class
    problem otherwise.  Datasets are drawn from a pool of ``n_datasets``
    content keys per class, so repeats exercise the filtered-projection
    cache.  Heavy jobs get a looser SLO and a lower priority class than
    interactive ones, which is what makes naive FIFO's head-of-line
    blocking visible.

    ``scenario_mix`` optionally maps acquisition-scenario preset names to
    sampling weights (e.g. ``{"full_scan": 0.6, "short_scan": 0.4}``); by
    default every job is a ``full_scan``.  ``tenant_mix`` optionally maps
    tenant names to arrival weights (e.g. ``{"aggressor": 10.0,
    "victim": 1.0}``) and replaces the uniform draw over ``n_tenants`` —
    the skewed-load input of the fair-share benchmark.  Both mixes use
    *separate* seeded streams, so enabling either changes nothing else
    about the trace.
    """
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    if not 0.0 <= heavy_fraction <= 1.0:
        raise ValueError("heavy_fraction must be in [0, 1]")
    scenario_names: List[str] = []
    scenario_weights: List[float] = []
    if scenario_mix:
        for name, weight in scenario_mix.items():
            if weight < 0:
                raise ValueError(f"scenario weight for {name!r} must be >= 0")
            scenario_names.append(str(name))
            scenario_weights.append(float(weight))
        total = sum(scenario_weights)
        if total <= 0:
            raise ValueError("scenario_mix weights must sum to a positive value")
        scenario_weights = [w / total for w in scenario_weights]
    tenant_names: List[str] = []
    tenant_weights: List[float] = []
    if tenant_mix:
        for name, weight in tenant_mix.items():
            if weight < 0:
                raise ValueError(f"tenant weight for {name!r} must be >= 0")
            tenant_names.append(str(name))
            tenant_weights.append(float(weight))
        total = sum(tenant_weights)
        if total <= 0:
            raise ValueError("tenant_mix weights must sum to a positive value")
        tenant_weights = [w / total for w in tenant_weights]
    scenario_rng = np.random.default_rng(seed + 0x5C)
    tenant_rng = np.random.default_rng(seed + 0x7E)
    rng = np.random.default_rng(seed)
    entries: List[TraceEntry] = []
    now = 0.0
    for index in range(n_jobs):
        if index > 0:
            now += float(rng.exponential(mean_interarrival_seconds))
        scenario = (
            str(scenario_rng.choice(scenario_names, p=scenario_weights))
            if scenario_names else "full_scan"
        )
        heavy = bool(rng.random() < heavy_fraction)
        if heavy:
            problem = HEAVY_PROBLEM
            dataset = f"heavy-ds-{int(rng.integers(max(1, n_datasets // 2)))}"
            priority = 2
            slo = heavy_slo_seconds
        else:
            problem = str(rng.choice(list(MIXED_TABLE4_PROBLEMS)))
            dataset = f"scan-ds-{int(rng.integers(n_datasets))}"
            priority = int(rng.integers(0, 2))
            slo = interactive_slo_seconds
        # The uniform draw always happens so the main stream (arrivals,
        # problems, datasets) is identical with and without a tenant_mix.
        tenant = f"tenant-{int(rng.integers(n_tenants))}"
        if tenant_names:
            tenant = str(tenant_rng.choice(tenant_names, p=tenant_weights))
        entries.append(
            TraceEntry(
                job_id=f"job-{index:04d}",
                tenant=tenant,
                arrival_seconds=round(now, 3),
                problem=problem,
                dataset_id=dataset,
                priority=priority,
                slo_seconds=slo,
                scenario=scenario,
            )
        )
    return ArrivalTrace(
        entries=entries,
        cluster_gpus=cluster_gpus,
        description=(
            f"synthetic mixed workload: {n_jobs} jobs, "
            f"{heavy_fraction:.0%} heavy 2K reconstructions, seed {seed}"
        ),
    )
