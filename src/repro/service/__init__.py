"""Reconstruction-as-a-service: multi-tenant scheduling over the iFDK model.

The serving layer turns the one-shot Section 4 pipeline into a multi-tenant
service: jobs arrive with priorities and latency SLOs, an admission-
controlled queue feeds an SLO-aware scheduler that packs concurrent jobs
onto a simulated GPU cluster using Eq. 8-19 cost estimates, and a
content-keyed LRU cache of filtered projections lets repeat requests skip
the filtering stage.  ``repro serve`` and ``repro submit`` expose it on the
command line.

Real serving rides on three durable pieces: the
:class:`~repro.service.process_dispatch.ProcessDispatcher` executes pilots
in a crash-isolated process pool with per-job timeouts and bounded
retries, the :class:`~repro.service.store.JobStore` journals every job
transition so ``repro serve --state-dir`` recovers its queue after a kill,
and the :class:`~repro.service.diskcache.OnDiskFilteredCache` shares
filtered projections across worker processes and restarts.  The
:class:`~repro.service.http.ServiceHTTPServer` exposes it all over
HTTP/JSON, speaking :class:`~repro.api.ReconstructionPlan`.
"""

from .cache import CacheKey, CacheStatistics, FilteredProjectionCache, fingerprint_stack
from .diskcache import OnDiskFilteredCache
from .dispatch import DEFAULT_PILOT_PROBLEM, BatchedDispatcher
from .fairness import FairShareQueue, jains_index
from .http import ServiceHTTPServer
from .job import JobState, ReconstructionJob, job_sort_key
from .metrics import QueueSample, ServiceMetrics, percentile
from .process_dispatch import ProcessDispatcher
from .queue import AdmissionPolicy, JobQueue, model_runtime_estimator
from .scheduler import AllocationPlan, ClusterScheduler, GPUCluster, Placement
from .service import ReconstructionService, ServiceReport
from .store import JobStore, RecoveredState
from .trace import (
    MIXED_TABLE4_PROBLEMS,
    ArrivalTrace,
    TraceEntry,
    synthetic_trace,
)

__all__ = [
    "AdmissionPolicy",
    "AllocationPlan",
    "ArrivalTrace",
    "BatchedDispatcher",
    "CacheKey",
    "CacheStatistics",
    "DEFAULT_PILOT_PROBLEM",
    "ClusterScheduler",
    "FairShareQueue",
    "FilteredProjectionCache",
    "GPUCluster",
    "JobQueue",
    "JobState",
    "JobStore",
    "MIXED_TABLE4_PROBLEMS",
    "OnDiskFilteredCache",
    "Placement",
    "ProcessDispatcher",
    "QueueSample",
    "ReconstructionJob",
    "ReconstructionService",
    "RecoveredState",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "ServiceReport",
    "TraceEntry",
    "fingerprint_stack",
    "jains_index",
    "job_sort_key",
    "model_runtime_estimator",
    "percentile",
    "synthetic_trace",
]
