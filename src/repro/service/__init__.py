"""Reconstruction-as-a-service: multi-tenant scheduling over the iFDK model.

The serving layer turns the one-shot Section 4 pipeline into a multi-tenant
service: jobs arrive with priorities and latency SLOs, an admission-
controlled queue feeds an SLO-aware scheduler that packs concurrent jobs
onto a simulated GPU cluster using Eq. 8-19 cost estimates, and a
content-keyed LRU cache of filtered projections lets repeat requests skip
the filtering stage.  ``repro serve`` and ``repro submit`` expose it on the
command line.
"""

from .cache import CacheKey, CacheStatistics, FilteredProjectionCache, fingerprint_stack
from .dispatch import DEFAULT_PILOT_PROBLEM, BatchedDispatcher
from .job import JobState, ReconstructionJob, job_sort_key
from .metrics import QueueSample, ServiceMetrics, percentile
from .queue import AdmissionPolicy, JobQueue
from .scheduler import AllocationPlan, ClusterScheduler, GPUCluster, Placement
from .service import ReconstructionService, ServiceReport
from .trace import (
    MIXED_TABLE4_PROBLEMS,
    ArrivalTrace,
    TraceEntry,
    synthetic_trace,
)

__all__ = [
    "AdmissionPolicy",
    "AllocationPlan",
    "ArrivalTrace",
    "BatchedDispatcher",
    "CacheKey",
    "CacheStatistics",
    "DEFAULT_PILOT_PROBLEM",
    "ClusterScheduler",
    "FilteredProjectionCache",
    "GPUCluster",
    "JobQueue",
    "JobState",
    "MIXED_TABLE4_PROBLEMS",
    "Placement",
    "QueueSample",
    "ReconstructionJob",
    "ReconstructionService",
    "ServiceMetrics",
    "ServiceReport",
    "TraceEntry",
    "fingerprint_stack",
    "job_sort_key",
    "percentile",
    "synthetic_trace",
]
