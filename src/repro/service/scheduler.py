"""SLO-aware packing of reconstruction jobs onto a simulated GPU cluster.

The scheduler treats the cluster as a flat pool of identical GPUs (one MPI
rank per GPU, as in the paper) and, for every waiting job, chooses **how
many GPUs to spend and how to shape them** into the ``(R, C)`` rank grid of
Section 4.1:

* candidate allocations are power-of-two GPU counts (the grids the paper
  evaluates);
* for each count, ``choose_grid`` picks the smallest ``R`` satisfying the
  Section 4.1.5 device-memory constraint;
* the :class:`~repro.pipeline.perfmodel.IFDKPerformanceModel` predicts the
  job's runtime on that grid — with the filtering term dropped when the
  job's dataset is already in the
  :class:`~repro.service.cache.FilteredProjectionCache`;
* the **slo** policy then picks the *cheapest* allocation whose predicted
  completion meets the job's deadline (bin-packing GPUs across concurrent
  jobs).  When nothing that fits the free GPUs can meet the SLO, it defers
  the job behind a reservation if a larger grid started at a known release
  time still would, and only otherwise falls back to the fastest feasible
  allocation.  Jobs are considered in ``(priority, deadline)`` order with
  EASY-style backfill: when the head job does not fit, a GPU reservation is
  computed for it from the running jobs' finish times, and later jobs may
  only jump ahead if they finish before that reservation or fit into GPUs
  the head will not need.
* the **fifo** baseline mimics a naive one-job-at-a-time deployment: strict
  arrival order, each job gets the whole cluster, later jobs wait — the
  configuration the service layer exists to beat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.types import ReconstructionProblem
from ..gpusim.device import DeviceSpec, TESLA_V100
from ..pipeline.config import choose_grid
from ..pipeline.perfmodel import IFDKPerformanceModel
from .cache import CacheKey, FilteredProjectionCache
from .job import ReconstructionJob
from .queue import JobQueue

__all__ = ["GPUCluster", "Placement", "AllocationPlan", "ClusterScheduler"]


class GPUCluster:
    """A pool of identical GPUs with simple counted allocation."""

    def __init__(self, total_gpus: int, *, device: DeviceSpec = TESLA_V100):
        if total_gpus <= 0:
            raise ValueError("total_gpus must be positive")
        self.total_gpus = total_gpus
        self.device = device
        self.in_use = 0

    @property
    def free_gpus(self) -> int:
        return self.total_gpus - self.in_use

    def allocate(self, gpus: int) -> None:
        if gpus <= 0:
            raise ValueError("gpus must be positive")
        if gpus > self.free_gpus:
            raise RuntimeError(
                f"cannot allocate {gpus} GPUs: only {self.free_gpus} free"
            )
        self.in_use += gpus

    def release(self, gpus: int) -> None:
        if gpus <= 0 or gpus > self.in_use:
            raise RuntimeError(f"cannot release {gpus} GPUs ({self.in_use} in use)")
        self.in_use -= gpus


@dataclass(frozen=True)
class AllocationPlan:
    """One candidate execution of a job: GPU count, grid and predicted time.

    ``filter_seconds``/``backprojection_seconds`` carry the per-stage split
    of the Eq. 8-19 breakdown (``T_flt``/``T_bp``), so the service can
    report how each completed job divided its time between the two hot
    paths instead of losing that split above ``FDKResult``.
    """

    gpus: int
    rows: int
    columns: int
    runtime_seconds: float
    cache_hit: bool
    filter_seconds: float = 0.0
    backprojection_seconds: float = 0.0

    def finish_at(self, start: float) -> float:
        return start + self.runtime_seconds


@dataclass
class Placement:
    """A job actually running on the cluster."""

    job: ReconstructionJob
    plan: AllocationPlan
    start_seconds: float

    @property
    def finish_seconds(self) -> float:
        return self.plan.finish_at(self.start_seconds)

    @property
    def gpus(self) -> int:
        return self.plan.gpus


class ClusterScheduler:
    """Chooses when each queued job runs and on how many GPUs."""

    POLICIES = ("slo", "fifo")

    def __init__(
        self,
        cluster: GPUCluster,
        *,
        model: Optional[IFDKPerformanceModel] = None,
        policy: str = "slo",
        cache: Optional[FilteredProjectionCache] = None,
        max_gpus_per_job: Optional[int] = None,
    ):
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected one of {self.POLICIES}")
        self.cluster = cluster
        self.model = model or IFDKPerformanceModel()
        self.policy = policy
        self.cache = cache
        self.max_gpus_per_job = max_gpus_per_job or cluster.total_gpus
        # Traces reuse a handful of problem shapes, and every scheduling
        # event re-evaluates them; memoize the Eq. 8-19 evaluations.
        self._runtime_cache: dict = {}

    # ------------------------------------------------------------------ #
    # Cost prediction
    # ------------------------------------------------------------------ #
    def runtime_seconds(
        self,
        problem: ReconstructionProblem,
        rows: int,
        columns: int,
        *,
        cached: bool = False,
    ) -> float:
        """Predicted end-to-end runtime of one job on an ``R x C`` grid.

        A cache hit removes the filtering stage from the Eq. 17 overlap:
        the ranks stream already-filtered projections from the PFS, so
        ``T_compute = max(T_load, T_AllGather, T_bp)``.
        """
        return self.stage_times(problem, rows, columns, cached=cached)[0]

    def stage_times(
        self,
        problem: ReconstructionProblem,
        rows: int,
        columns: int,
        *,
        cached: bool = False,
    ) -> Tuple[float, float, float]:
        """``(runtime, T_flt, T_bp)`` for one job on an ``R x C`` grid.

        The filtering term is zero on a cache hit — the stage never runs —
        which is the per-stage information :class:`AllocationPlan` and the
        service metrics surface.
        """
        key = (problem, rows, columns, cached)
        hit = self._runtime_cache.get(key)
        if hit is not None:
            return hit
        breakdown = self.model.breakdown(problem, rows, columns)
        t_flt = 0.0 if cached else breakdown.t_flt
        if cached:
            t_compute = max(breakdown.t_load, breakdown.t_allgather, breakdown.t_bp)
            seconds = t_compute + breakdown.t_post
        else:
            seconds = breakdown.t_runtime
        times = (seconds, t_flt, breakdown.t_bp)
        self._runtime_cache[key] = times
        return times

    def _is_cached(self, job: ReconstructionJob) -> bool:
        if self.cache is None:
            return False
        return self.cache.contains(CacheKey.for_job(job))

    def candidate_plans(self, job: ReconstructionJob, gpu_budget: int) -> List[AllocationPlan]:
        """All feasible power-of-two allocations within ``gpu_budget`` GPUs."""
        cached = self._is_cached(job)
        budget = min(gpu_budget, self.max_gpus_per_job)
        plans: List[AllocationPlan] = []
        gpus = 1
        while gpus <= budget:
            try:
                rows, columns = choose_grid(
                    job.problem, gpus, device=self.cluster.device
                )
            except ValueError:
                rows = columns = 0  # infeasible at this count (memory)
            if rows:
                runtime, t_flt, t_bp = self.stage_times(
                    job.problem, rows, columns, cached=cached
                )
                plans.append(
                    AllocationPlan(
                        gpus=gpus,
                        rows=rows,
                        columns=columns,
                        runtime_seconds=runtime,
                        cache_hit=cached,
                        filter_seconds=t_flt,
                        backprojection_seconds=t_bp,
                    )
                )
            gpus *= 2
        return plans

    def best_plan(
        self,
        job: ReconstructionJob,
        gpu_budget: int,
        now: float,
        *,
        require_slo: bool = False,
    ) -> Optional[AllocationPlan]:
        """The allocation the **slo** policy would pick within ``gpu_budget``.

        Cheapest (fewest GPUs) plan meeting the deadline; otherwise — unless
        ``require_slo`` — the plan with the earliest finish (ties broken
        toward fewer GPUs, so a hopeless SLO does not monopolize the
        cluster).
        """
        plans = self.candidate_plans(job, gpu_budget)
        if not plans:
            return None
        meeting = [p for p in plans if p.finish_at(now) <= job.deadline_seconds]
        if meeting:
            return min(meeting, key=lambda p: p.gpus)
        if require_slo:
            return None
        return min(plans, key=lambda p: (p.runtime_seconds, p.gpus))

    def largest_plan(self, job: ReconstructionJob, gpu_budget: int) -> Optional[AllocationPlan]:
        """The biggest feasible allocation (what naive FIFO always takes)."""
        plans = self.candidate_plans(job, gpu_budget)
        if not plans:
            return None
        return max(plans, key=lambda p: p.gpus)

    # ------------------------------------------------------------------ #
    # Scheduling cycle
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        queue: JobQueue,
        now: float,
        running: Sequence[Placement],
    ) -> Tuple[List[Placement], List[ReconstructionJob]]:
        """Place as many queued jobs as the policy allows at time ``now``.

        Returns ``(placements, rejected)``; placed jobs are removed from the
        queue, marked running and have their GPUs allocated.  Jobs that can
        never run on this cluster (memory-infeasible even with every GPU)
        are removed and returned as rejected.
        """
        if self.policy == "fifo":
            return self._schedule_fifo(queue, now)
        return self._schedule_slo(queue, now, running)

    def _place(self, queue: JobQueue, job: ReconstructionJob,
               plan: AllocationPlan, now: float) -> Placement:
        queue.remove(job)
        self.cluster.allocate(plan.gpus)
        cache_hit = plan.cache_hit
        if self.cache is not None:
            # The counted lookup: statistics reflect jobs that actually ran.
            cache_hit = self.cache.lookup(CacheKey.for_job(job))
        job.mark_running(
            now, gpus=plan.gpus, rows=plan.rows, columns=plan.columns,
            cache_hit=cache_hit,
            filter_seconds=plan.filter_seconds,
            backprojection_seconds=plan.backprojection_seconds,
        )
        return Placement(job=job, plan=plan, start_seconds=now)

    def _schedule_fifo(
        self, queue: JobQueue, now: float
    ) -> Tuple[List[Placement], List[ReconstructionJob]]:
        """Naive baseline: whole cluster per job, strict submission order."""
        placements: List[Placement] = []
        rejected: List[ReconstructionJob] = []
        while len(queue) > 0 and self.cluster.free_gpus == self.cluster.total_gpus:
            head = min(queue.ordered(), key=lambda j: (j.arrival_seconds, j.sequence))
            plan = self.largest_plan(head, self.cluster.total_gpus)
            if plan is None:
                queue.remove(head)
                head.mark_rejected("infeasible: does not fit the cluster")
                rejected.append(head)
                continue
            placements.append(self._place(queue, head, plan, now))
        return placements, rejected

    def _schedule_slo(
        self,
        queue: JobQueue,
        now: float,
        running: Sequence[Placement],
    ) -> Tuple[List[Placement], List[ReconstructionJob]]:
        placements: List[Placement] = []
        rejected: List[ReconstructionJob] = []
        blocked_head: Optional[ReconstructionJob] = None
        reservation_time = float("inf")
        spare_at_reservation = 0

        # The queue owns the consideration order: plain (priority,
        # deadline, FIFO) for a JobQueue, weighted deficit-round-robin
        # with quotas and aging for a FairShareQueue.
        for job in queue.scheduling_order(now, running):
            free = self.cluster.free_gpus
            if free == 0:
                break
            if blocked_head is None:
                plan = self.best_plan(job, free, now, require_slo=True)
                if plan is not None:
                    placements.append(self._place(queue, job, plan, now))
                    continue
                # Nothing that fits the free GPUs meets the SLO.  Waiting
                # for a larger allocation may still meet it — prefer that
                # over knowingly burning the deadline.
                deferred = self._deferred_slo_reservation(
                    job, now, list(running) + placements
                )
                if deferred is not None:
                    blocked_head = job
                    reservation_time, gpus_needed, available = deferred
                    spare_at_reservation = max(0, available - gpus_needed)
                    continue
                # The SLO is unmeetable either way: run best-effort now.
                plan = self.best_plan(job, free, now)
                if plan is not None:
                    placements.append(self._place(queue, job, plan, now))
                    continue
                # Head does not fit right now.  Can it ever run?
                full_plan = self.best_plan(job, self.cluster.total_gpus, now)
                if full_plan is None:
                    queue.remove(job)
                    job.mark_rejected("infeasible: does not fit the cluster")
                    rejected.append(job)
                    continue
                blocked_head = job
                reservation_time, available = self._reservation_for(
                    full_plan.gpus, now, list(running) + placements
                )
                spare_at_reservation = max(0, available - full_plan.gpus)
                continue
            # Backfill mode: only jobs that stay out of the head's way.
            plan = self.best_plan(job, free, now)
            if plan is None:
                continue
            fits_before = plan.finish_at(now) <= reservation_time
            fits_beside = plan.gpus <= spare_at_reservation
            if fits_before or fits_beside:
                placements.append(self._place(queue, job, plan, now))
                if fits_beside and not fits_before:
                    spare_at_reservation -= plan.gpus
        return placements, rejected

    def _deferred_slo_reservation(
        self, job: ReconstructionJob, now: float, running: Sequence[Placement]
    ) -> Optional[Tuple[float, int, int]]:
        """A future start that still meets the job's SLO, if one exists.

        Considers every allocation size (cheapest first) over the whole
        cluster: the job starts when enough running jobs have released
        their GPUs, and qualifies when that start plus the predicted
        runtime stays inside the deadline.  Returns ``(reservation_time,
        gpus, gpus_available_then)`` or ``None``.
        """
        if job.deadline_seconds == float("inf"):
            return None  # best-effort jobs never wait for bigger grids
        for plan in sorted(
            self.candidate_plans(job, self.cluster.total_gpus),
            key=lambda p: p.gpus,
        ):
            start, available = self._reservation_for(plan.gpus, now, running)
            if start <= now or start == float("inf"):
                continue
            if start + plan.runtime_seconds <= job.deadline_seconds:
                return start, plan.gpus, available
        return None

    def _reservation_for(
        self, gpus_needed: int, now: float, running: Sequence[Placement]
    ) -> Tuple[float, int]:
        """Earliest time ``gpus_needed`` GPUs are free, and how many are then.

        Walks the running placements in finish order, accumulating released
        GPUs onto the currently-free pool.
        """
        free = self.cluster.free_gpus
        if free >= gpus_needed:
            return now, free
        for placement in sorted(running, key=lambda p: p.finish_seconds):
            free += placement.gpus
            if free >= gpus_needed:
                return placement.finish_seconds, free
        return float("inf"), free
