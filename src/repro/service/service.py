"""The reconstruction service: queue + scheduler + cache + metrics.

:class:`ReconstructionService` is the seam every serving feature plugs into.
It owns the simulated cluster, admits jobs through the
:class:`~repro.service.queue.JobQueue`, lets the
:class:`~repro.service.scheduler.ClusterScheduler` pack them onto GPUs, and
advances a discrete-event clock: time jumps between job arrivals and job
completions, with a scheduling cycle after every event.  Job runtimes come
from the calibrated Eq. 8-19 performance model, so a 2,048-GPU deployment
replays in milliseconds of wall time.

On completion each job's filtered projections are inserted into the
:class:`~repro.service.cache.FilteredProjectionCache`; later jobs on the
same dataset/filter skip the filtering stage (``T_flt`` leaves the Eq. 17
overlap), which both shortens them and frees filtering capacity.

With ``workers > 0`` the service additionally owns a
:class:`~repro.service.dispatch.BatchedDispatcher`: every scheduling
cycle's placements are dispatched as one batch onto a real worker pool,
where each job runs a pilot reconstruction concurrently with its
co-scheduled peers.  Submission is serialized on a reentrant service lock:
concurrent tenants may call :meth:`submit` from their own threads, and the
event loop processes each event atomically under the same lock, so
concurrent submissions interleave between events rather than corrupting
them.  The measured worker accounting lands in
:class:`~repro.service.metrics.ServiceMetrics`.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..core.types import ReconstructionProblem
from ..gpusim.device import DeviceSpec, TESLA_V100
from ..obs import NULL_METRICS, MetricsRegistry, get_tracer
from ..pipeline.perfmodel import IFDKPerformanceModel
from .cache import CacheKey, FilteredProjectionCache
from .diskcache import OnDiskFilteredCache
from .dispatch import BatchedDispatcher
from .fairness import FairShareQueue
from .job import JobState, ReconstructionJob
from .metrics import ServiceMetrics
from .process_dispatch import ProcessDispatcher
from .queue import AdmissionPolicy, JobQueue
from .scheduler import ClusterScheduler, GPUCluster, Placement
from .store import JobStore
from .trace import ArrivalTrace

__all__ = ["ReconstructionService", "ServiceReport"]


@dataclass
class ServiceReport:
    """Outcome of one replayed workload."""

    policy: str
    cluster_gpus: int
    summary: Dict[str, float]
    jobs: List[Dict] = field(default_factory=list)
    description: str = ""
    backend: str = "reference"

    def as_dict(self) -> Dict:
        return {
            "policy": self.policy,
            "cluster_gpus": self.cluster_gpus,
            "backend": self.backend,
            "description": self.description,
            "summary": self.summary,
            "jobs": self.jobs,
        }


class ReconstructionService:
    """A multi-tenant reconstruction-as-a-service front end (simulated)."""

    def __init__(
        self,
        cluster_gpus: int = 16,
        *,
        policy: str = "slo",
        model: Optional[IFDKPerformanceModel] = None,
        cache: Optional[FilteredProjectionCache] = None,
        admission: Optional[AdmissionPolicy] = None,
        device: DeviceSpec = TESLA_V100,
        max_gpus_per_job: Optional[int] = None,
        backend: str = "reference",
        workers: int = 0,
        pilot_problem: Union[ReconstructionProblem, str, None] = None,
        streaming_chunk_size: Optional[int] = None,
        obs: Optional[MetricsRegistry] = None,
        dispatcher: str = "thread",
        state_dir=None,
        cache_dir=None,
        dispatch_timeout_seconds: float = 60.0,
        dispatch_max_retries: int = 2,
        fault_injection: Optional[Dict[str, dict]] = None,
    ):
        from ..backends import get_backend  # late import: backends import core

        if isinstance(workers, bool) or not isinstance(workers, int) or workers < 0:
            raise ValueError(
                f"workers must be a non-negative integer (got {workers!r}); "
                "0 disables real execution"
            )
        if dispatcher not in ("thread", "process"):
            raise ValueError(
                f"dispatcher must be 'thread' or 'process' (got {dispatcher!r})"
            )
        if dispatcher == "process" and streaming_chunk_size is not None:
            raise ValueError(
                "streaming pilots are a thread-dispatcher configuration; "
                "the process dispatcher always runs whole-stack pilots"
            )
        self.backend = get_backend(backend).name
        self.workers = int(workers)
        self.dispatcher_kind = dispatcher
        self.dispatcher: Union[BatchedDispatcher, ProcessDispatcher, None] = None
        if self.workers and dispatcher == "process":
            self.dispatcher = ProcessDispatcher(
                self.workers,
                backend=self.backend,
                pilot_problem=pilot_problem,
                cache_dir=cache_dir,
                timeout_seconds=dispatch_timeout_seconds,
                max_retries=dispatch_max_retries,
                fault_injection=fault_injection,
                on_executed=self._on_pilot_executed,
                on_failed=self._on_pilot_failed,
                on_retry=self._on_pilot_retry,
                on_timeout=self._on_pilot_timeout,
                on_crash=self._on_pilot_crash,
            )
        elif self.workers:
            self.dispatcher = BatchedDispatcher(
                self.workers, backend=self.backend, pilot_problem=pilot_problem,
                streaming_chunk_size=streaming_chunk_size,
            )
        self._lock = threading.RLock()
        self.cluster = GPUCluster(cluster_gpus, device=device)
        if cache is not None:
            self.cache = cache
        elif cache_dir is not None:
            # Shared on-disk cache: entries (and their LRU recency) are
            # files, so they survive restarts and are visible to every
            # process sharing the directory — including pilot workers.
            self.cache = OnDiskFilteredCache(cache_dir)
        else:
            self.cache = FilteredProjectionCache()
        self.scheduler = ClusterScheduler(
            self.cluster,
            model=model,
            policy=policy,
            cache=self.cache,
            max_gpus_per_job=max_gpus_per_job,
        )
        self.metrics = ServiceMetrics()  # guarded-by: _lock
        # Lifetime instruments (queue waits, cache hits, scheduler cycles).
        # ServiceMetrics stays the source of truth for per-job KPI
        # reductions; the registry covers what per-job records cannot.
        self.obs = obs if obs is not None else NULL_METRICS
        # Any fair-share knob on the admission policy upgrades the queue
        # to weighted deficit-round-robin with quotas and aging.
        if admission is not None and admission.fairness_enabled:
            self.queue: JobQueue = FairShareQueue(admission, obs=self.obs)  # guarded-by: _lock
        else:
            self.queue = JobQueue(admission)  # guarded-by: _lock
        self._running: List[Placement] = []  # guarded-by: _lock
        self._finish_heap: List = []  # guarded-by: _lock  (finish, sequence, Placement)
        self.clock_seconds = 0.0  # guarded-by: _lock
        # Registry of every job this service has seen (by id), for the
        # HTTP front door and restart recovery.
        self.jobs: Dict[str, ReconstructionJob] = {}  # guarded-by: _lock
        self.store: Optional[JobStore] = (
            JobStore(state_dir) if state_dir is not None else None
        )
        self.recovered_jobs = 0
        if self.store is not None:
            self._recover()

    @property
    def policy(self) -> str:
        return self.scheduler.policy

    @property
    def running_jobs(self) -> List[ReconstructionJob]:
        with self._lock:
            return [placement.job for placement in self._running]

    # ------------------------------------------------------------------ #
    # Restart recovery and pilot-outcome callbacks
    # ------------------------------------------------------------------ #
    def _recover(self) -> None:
        """Replay the job store's journal into this fresh service.

        Terminal jobs (completed / rejected / failed) come back as records
        only — their outcome is history, visible to ``report()`` and the
        HTTP registry.  In-flight jobs (submitted / queued / placed when
        the previous incarnation died) are re-admitted through the normal
        ``submit`` path at their original arrival times: at-least-once
        execution, no lost jobs, no duplicates (the journal dedups by id).
        """
        with self._lock:
            recovered = self.store.recover()
            self.recovered_jobs = len(recovered)
            for job in recovered.completed:
                self.jobs[job.job_id] = job
                self.metrics.record_completion(job)
            for job in recovered.rejected:
                self.jobs[job.job_id] = job
                self.metrics.record_rejection(job)
            for job in recovered.failed:
                self.jobs[job.job_id] = job
                self.metrics.record_failure(job)
            for job in recovered.pending:
                self.submit(job, now=job.arrival_seconds)
            if recovered.pending:
                self.obs.counter("service.jobs_recovered").inc(len(recovered.pending))

    def _on_pilot_executed(self, job: ReconstructionJob) -> None:
        with self._lock:
            if self.store is not None:
                self.store.record_executed(job)
            if job.pilot_cache_hit is not None:
                name = (
                    "dispatch.pilot_cache_hits" if job.pilot_cache_hit
                    else "dispatch.pilot_cache_misses"
                )
                self.obs.counter(name).inc()

    def _on_pilot_failed(self, job: ReconstructionJob) -> None:
        with self._lock:
            demoted = self.metrics.record_failure(job)
            if self.store is not None:
                self.store.record_failed(job)
            self.obs.counter("service.jobs_failed").inc()
            if demoted:
                # Obs counters are monotonic, so `service.jobs_completed`
                # (completions *observed*) cannot be walked back; this
                # counter reconciles it with summary()["jobs_completed"]:
                # current completions = observed - overturned.
                self.obs.counter("service.completions_overturned").inc()

    def _on_pilot_retry(self, job: ReconstructionJob, reason: str) -> None:
        self.obs.counter("dispatch.retries").inc()

    def _on_pilot_timeout(self, job: ReconstructionJob) -> None:
        self.obs.counter("dispatch.timeouts").inc()

    def _on_pilot_crash(self, job: ReconstructionJob) -> None:
        self.obs.counter("dispatch.crashes").inc()

    # ------------------------------------------------------------------ #
    # Submission and the event loop
    # ------------------------------------------------------------------ #
    def submit(self, job: ReconstructionJob, now: Optional[float] = None) -> bool:
        """Admit one job at time ``now`` (default: the service clock).

        Returns ``False`` — with the job marked ``REJECTED`` — when the job
        cannot ever run on this cluster or fails queue admission control.
        Safe to call from concurrent tenant threads: queue, cache and
        metrics mutations are serialized on the service lock.

        A plan-derived job (non-empty ``plan_key``) whose plan declared a
        different backend than this service runs is a caller error, not a
        rejection: the plan's key *is* its numerics identity, so silently
        re-targeting the job would make every record lie about what
        executed.  Raises :class:`ValueError` before any state changes.
        """
        if job.plan_key and job.backend != self.backend:
            raise ValueError(
                f"job {job.job_id} carries plan {job.plan_key} declaring "
                f"backend {job.backend!r}, but this service runs "
                f"{self.backend!r}; build the service from the plan "
                "(Session does) or align the plan's backend"
            )
        with self._lock:
            now = self.clock_seconds if now is None else now
            job.arrival_seconds = now
            job.backend = self.backend  # every rank runs one backend
            self.jobs[job.job_id] = job
            if self.store is not None:
                # Journal the submission before deciding its fate: a service
                # killed mid-admission re-admits the job on recovery.
                self.store.record_submitted(job)
            feasibility = self.scheduler.best_plan(job, self.cluster.total_gpus, now)
            if feasibility is None:
                job.mark_rejected(
                    f"infeasible: no (R, C) decomposition of {job.problem} fits "
                    f"{self.cluster.total_gpus} x {self.cluster.device.name}"
                )
                self.metrics.record_rejection(job)
                if self.store is not None:
                    self.store.record_rejected(job)
                self.obs.counter("service.jobs_rejected").inc()
                return False
            job.estimated_seconds = feasibility.runtime_seconds
            if not self.queue.offer(job):
                self.metrics.record_rejection(job)
                if self.store is not None:
                    self.store.record_rejected(job)
                self.obs.counter("service.jobs_rejected").inc()
                return False
            if self.store is not None:
                self.store.record_queued(job)
            self.obs.counter("service.jobs_submitted").inc()
            return True

    def submit_plan(
        self, plan, *, dataset_id: str = "", now: Optional[float] = None
    ) -> ReconstructionJob:
        """Derive a job from a declarative plan and submit it.

        The canonical plan-centric submission path: the job inherits the
        plan's problem, filtering/scenario identity, QoS fields and
        :meth:`~repro.api.ReconstructionPlan.key`, so the cache and the
        report speak the same identity as every other execution surface.
        Returns the job; inspect ``job.state`` / ``job.rejection_reason``
        for the admission outcome.

        The plan's backend must match this service's (every rank of the
        cluster runs one backend, and the plan's key *declares* the
        backend) — :meth:`submit` raises on the mismatch instead of
        silently executing on different numerics than the recorded
        identity.  The plan's ``cluster_gpus`` and ``workers`` describe
        the service a :class:`~repro.api.Session` would build; submitting
        to an existing service runs on that service's cluster and
        dispatcher.
        """
        job = ReconstructionJob.from_plan(plan, dataset_id=dataset_id)
        self.submit(job, now=now)
        return job

    def _dispatch(self, now: float) -> None:
        with self._lock:
            with get_tracer().span("service.schedule", now=now, queued=len(self.queue)):
                placements, rejected = self.scheduler.schedule(
                    self.queue, now, self._running
                )
            self.obs.counter("service.scheduler_cycles").inc()
            for job in rejected:
                self.metrics.record_rejection(job)
                if self.store is not None:
                    self.store.record_rejected(job)
                self.obs.counter("service.jobs_rejected").inc()
            for placement in placements:
                self._running.append(placement)
                heapq.heappush(
                    self._finish_heap,
                    (placement.finish_seconds, placement.job.sequence, placement),
                )
                if self.store is not None:
                    self.store.record_placed(placement.job, placement.finish_seconds)
                self.obs.counter("service.jobs_placed").inc()
                self.obs.histogram("service.queue_wait_seconds").observe(
                    placement.start_seconds - placement.job.arrival_seconds
                )
                if placement.plan.cache_hit:
                    self.obs.counter("service.cache_hits").inc()
                else:
                    self.obs.counter("service.cache_misses").inc()
            self.metrics.sample_queue_depth(now, len(self.queue))
            self.obs.gauge("service.queue_depth").set(len(self.queue))
        # Real execution rides along as one batch per scheduling cycle; the
        # pool runs outside the lock so submissions never wait on pilots.
        if self.dispatcher is not None and placements:
            self.dispatcher.dispatch(placements)

    def _complete(self, placement: Placement) -> None:
        with self._lock:
            now = placement.finish_seconds
            self._running.remove(placement)
            self.cluster.release(placement.gpus)
            job = placement.job
            job.mark_completed(now)
            self.metrics.record_completion(job)
            if self.store is not None:
                self.store.record_completed(job)
            # Completions *observed* at simulated completion time; a late
            # pilot failure may overturn one (counted separately as
            # `service.completions_overturned` — counters never decrease).
            self.obs.counter("service.jobs_completed").inc()
            if job.latency_seconds is not None:
                self.obs.histogram("service.latency_seconds").observe(
                    job.latency_seconds
                )
                # Per-tenant tail: the aggregate histogram hides a starved
                # tenant behind everyone else's fast completions.
                self.obs.histogram(
                    f"service.latency_seconds[tenant={job.tenant}]"
                ).observe(job.latency_seconds)
            # Filtering ran as part of the job (unless it was a hit); its
            # output is now on the PFS for every later job on the dataset.
            self.cache.insert(
                CacheKey.for_job(job), nbytes=job.problem.input_bytes()
            )

    def run_until_idle(self) -> None:
        """Drain the queue, all running jobs and any real executions."""
        self._drain(arrivals=[])
        if self.dispatcher is not None:
            self.dispatcher.drain()

    def reset(self) -> None:
        """Forget all jobs and metrics and rewind the clock to zero.

        The filtered-projection cache is deliberately kept warm — in a
        long-lived service its contents survive individual workloads.  The
        dispatcher's worker accounting restarts with the metrics, so a
        replay's summary always agrees with the dispatcher's counters.
        """
        with self._lock:
            if self._running or len(self.queue):
                raise RuntimeError("cannot reset while jobs are queued or running")
            self.metrics = ServiceMetrics()
            self._finish_heap.clear()
            self.clock_seconds = 0.0
            dispatcher = self.dispatcher
        # Draining waits on pilot callbacks that take the service lock from
        # worker threads, so it must happen after the lock is released.
        if dispatcher is not None:
            dispatcher.drain()
            dispatcher.reset_accounting()

    def replay(self, trace: ArrivalTrace) -> ServiceReport:
        """Replay a trace from t=0 and return the service report.

        Each replay starts from fresh metrics (see :meth:`reset`); only the
        cache carries over between replays on the same service.
        """
        arrivals = trace.jobs()
        self.reset()
        self._drain(arrivals=arrivals)
        if self.dispatcher is not None:
            self.dispatcher.drain()  # worker accounting must be complete
        return self.report(description=trace.description)

    def close(self) -> None:
        """Join the dispatcher's workers and close the job store."""
        try:
            if self.dispatcher is not None:
                self.dispatcher.close()
        finally:
            if self.store is not None:
                self.store.close()

    def __enter__(self) -> "ReconstructionService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    def _drain(self, arrivals: List[ReconstructionJob]) -> None:
        """Advance the event loop until nothing is queued, running or arriving.

        Each iteration — clock advance, completions, arrivals, starvation
        sweep — executes atomically under the service lock (the lock is
        reentrant, so the nested ``submit``/``_complete`` calls compose),
        and concurrent tenant submissions interleave *between* events.
        """
        arrivals = sorted(arrivals, key=lambda j: (j.arrival_seconds, j.sequence))
        next_arrival = 0
        with self._lock:
            start = self.clock_seconds
        self._dispatch(start)
        while True:
            with self._lock:
                if not (
                    next_arrival < len(arrivals)
                    or self._finish_heap
                    or len(self.queue)
                ):
                    break
                arrival_time = (
                    arrivals[next_arrival].arrival_seconds
                    if next_arrival < len(arrivals) else float("inf")
                )
                finish_time = (
                    self._finish_heap[0][0] if self._finish_heap else float("inf")
                )
                now = min(arrival_time, finish_time)
                if now == float("inf"):
                    # Queued jobs but nothing running or arriving: the
                    # scheduler cannot place them now and no future event
                    # will free GPUs.
                    for job in self.queue.drain():
                        job.mark_rejected(
                            "starved: no future completion can free enough GPUs"
                        )
                        self.metrics.record_rejection(job)
                        if self.store is not None:
                            self.store.record_rejected(job)
                    break
                self.clock_seconds = now
                while self._finish_heap and self._finish_heap[0][0] <= now:
                    _, _, placement = heapq.heappop(self._finish_heap)
                    self._complete(placement)
                while (
                    next_arrival < len(arrivals)
                    and arrivals[next_arrival].arrival_seconds <= now
                ):
                    self.submit(arrivals[next_arrival], now=now)
                    next_arrival += 1
            self._dispatch(now)

    # ------------------------------------------------------------------ #
    def report(self, description: str = "") -> ServiceReport:
        """Current metrics as a :class:`ServiceReport`.

        Runs under the service lock (reentrant, so the event loop may call
        it too): ``GET /metrics`` executes on HTTP handler threads while
        ``POST /advance`` mutates the metrics lists, and an unlocked
        snapshot would tear mid-update.
        """
        with self._lock:
            dispatcher = self.dispatcher
            if isinstance(dispatcher, ProcessDispatcher):
                # Dispatcher counters are the source of truth for fault
                # accounting; fold them into the metrics window at read time.
                self.metrics.dispatch_retries = dispatcher.retries
                self.metrics.dispatch_timeouts = dispatcher.timeouts
                self.metrics.dispatch_crashes = dispatcher.crashes
            tenant_weights = (
                self.queue.weights_snapshot()
                if isinstance(self.queue, FairShareQueue) else None
            )
            summary = self.metrics.summary(
                cache=self.cache, cluster_gpus=self.cluster.total_gpus,
                tenant_weights=tenant_weights,
            )
            jobs = sorted(
                self.metrics.completed + self.metrics.rejected + self.metrics.failed,
                key=lambda j: (j.arrival_seconds, j.sequence),
            )
            records = [job.as_record() for job in jobs]
        return ServiceReport(
            policy=self.policy,
            cluster_gpus=self.cluster.total_gpus,
            summary=summary,
            jobs=records,
            description=description,
            backend=self.backend,
        )

    def obs_snapshot(self) -> Dict[str, float]:
        """Flat snapshot of the lifetime instruments (empty when disabled)."""
        return self.obs.snapshot()
