"""The reconstruction service: queue + scheduler + cache + metrics.

:class:`ReconstructionService` is the seam every serving feature plugs into.
It owns the simulated cluster, admits jobs through the
:class:`~repro.service.queue.JobQueue`, lets the
:class:`~repro.service.scheduler.ClusterScheduler` pack them onto GPUs, and
advances a discrete-event clock: time jumps between job arrivals and job
completions, with a scheduling cycle after every event.  Job runtimes come
from the calibrated Eq. 8-19 performance model, so a 2,048-GPU deployment
replays in milliseconds of wall time.

On completion each job's filtered projections are inserted into the
:class:`~repro.service.cache.FilteredProjectionCache`; later jobs on the
same dataset/filter skip the filtering stage (``T_flt`` leaves the Eq. 17
overlap), which both shortens them and frees filtering capacity.

With ``workers > 0`` the service additionally owns a
:class:`~repro.service.dispatch.BatchedDispatcher`: every scheduling
cycle's placements are dispatched as one batch onto a real worker pool,
where each job runs a pilot reconstruction concurrently with its
co-scheduled peers.  Submission is serialized on a reentrant service lock:
concurrent tenants may call :meth:`submit` from their own threads, and the
event loop processes each event atomically under the same lock, so
concurrent submissions interleave between events rather than corrupting
them.  The measured worker accounting lands in
:class:`~repro.service.metrics.ServiceMetrics`.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..core.types import ReconstructionProblem
from ..gpusim.device import DeviceSpec, TESLA_V100
from ..obs import NULL_METRICS, MetricsRegistry, get_tracer
from ..pipeline.perfmodel import IFDKPerformanceModel
from .cache import CacheKey, FilteredProjectionCache
from .dispatch import BatchedDispatcher
from .job import JobState, ReconstructionJob
from .metrics import ServiceMetrics
from .queue import AdmissionPolicy, JobQueue
from .scheduler import ClusterScheduler, GPUCluster, Placement
from .trace import ArrivalTrace

__all__ = ["ReconstructionService", "ServiceReport"]


@dataclass
class ServiceReport:
    """Outcome of one replayed workload."""

    policy: str
    cluster_gpus: int
    summary: Dict[str, float]
    jobs: List[Dict] = field(default_factory=list)
    description: str = ""
    backend: str = "reference"

    def as_dict(self) -> Dict:
        return {
            "policy": self.policy,
            "cluster_gpus": self.cluster_gpus,
            "backend": self.backend,
            "description": self.description,
            "summary": self.summary,
            "jobs": self.jobs,
        }


class ReconstructionService:
    """A multi-tenant reconstruction-as-a-service front end (simulated)."""

    def __init__(
        self,
        cluster_gpus: int = 16,
        *,
        policy: str = "slo",
        model: Optional[IFDKPerformanceModel] = None,
        cache: Optional[FilteredProjectionCache] = None,
        admission: Optional[AdmissionPolicy] = None,
        device: DeviceSpec = TESLA_V100,
        max_gpus_per_job: Optional[int] = None,
        backend: str = "reference",
        workers: int = 0,
        pilot_problem: Union[ReconstructionProblem, str, None] = None,
        streaming_chunk_size: Optional[int] = None,
        obs: Optional[MetricsRegistry] = None,
    ):
        from ..backends import get_backend  # late import: backends import core

        if isinstance(workers, bool) or not isinstance(workers, int) or workers < 0:
            raise ValueError(
                f"workers must be a non-negative integer (got {workers!r}); "
                "0 disables real execution"
            )
        self.backend = get_backend(backend).name
        self.workers = int(workers)
        self.dispatcher: Optional[BatchedDispatcher] = (
            BatchedDispatcher(
                self.workers, backend=self.backend, pilot_problem=pilot_problem,
                streaming_chunk_size=streaming_chunk_size,
            )
            if self.workers
            else None
        )
        self._lock = threading.RLock()
        self.cluster = GPUCluster(cluster_gpus, device=device)
        self.cache = cache if cache is not None else FilteredProjectionCache()
        self.scheduler = ClusterScheduler(
            self.cluster,
            model=model,
            policy=policy,
            cache=self.cache,
            max_gpus_per_job=max_gpus_per_job,
        )
        self.queue = JobQueue(admission)
        self.metrics = ServiceMetrics()
        # Lifetime instruments (queue waits, cache hits, scheduler cycles).
        # ServiceMetrics stays the source of truth for per-job KPI
        # reductions; the registry covers what per-job records cannot.
        self.obs = obs if obs is not None else NULL_METRICS
        self._running: List[Placement] = []
        self._finish_heap: List = []  # (finish, sequence, Placement)
        self.clock_seconds = 0.0

    @property
    def policy(self) -> str:
        return self.scheduler.policy

    @property
    def running_jobs(self) -> List[ReconstructionJob]:
        return [placement.job for placement in self._running]

    # ------------------------------------------------------------------ #
    # Submission and the event loop
    # ------------------------------------------------------------------ #
    def submit(self, job: ReconstructionJob, now: Optional[float] = None) -> bool:
        """Admit one job at time ``now`` (default: the service clock).

        Returns ``False`` — with the job marked ``REJECTED`` — when the job
        cannot ever run on this cluster or fails queue admission control.
        Safe to call from concurrent tenant threads: queue, cache and
        metrics mutations are serialized on the service lock.

        A plan-derived job (non-empty ``plan_key``) whose plan declared a
        different backend than this service runs is a caller error, not a
        rejection: the plan's key *is* its numerics identity, so silently
        re-targeting the job would make every record lie about what
        executed.  Raises :class:`ValueError` before any state changes.
        """
        if job.plan_key and job.backend != self.backend:
            raise ValueError(
                f"job {job.job_id} carries plan {job.plan_key} declaring "
                f"backend {job.backend!r}, but this service runs "
                f"{self.backend!r}; build the service from the plan "
                "(Session does) or align the plan's backend"
            )
        with self._lock:
            now = self.clock_seconds if now is None else now
            job.arrival_seconds = now
            job.backend = self.backend  # every rank runs one backend
            feasibility = self.scheduler.best_plan(job, self.cluster.total_gpus, now)
            if feasibility is None:
                job.mark_rejected(
                    f"infeasible: no (R, C) decomposition of {job.problem} fits "
                    f"{self.cluster.total_gpus} x {self.cluster.device.name}"
                )
                self.metrics.record_rejection(job)
                self.obs.counter("service.jobs_rejected").inc()
                return False
            job.estimated_seconds = feasibility.runtime_seconds
            if not self.queue.offer(job):
                self.metrics.record_rejection(job)
                self.obs.counter("service.jobs_rejected").inc()
                return False
            self.obs.counter("service.jobs_submitted").inc()
            return True

    def submit_plan(
        self, plan, *, dataset_id: str = "", now: Optional[float] = None
    ) -> ReconstructionJob:
        """Derive a job from a declarative plan and submit it.

        The canonical plan-centric submission path: the job inherits the
        plan's problem, filtering/scenario identity, QoS fields and
        :meth:`~repro.api.ReconstructionPlan.key`, so the cache and the
        report speak the same identity as every other execution surface.
        Returns the job; inspect ``job.state`` / ``job.rejection_reason``
        for the admission outcome.

        The plan's backend must match this service's (every rank of the
        cluster runs one backend, and the plan's key *declares* the
        backend) — :meth:`submit` raises on the mismatch instead of
        silently executing on different numerics than the recorded
        identity.  The plan's ``cluster_gpus`` and ``workers`` describe
        the service a :class:`~repro.api.Session` would build; submitting
        to an existing service runs on that service's cluster and
        dispatcher.
        """
        job = ReconstructionJob.from_plan(plan, dataset_id=dataset_id)
        self.submit(job, now=now)
        return job

    def _dispatch(self, now: float) -> None:
        with self._lock:
            with get_tracer().span("service.schedule", now=now, queued=len(self.queue)):
                placements, rejected = self.scheduler.schedule(
                    self.queue, now, self._running
                )
            self.obs.counter("service.scheduler_cycles").inc()
            for job in rejected:
                self.metrics.record_rejection(job)
                self.obs.counter("service.jobs_rejected").inc()
            for placement in placements:
                self._running.append(placement)
                heapq.heappush(
                    self._finish_heap,
                    (placement.finish_seconds, placement.job.sequence, placement),
                )
                self.obs.counter("service.jobs_placed").inc()
                self.obs.histogram("service.queue_wait_seconds").observe(
                    placement.start_seconds - placement.job.arrival_seconds
                )
                if placement.plan.cache_hit:
                    self.obs.counter("service.cache_hits").inc()
                else:
                    self.obs.counter("service.cache_misses").inc()
            self.metrics.sample_queue_depth(now, len(self.queue))
            self.obs.gauge("service.queue_depth").set(len(self.queue))
        # Real execution rides along as one batch per scheduling cycle; the
        # pool runs outside the lock so submissions never wait on pilots.
        if self.dispatcher is not None and placements:
            self.dispatcher.dispatch(placements)

    def _complete(self, placement: Placement) -> None:
        with self._lock:
            now = placement.finish_seconds
            self._running.remove(placement)
            self.cluster.release(placement.gpus)
            job = placement.job
            job.mark_completed(now)
            self.metrics.record_completion(job)
            self.obs.counter("service.jobs_completed").inc()
            if job.latency_seconds is not None:
                self.obs.histogram("service.latency_seconds").observe(
                    job.latency_seconds
                )
            # Filtering ran as part of the job (unless it was a hit); its
            # output is now on the PFS for every later job on the dataset.
            self.cache.insert(
                CacheKey.for_job(job), nbytes=job.problem.input_bytes()
            )

    def run_until_idle(self) -> None:
        """Drain the queue, all running jobs and any real executions."""
        self._drain(arrivals=[])
        if self.dispatcher is not None:
            self.dispatcher.drain()

    def reset(self) -> None:
        """Forget all jobs and metrics and rewind the clock to zero.

        The filtered-projection cache is deliberately kept warm — in a
        long-lived service its contents survive individual workloads.  The
        dispatcher's worker accounting restarts with the metrics, so a
        replay's summary always agrees with the dispatcher's counters.
        """
        if self._running or len(self.queue):
            raise RuntimeError("cannot reset while jobs are queued or running")
        self.metrics = ServiceMetrics()
        self._finish_heap.clear()
        self.clock_seconds = 0.0
        if self.dispatcher is not None:
            self.dispatcher.drain()
            self.dispatcher.reset_accounting()

    def replay(self, trace: ArrivalTrace) -> ServiceReport:
        """Replay a trace from t=0 and return the service report.

        Each replay starts from fresh metrics (see :meth:`reset`); only the
        cache carries over between replays on the same service.
        """
        arrivals = trace.jobs()
        self.reset()
        self._drain(arrivals=arrivals)
        if self.dispatcher is not None:
            self.dispatcher.drain()  # worker accounting must be complete
        return self.report(description=trace.description)

    def close(self) -> None:
        """Join the dispatcher's worker threads (no-op without real execution)."""
        if self.dispatcher is not None:
            self.dispatcher.close()

    def __enter__(self) -> "ReconstructionService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    def _drain(self, arrivals: List[ReconstructionJob]) -> None:
        """Advance the event loop until nothing is queued, running or arriving.

        Each iteration — clock advance, completions, arrivals, starvation
        sweep — executes atomically under the service lock (the lock is
        reentrant, so the nested ``submit``/``_complete`` calls compose),
        and concurrent tenant submissions interleave *between* events.
        """
        arrivals = sorted(arrivals, key=lambda j: (j.arrival_seconds, j.sequence))
        next_arrival = 0
        self._dispatch(self.clock_seconds)
        while True:
            with self._lock:
                if not (
                    next_arrival < len(arrivals)
                    or self._finish_heap
                    or len(self.queue)
                ):
                    break
                arrival_time = (
                    arrivals[next_arrival].arrival_seconds
                    if next_arrival < len(arrivals) else float("inf")
                )
                finish_time = (
                    self._finish_heap[0][0] if self._finish_heap else float("inf")
                )
                now = min(arrival_time, finish_time)
                if now == float("inf"):
                    # Queued jobs but nothing running or arriving: the
                    # scheduler cannot place them now and no future event
                    # will free GPUs.
                    for job in self.queue.drain():
                        job.mark_rejected(
                            "starved: no future completion can free enough GPUs"
                        )
                        self.metrics.record_rejection(job)
                    break
                self.clock_seconds = now
                while self._finish_heap and self._finish_heap[0][0] <= now:
                    _, _, placement = heapq.heappop(self._finish_heap)
                    self._complete(placement)
                while (
                    next_arrival < len(arrivals)
                    and arrivals[next_arrival].arrival_seconds <= now
                ):
                    self.submit(arrivals[next_arrival], now=now)
                    next_arrival += 1
            self._dispatch(now)

    # ------------------------------------------------------------------ #
    def report(self, description: str = "") -> ServiceReport:
        """Current metrics as a :class:`ServiceReport`."""
        summary = self.metrics.summary(
            cache=self.cache, cluster_gpus=self.cluster.total_gpus
        )
        jobs = sorted(
            self.metrics.completed + self.metrics.rejected,
            key=lambda j: (j.arrival_seconds, j.sequence),
        )
        return ServiceReport(
            policy=self.policy,
            cluster_gpus=self.cluster.total_gpus,
            summary=summary,
            jobs=[job.as_record() for job in jobs],
            description=description,
            backend=self.backend,
        )

    def obs_snapshot(self) -> Dict[str, float]:
        """Flat snapshot of the lifetime instruments (empty when disabled)."""
        return self.obs.snapshot()
