"""Weighted fair-share scheduling across tenants: DRR, quotas, aging.

Before this layer the service scheduled purely by ``(priority, deadline,
FIFO)`` — :attr:`~repro.service.job.ReconstructionJob.tenant` was reporting
metadata, so one tenant flooding urgent jobs starved every other tenant's
tail latency, which the per-tenant p99 histograms could *observe* but
nothing could *prevent*.  :class:`FairShareQueue` sits between admission
and the :class:`~repro.service.scheduler.ClusterScheduler`:

* **per-tenant subqueues** — each internally ordered by
  :func:`~repro.service.job.job_sort_key`, so a tenant's own jobs still
  run by priority and deadline;
* **deficit round-robin** — :meth:`scheduling_order` interleaves tenants'
  jobs by visiting tenants cyclically and granting each a deficit of
  ``quantum_seconds x weight`` estimated service seconds per visit; a job
  is emitted once its tenant's deficit covers its estimated cost.  Under
  contention the placed prefix of that order gives each tenant a service
  share proportional to its weight.  Tenants are visited in ascending
  order of *attained* weight-normalized service (charged when jobs are
  actually placed), so fairness holds across scheduling cycles, not just
  within one;
* **quotas** — ``max_queue_depth_per_tenant`` rejects excess *waiting*
  jobs with a ``tenant quota`` reason and a Retry-After hint (the service
  HTTP front door turns these into ``429``), and ``max_inflight_per_tenant``
  withholds a tenant's jobs from the scheduling order while the tenant is
  at its running-job cap (throttling, never rejection);
* **starvation aging** — once a tenant's oldest waiting job has waited
  ``aging_seconds``, it jumps to the front of the order regardless of
  deficits.  Only one job per tenant per cycle ages, so a deadline job of
  a light tenant preempts a heavy tenant's backlog without aging
  collapsing the whole queue back into FIFO order.

Everything is deterministic: subqueue order, tenant visiting order and
deficit arithmetic are pure functions of the queue snapshot and the
persisted attained-service accounting — replaying the same trace twice
yields bit-identical placement orders.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from ..obs import NULL_METRICS
from .job import ReconstructionJob, job_sort_key
from .queue import QUOTA_REJECTION_PREFIX, AdmissionPolicy, JobQueue

__all__ = ["FairShareQueue", "jains_index"]


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index of a set of non-negative allocations.

    ``(sum x)^2 / (n * sum x^2)`` — 1.0 when every value is equal, ``1/n``
    when one value holds everything.  ``nan`` for an empty sequence; by
    convention 1.0 when all allocations are zero (nobody is treated worse
    than anybody else).
    """
    values = list(values)
    if not values:
        return float("nan")
    if any(v < 0 for v in values):
        raise ValueError("Jain's index is defined over non-negative values")
    square_sum = sum(v * v for v in values)
    if square_sum == 0.0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


class FairShareQueue(JobQueue):
    """A :class:`JobQueue` whose scheduling order is weighted-fair.

    Admission (depth/backlog caps) is inherited; on top of it this queue
    enforces the per-tenant quotas of its :class:`AdmissionPolicy` and
    replaces the global ``(priority, deadline, FIFO)`` scheduling order
    with deficit round-robin across per-tenant subqueues (module
    docstring).  Pass the service's obs registry as ``obs`` to surface the
    fairness counters (``service.fairness.*``).
    """

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        *,
        estimator=None,
        obs=None,
    ):
        super().__init__(policy, estimator=estimator)
        self.obs = obs if obs is not None else NULL_METRICS
        # Operator-configured weights win; plan-carried overrides register
        # lazily for tenants the policy does not name.
        self._weights: Dict[str, float] = dict(self.policy.tenant_weights or {})  # guarded-by: caller
        self._inflight_caps: Dict[str, int] = {}  # guarded-by: caller
        # Lifetime service accounting, charged when a job is placed:
        # raw estimated seconds and weight-normalized seconds per tenant.
        self._service_seconds: Dict[str, float] = {}  # guarded-by: caller
        self._attained: Dict[str, float] = {}  # guarded-by: caller
        self.deficit_rounds = 0
        self.quota_rejections: Dict[str, int] = {}  # guarded-by: caller
        self.aged_promotions = 0

    # ------------------------------------------------------------------ #
    # Tenant configuration
    # ------------------------------------------------------------------ #
    def weight_of(self, tenant: str) -> float:
        """The tenant's scheduling weight (policy > plan override > default)."""
        return self._weights.get(tenant, self.policy.default_tenant_weight)

    def inflight_cap_of(self, tenant: str) -> Optional[int]:
        """The tenant's in-flight quota (policy-wide cap > plan override)."""
        if self.policy.max_inflight_per_tenant is not None:
            return self.policy.max_inflight_per_tenant
        return self._inflight_caps.get(tenant)

    def weights_snapshot(self) -> Dict[str, float]:
        """Resolved weight of every tenant this queue has seen."""
        tenants = set(self._weights) | set(self._service_seconds)
        return {tenant: self.weight_of(tenant) for tenant in sorted(tenants)}

    def share_of_service(self) -> Dict[str, float]:
        """Each tenant's fraction of the estimated service seconds placed."""
        total = sum(self._service_seconds.values())
        if total <= 0:
            return {}
        return {
            tenant: seconds / total
            for tenant, seconds in sorted(self._service_seconds.items())
        }

    def _register(self, job: ReconstructionJob) -> None:
        """Adopt a plan-carried weight/quota for an unconfigured tenant."""
        if job.tenant_weight is not None and job.tenant not in (
            self.policy.tenant_weights or {}
        ):
            self._weights[job.tenant] = float(job.tenant_weight)
        if job.max_inflight is not None:
            self._inflight_caps.setdefault(job.tenant, int(job.max_inflight))

    # ------------------------------------------------------------------ #
    # Admission: per-tenant queue-depth quota on top of the base caps
    # ------------------------------------------------------------------ #
    def offer(self, job: ReconstructionJob) -> bool:
        self._register(job)
        depth_cap = self.policy.max_queue_depth_per_tenant
        if depth_cap is not None:
            queued = [j for j in self._jobs if j.tenant == job.tenant]
            if len(queued) >= depth_cap:
                # Retry-After from the backlog estimate: the tenant's own
                # queued service seconds must drain before a slot frees
                # (an upper bound — other tenants' service runs beside it).
                backlog = sum(j.estimated_seconds or 0.0 for j in queued)
                job.mark_rejected(
                    f"{QUOTA_REJECTION_PREFIX}: tenant {job.tenant!r} has "
                    f"{len(queued)} queued jobs at its cap {depth_cap}",
                    retry_after_seconds=max(1.0, backlog),
                )
                self.offered += 1
                self.rejected += 1
                self.quota_rejections[job.tenant] = (
                    self.quota_rejections.get(job.tenant, 0) + 1
                )
                self.obs.counter("service.fairness.quota_rejections").inc()
                self.obs.counter(
                    f"service.fairness.quota_rejections[tenant={job.tenant}]"
                ).inc()
                return False
        return super().offer(job)

    # ------------------------------------------------------------------ #
    # Service accounting: charged when the scheduler places a job
    # ------------------------------------------------------------------ #
    def remove(self, job: ReconstructionJob) -> None:
        super().remove(job)
        cost = job.estimated_seconds or 0.0
        tenant = job.tenant
        self._service_seconds[tenant] = (
            self._service_seconds.get(tenant, 0.0) + cost
        )
        self._attained[tenant] = (
            self._attained.get(tenant, 0.0) + cost / self.weight_of(tenant)
        )
        for name, share in self.share_of_service().items():
            self.obs.gauge(f"service.fairness.share[tenant={name}]").set(share)

    def fairness_index(self) -> float:
        """Jain's index of the weight-normalized service attained so far."""
        return jains_index(list(self._attained.values()))

    # ------------------------------------------------------------------ #
    # The fair scheduling order
    # ------------------------------------------------------------------ #
    def scheduling_order(
        self, now: float, running: Sequence = ()
    ) -> List[ReconstructionJob]:
        """Aged jobs first, then deficit round-robin across tenants.

        Jobs of tenants at their in-flight cap are withheld entirely (they
        stay queued for a later cycle); every other waiting job appears
        exactly once.  The scheduler places a prefix of this order, so
        under contention placed service follows the weights.
        """
        if not self._jobs:
            return []
        quantum = self.policy.quantum_seconds

        # Per-tenant emission budget: in-flight cap minus currently running.
        inflight: Dict[str, int] = {}
        for placement in running:
            tenant = placement.job.tenant
            inflight[tenant] = inflight.get(tenant, 0) + 1
        budget: Dict[str, Optional[int]] = {}
        for job in self._jobs:
            if job.tenant not in budget:
                cap = self.inflight_cap_of(job.tenant)
                budget[job.tenant] = (
                    None if cap is None
                    else max(0, cap - inflight.get(job.tenant, 0))
                )

        order: List[ReconstructionJob] = []

        def emit(job: ReconstructionJob) -> bool:
            remaining = budget[job.tenant]
            if remaining is not None:
                if remaining == 0:
                    return False
                budget[job.tenant] = remaining - 1
            order.append(job)
            return True

        per_tenant: Dict[str, Deque[ReconstructionJob]] = {}
        for job in self.ordered():
            per_tenant.setdefault(job.tenant, deque()).append(job)

        # Starvation aging: each tenant's oldest waiting job (by scheduling
        # order) jumps the fair order once it has waited aging_seconds.
        # One job per tenant per cycle bounds the bypass.
        aging = self.policy.aging_seconds
        if aging is not None:
            aged: List[ReconstructionJob] = []
            for tenant in sorted(per_tenant):
                head = per_tenant[tenant][0]
                if now - head.arrival_seconds >= aging:
                    aged.append(head)
            for job in sorted(aged, key=job_sort_key):
                if emit(job):
                    per_tenant[job.tenant].popleft()
                    self.aged_promotions += 1
                    self.obs.counter("service.fairness.aged_jobs").inc()

        # Deficit round-robin over the remainder.  Visit order: least
        # attained weight-normalized service first (ties on tenant name),
        # so tenants short-changed in earlier cycles catch up first.
        active = [
            tenant for tenant in sorted(
                per_tenant,
                key=lambda t: (self._attained.get(t, 0.0), t),
            )
            if per_tenant[tenant] and budget[tenant] != 0
        ]
        deficits: Dict[str, float] = {tenant: 0.0 for tenant in active}
        rounds = 0
        while active:
            rounds += 1
            for tenant in list(active):
                deficits[tenant] += quantum * self.weight_of(tenant)
                subqueue = per_tenant[tenant]
                while subqueue:
                    head = subqueue[0]
                    cost = head.estimated_seconds or quantum
                    if deficits[tenant] < cost:
                        break
                    if not emit(head):
                        subqueue.clear()  # budget exhausted this cycle
                        break
                    subqueue.popleft()
                    deficits[tenant] -= cost
                if not subqueue:
                    active.remove(tenant)
                    deficits[tenant] = 0.0  # classic DRR: no hoarding
        self.deficit_rounds += rounds
        if rounds:
            self.obs.counter("service.fairness.deficit_rounds").inc(rounds)
        return order
