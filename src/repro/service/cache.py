"""Content-keyed LRU cache of filtered projections on the PFS.

Filtering (weighting + ramp filtering, Algorithm 1) is a pure function of
the raw projection data and the filter window.  When several tenants request
reconstructions of the *same* acquisition — different output volumes,
different SLOs — every job after the first can skip the filtering stage
entirely and read the already-filtered projections back from the PFS.  In
the Eq. 17 overlap this removes the ``T_flt`` term from ``T_compute``.

The cache is **content-keyed**: the key combines a fingerprint of the raw
projection data (or the trace-supplied ``dataset_id``, which stands in for a
content hash in the simulated service) with the filter window, the
detector/stack shape and the acquisition-scenario token, so a re-uploaded
identical dataset hits and a modified one misses — and a short-scan job is
never served the full-scan filtering of the same dataset.  Eviction is LRU
by byte capacity, sized against the PFS scratch space reserved for the
cache.

When constructed over a :class:`~repro.pfs.storage.SimulatedPFS`, entries
write through to PFS objects under ``filtered-cache/`` so the functional
(NumPy) path can round-trip real filtered stacks; without a PFS the cache
tracks byte sizes only, which is all the scheduling simulation needs.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.types import ProjectionStack
from ..pfs.storage import SimulatedPFS

__all__ = [
    "CacheKey",
    "CacheStatistics",
    "FilteredProjectionCache",
    "fingerprint_stack",
]


def fingerprint_stack(stack: ProjectionStack) -> str:
    """Content hash of a raw projection stack (shape + dtype + data + angles).

    The dtype is part of the hash: two stacks whose buffers hold identical
    bytes under different dtypes (an ``int32`` array and its ``float32``
    reinterpretation, say) are different acquisitions and must never alias
    one filtered-cache entry.  Hashing the dtype was added after the fact,
    so fingerprints computed by earlier releases do not match the ones this
    function produces — persisted cache entries keyed by old fingerprints
    are cold after an upgrade (a one-time miss, never a wrong hit).
    """
    digest = hashlib.sha256()
    digest.update(repr(stack.data.shape).encode("ascii"))
    digest.update(str(stack.data.dtype).encode("ascii"))
    digest.update(np.ascontiguousarray(stack.data).tobytes())
    digest.update(str(stack.angles.dtype).encode("ascii"))
    digest.update(np.ascontiguousarray(stack.angles).tobytes())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class CacheKey:
    """Identity of one filtered projection dataset.

    ``scenario`` is the acquisition-scenario cache token.  Filtered
    projections are a function of the raw data *and* the acquisition
    protocol — a short scan filters a different angular subset with
    different redundancy weights than the full scan of the same dataset —
    so the token is part of the key: a short-scan job can never be served
    the full-scan job's filtered projections (and vice versa).

    The non-dataset fields are exactly the *filtering identity* of a
    :class:`~repro.api.ReconstructionPlan`: :attr:`filter_key` hashes them
    through the same :func:`~repro.api.filter_cache_identity` function the
    plan layer uses, so ``CacheKey.from_plan(plan, ds).filter_key ==
    plan.filter_key()`` by construction — the plan's canonical key drives
    the cache, and fields that cannot change the filtered projections
    (``workers``, ``backend``, ``target``, output extent, QoS) can never
    split or alias a cache entry.
    """

    dataset_id: str
    ramp_filter: str
    nu: int
    nv: int
    np_: int
    scenario: str = "full"
    # Acquisition-physics token (repro.api.acquisition_token).  "" means
    # "implied by dataset_id": trace jobs carry only a problem shape, so
    # their physics identity rides on the dataset content key, exactly as
    # in the seed cache.  Plan-derived keys always carry the real token.
    acquisition: str = ""

    @classmethod
    def for_job(cls, job) -> "CacheKey":
        """Key of the filtered projections a job consumes.

        The scenario token comes straight from
        :func:`repro.scenarios.cache_token_for` — the canonical (and only)
        scenario cache-identity function: registered presets resolve to
        their :attr:`~repro.scenarios.AcquisitionScenario.cache_token`,
        unregistered names are used verbatim.
        """
        from ..scenarios import cache_token_for  # late import: scenarios import core

        problem = job.problem
        return cls(
            dataset_id=job.dataset_id,
            ramp_filter=job.ramp_filter,
            nu=problem.nu,
            nv=problem.nv,
            np_=problem.np_,
            scenario=cache_token_for(getattr(job, "scenario", "full_scan")),
            acquisition=getattr(job, "acquisition", ""),
        )

    @classmethod
    def from_plan(cls, plan, dataset_id: str) -> "CacheKey":
        """Key of the filtered projections a plan's execution consumes."""
        identity = plan.filter_identity()
        return cls(
            dataset_id=dataset_id,
            ramp_filter=identity["ramp_filter"],
            nu=identity["nu"],
            nv=identity["nv"],
            np_=identity["np_"],
            scenario=identity["scenario"],
            acquisition=identity["acquisition"],
        )

    @property
    def filter_key(self) -> str:
        """The plan-layer filtering-identity hash of this key's fields."""
        from ..api.plan import filter_cache_identity  # late: api imports service

        return filter_cache_identity(
            ramp_filter=self.ramp_filter,
            nu=self.nu,
            nv=self.nv,
            np_=self.np_,
            scenario=self.scenario,
            acquisition=self.acquisition,
        )

    @property
    def object_name(self) -> str:
        """PFS object name the filtered stack is stored under."""
        tag = hashlib.sha256(
            f"{self.dataset_id}|{self.filter_key}".encode("utf-8")
        ).hexdigest()[:16]
        return f"filtered-cache/{tag}"


@dataclass
class CacheStatistics:
    """Hit/miss accounting of one cache instance."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class _Entry:
    nbytes: int
    stored_on_pfs: bool = False


class FilteredProjectionCache:
    """LRU cache of filtered projection stacks, capacity-bounded in bytes."""

    def __init__(
        self,
        capacity_bytes: int = 256 * 1024**3,
        *,
        pfs: Optional[SimulatedPFS] = None,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.pfs = pfs
        self.stats = CacheStatistics()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        # Running byte total, maintained on every insert/refresh/eviction:
        # eviction must not re-sum the whole table per evicted entry
        # (O(n^2) on a full cache), and used_bytes stays O(1).
        self._used_bytes = 0

    # ------------------------------------------------------------------ #
    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def contains(self, key: CacheKey) -> bool:
        """Peek without touching LRU order or hit/miss statistics.

        The scheduler calls this while *planning* (it may evaluate the same
        job many times before placing it); only the definitive
        :meth:`lookup` at placement time is counted.
        """
        return key in self._entries

    # ------------------------------------------------------------------ #
    def lookup(self, key: CacheKey) -> bool:
        """Counted lookup: touches LRU order and records a hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return False
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return True

    def insert(
        self,
        key: CacheKey,
        *,
        nbytes: Optional[int] = None,
        filtered: Optional[ProjectionStack] = None,
    ) -> None:
        """Add (or refresh) a filtered dataset.

        Either the byte size (scheduling simulation) or the actual filtered
        stack (functional path; written through to the PFS when one is
        attached) must be supplied.
        """
        if filtered is not None:
            nbytes = filtered.nbytes
        if nbytes is None:
            raise ValueError("insert needs either nbytes or a filtered stack")
        if nbytes > self.capacity_bytes:
            raise ValueError(
                f"cannot cache a {nbytes}-byte filtered dataset: it exceeds "
                f"the cache capacity of {self.capacity_bytes} bytes (no "
                "amount of eviction can make it fit)"
            )
        stored = False
        if self.pfs is not None and filtered is not None:
            self.pfs.write_array(key.object_name, filtered.data)
            self.pfs.write_array(key.object_name + "/angles", filtered.angles)
            stored = True
        if key in self._entries:
            self._entries.move_to_end(key)
            entry = self._entries[key]
            self._used_bytes += nbytes - entry.nbytes
            entry.nbytes = nbytes
            entry.stored_on_pfs = entry.stored_on_pfs or stored
        else:
            self._entries[key] = _Entry(nbytes=nbytes, stored_on_pfs=stored)
            self._used_bytes += nbytes
            self.stats.insertions += 1
        self._evict_over_capacity()

    def get_filtered(self, key: CacheKey, *, count: bool = True) -> Optional[ProjectionStack]:
        """Read a filtered stack back from the PFS (functional path).

        An entry known only by its byte size (scheduling path) cannot
        satisfy a functional read, so it counts as a miss here.
        """
        entry = self._entries.get(key)
        usable = entry is not None and entry.stored_on_pfs and self.pfs is not None
        if count:
            if usable:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
        if not usable:
            return None
        self._entries.move_to_end(key)
        data = self.pfs.read_array(key.object_name)
        angles = self.pfs.read_array(key.object_name + "/angles")
        return ProjectionStack(data=data, angles=angles, filtered=True)

    # ------------------------------------------------------------------ #
    def _evict_over_capacity(self) -> None:
        # Evict down to empty if that is what it takes: the old
        # ``len(self._entries) > 1`` guard left a single over-budget entry
        # resident forever (oversize inserts are now rejected up front, but
        # a refresh shrinking the budget headroom must still converge).
        while self._used_bytes > self.capacity_bytes and self._entries:
            key, entry = self._entries.popitem(last=False)
            self._used_bytes -= entry.nbytes
            if entry.stored_on_pfs and self.pfs is not None:
                self.pfs.delete(key.object_name)
                self.pfs.delete(key.object_name + "/angles")
            self.stats.evictions += 1
