"""Real concurrent execution of placed jobs: the batched dispatcher.

The discrete-event service predicts job runtimes with the Eq. 8-19 model —
which is what lets a 2,048-GPU replay finish in milliseconds — but until
this module nothing actually *ran* when the scheduler placed a job.  The
:class:`BatchedDispatcher` closes that gap: every scheduling cycle's new
placements are handed over as one batch to a persistent worker pool, where
each job executes a **pilot reconstruction** — a scaled-down but genuine
FDK execution (ramp filter tables + tile-kernel back-projection on the
service's compute backend) standing in for the full problem the simulated
cluster is solving.

What the pilot buys:

* placements on disjoint GPU sets genuinely overlap in wall-clock (the
  concurrency claim of the scheduler becomes measurable, not asserted);
* worker accounting is real: each job records when its execution started
  and finished on the pool and how many backend workers it occupied
  (:meth:`ReconstructionJob.mark_executed`), and
  :class:`~repro.service.metrics.ServiceMetrics` reduces those records to
  ``worker_seconds_total`` / ``jobs_executed`` service KPIs;
* the ``parallel`` backend's pool is exercised under concurrent callers —
  exactly the regime the conformance suite's determinism guarantees must
  hold in.

The simulated clock is untouched: latencies, SLO attainment and GPU
utilization still come from the event loop, so model-level tests and
benchmarks are unaffected by how long the pilots really take.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import List, Optional, Sequence, Union

import numpy as np

from ..core import default_geometry_for_problem
from ..core.types import ProjectionStack, ReconstructionProblem, problem_from_string
from ..obs import get_tracer
from ..obs.tracer import Tracer
from .job import ReconstructionJob
from .scheduler import Placement

__all__ = ["BatchedDispatcher", "DEFAULT_PILOT_PROBLEM", "DISPATCH_THREAD_PREFIX"]

#: Thread-name prefix of dispatcher workers (leak checks grep for this).
DISPATCH_THREAD_PREFIX = "repro-dispatch"

#: Default pilot: small enough that CLI submits stay instant, real enough
#: that the hot-path kernels (not Python overhead) dominate.
DEFAULT_PILOT_PROBLEM = ReconstructionProblem(
    nu=24, nv=24, np_=8, nx=16, ny=16, nz=16
)


class BatchedDispatcher:
    """Runs each placed job's pilot reconstruction on a worker pool.

    Parameters
    ----------
    workers:
        Pool width — how many placements execute concurrently.
    backend:
        Compute backend the pilots run on (the service passes its own, so
        "every rank of this cluster runs one backend" stays true for the
        real executions too).
    pilot_problem:
        The scaled-down problem every pilot solves (a
        :class:`ReconstructionProblem` or spec string).  The pilot input
        stack is seeded and built once; workers share it read-only.
    streaming_chunk_size:
        When set, pilots execute through the chunked
        :class:`~repro.streaming.StreamingReconstructor` (fed by a
        :class:`~repro.streaming.StackChunkSource` over the shared pilot
        stack) instead of one whole-stack ``backproject`` call — the
        streaming executor under the same concurrent-caller regime the
        scheduler produces.  Output is bit-identical either way, so this
        is a service *configuration*, not a plan field.
    """

    def __init__(
        self,
        workers: int,
        *,
        backend: str = "parallel",
        pilot_problem: Union[ReconstructionProblem, str, None] = None,
        streaming_chunk_size: Optional[int] = None,
    ):
        if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
            raise ValueError(f"workers must be a positive integer (got {workers!r})")
        from ..backends import get_backend  # late import: backends import core

        self.workers = int(workers)
        self._backend = get_backend(backend)
        if pilot_problem is None:
            pilot_problem = DEFAULT_PILOT_PROBLEM
        elif isinstance(pilot_problem, str):
            pilot_problem = problem_from_string(pilot_problem)
        self.pilot_problem = pilot_problem
        self._geometry = default_geometry_for_problem(
            nu=pilot_problem.nu, nv=pilot_problem.nv, np_=pilot_problem.np_,
            nx=pilot_problem.nx, ny=pilot_problem.ny, nz=pilot_problem.nz,
        )
        rng = np.random.default_rng(2026)
        self._stack = ProjectionStack(
            data=rng.standard_normal(
                (pilot_problem.np_, pilot_problem.nv, pilot_problem.nu)
            ).astype(np.float32),
            angles=self._geometry.angles,
            filtered=True,  # pilots exercise the back-projection hot path
        )
        self._streaming = None
        self._source = None
        if streaming_chunk_size is not None:
            from ..streaming import StackChunkSource, StreamingReconstructor

            # One shared reconstructor over the service's backend instance:
            # each reconstruct() call builds its own accumulator, so
            # concurrent pilots are as independent as concurrent
            # backproject() calls.
            self._streaming = StreamingReconstructor(
                self._geometry,
                backend=self._backend,
                chunk_size=streaming_chunk_size,
            )
            self._source = StackChunkSource(self._stack)
        self.streaming_chunk_size = streaming_chunk_size
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._pending: List[Future] = []
        self._epoch = time.perf_counter()
        self.batches_dispatched = 0
        self.jobs_executed = 0
        self.busy_worker_seconds = 0.0

    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> str:
        return self._backend.name

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=DISPATCH_THREAD_PREFIX,
                )
            return self._executor

    def dispatch(self, placements: Sequence[Placement]) -> None:
        """Queue one scheduling cycle's placements as a single batch.

        The ambient tracer is captured *here*, on the dispatching thread:
        each pilot's ``dispatch.execute`` span runs on a pool thread, where
        thread-local ambience does not reach, so the tracer and the batch
        span's id travel with the task explicitly.
        """
        placements = list(placements)
        if not placements:
            return
        executor = self._ensure()
        tracer = get_tracer()
        # The lock only guards the counters and the pending list, never the
        # submit loop: ``_execute``'s completion accounting on pool threads
        # takes the same lock, so holding it across every ``submit`` call
        # would serialize fast pilots behind the dispatching thread.
        with self._lock:
            self.batches_dispatched += 1
        with tracer.span("dispatch.batch", jobs=len(placements)) as batch:
            parent = batch.span_id if tracer.enabled else None
            for placement in placements:
                future = executor.submit(
                    self._execute,
                    placement.job,
                    tracer if tracer.enabled else None,
                    parent,
                )
                with self._lock:
                    self._pending.append(future)

    def _run_pilot(self) -> None:
        """One pilot reconstruction: whole-stack or chunked streaming."""
        if self._streaming is not None:
            self._streaming.reconstruct(self._source)
        else:
            self._backend.backproject(
                self._stack, self._geometry, algorithm="proposed"
            )

    def _execute(
        self,
        job: ReconstructionJob,
        tracer: Optional[Tracer] = None,
        parent: Optional[int] = None,
    ) -> None:
        start = time.perf_counter() - self._epoch
        if tracer is not None:
            with tracer.span(
                "dispatch.execute",
                payload_bytes=int(self._stack.data.nbytes),
                parent=parent,
                job=job.job_id,
                backend=self.backend,
                streaming=self._streaming is not None,
            ):
                self._run_pilot()
        else:
            self._run_pilot()
        finish = time.perf_counter() - self._epoch
        # One pool slot per job, times the backend's own worker fan-out.
        occupied = getattr(self._backend, "workers", 1)
        job.mark_executed(start, finish, workers=occupied)
        with self._lock:
            self.jobs_executed += 1
            self.busy_worker_seconds += (finish - start) * occupied

    def drain(self) -> None:
        """Block until every dispatched execution has finished.

        Failures propagate to the caller (the first one raises), after all
        other pending executions have been collected.
        """
        while True:
            with self._lock:
                pending, self._pending = self._pending, []
            if not pending:
                return
            first_error: Optional[BaseException] = None
            for future in pending:
                try:
                    future.result()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error

    def reset_accounting(self) -> None:
        """Zero the cumulative counters for a fresh replay.

        Refuses while executions are pending — accounting may only be reset
        at a quiescent point (the service drains first).
        """
        with self._lock:
            if self._pending:
                raise RuntimeError("cannot reset accounting with executions pending")
            self.batches_dispatched = 0
            self.jobs_executed = 0
            self.busy_worker_seconds = 0.0
            self._epoch = time.perf_counter()

    def close(self) -> None:
        """Drain (propagating any pilot failure) and join every worker thread."""
        try:
            self.drain()
        finally:
            with self._lock:
                executor, self._executor = self._executor, None
            if executor is not None:
                executor.shutdown(wait=True)

    def __enter__(self) -> "BatchedDispatcher":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
