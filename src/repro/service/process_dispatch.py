"""Process-backed pilot execution: the :class:`ProcessDispatcher`.

The :class:`~repro.service.dispatch.BatchedDispatcher` runs pilots on a
thread pool inside the service process — real concurrency, but one crash
takes the whole service down and nothing survives a restart.  This module
executes pilots in a **process pool** instead, which is what turns the
simulator into a servable system:

* workers are spawned (never forked) and initialized once with a
  module-level pilot runtime, so a worker crash cannot corrupt the
  service's state — it costs a pool rebuild, not the process;
* each job has a per-attempt **timeout** and a bounded **retry budget**
  with exponential backoff; a pilot that hangs is killed (the pool's
  worker processes are terminated and the pool rebuilt) and the job
  retried or failed loudly — the service never hangs on a stuck worker;
* a crashed worker (``BrokenProcessPool``) is detected, counted, and the
  pool is rebuilt **one worker narrower** (never below one): repeated
  crashes degrade capacity gracefully instead of thrashing;
* pilots share an :class:`~repro.service.diskcache.OnDiskFilteredCache`
  when one is attached: the first worker process to filter a dataset
  writes the filtered projections to disk, and every other worker — and
  every future service incarnation — gets a cache hit
  (``job.pilot_cache_hit``), the Eq. 17 ``T_flt`` saving made real across
  process boundaries.

Fault injection (``fault_injection={"job-0001": {"crash_attempts": [1]}}``)
exists so the crash/timeout/retry machinery is testable on demand: the
worker consults it before running the pilot and either ``os._exit``\\ s
(a genuine SIGCHLD-visible death, not an exception) or sleeps past the
timeout.  Production paths simply pass no faults.

Every result is awaited with a bounded timeout, so ``drain`` terminates in
``O(pending × timeout)`` even if every worker wedges — "failed loudly,
never a hang" is structural, not best-effort.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union
import multiprocessing
import threading

import numpy as np

from ..core.types import ReconstructionProblem, problem_from_string
from ..obs import get_tracer
from .cache import CacheKey
from .dispatch import DEFAULT_PILOT_PROBLEM
from .job import ReconstructionJob
from .scheduler import Placement

__all__ = ["ProcessDispatcher"]


# --------------------------------------------------------------------- #
# Worker-side pilot runtime (module-level so spawn can import it)
# --------------------------------------------------------------------- #
_RUNTIME: Optional[dict] = None


def _pilot_init(
    problem_spec: str,
    backend_name: str,
    cache_dir: Optional[str],
    cache_capacity_bytes: int,
) -> None:
    """Build this worker process's pilot runtime once, at pool start."""
    global _RUNTIME
    from ..backends import get_backend
    from ..core import default_geometry_for_problem

    problem = problem_from_string(problem_spec)
    geometry = default_geometry_for_problem(
        nu=problem.nu, nv=problem.nv, np_=problem.np_,
        nx=problem.nx, ny=problem.ny, nz=problem.nz,
    )
    rng = np.random.default_rng(2026)
    from ..core.types import ProjectionStack

    raw = ProjectionStack(
        data=rng.standard_normal(
            (problem.np_, problem.nv, problem.nu)
        ).astype(np.float32),
        angles=geometry.angles,
        filtered=False,  # process pilots run filter + back-projection
    )
    cache = None
    if cache_dir is not None:
        from .diskcache import OnDiskFilteredCache

        cache = OnDiskFilteredCache(cache_dir, capacity_bytes=cache_capacity_bytes)
    _RUNTIME = {
        "backend": get_backend(backend_name),
        "geometry": geometry,
        "raw": raw,
        "cache": cache,
    }


def _pilot_execute(payload: dict) -> dict:
    """One pilot reconstruction in a worker process.

    Returns ``{"cache_hit": bool | None, "filter_seconds": float}``.
    Fault injection runs first so crash/timeout paths are reachable even
    when the pilot itself would succeed.
    """
    fault = payload.get("fault") or {}
    attempt = int(payload.get("attempt", 1))
    if attempt in (fault.get("crash_attempts") or []):
        os._exit(13)  # a real worker death, not a catchable exception
    sleep_attempts = fault.get("sleep_attempts")
    sleep_seconds = fault.get("sleep_seconds")
    if sleep_seconds and (sleep_attempts is None or attempt in sleep_attempts):
        time.sleep(float(sleep_seconds))
    if fault.get("raise_attempts") and attempt in fault["raise_attempts"]:
        raise RuntimeError(f"injected pilot failure (attempt {attempt})")
    runtime = _RUNTIME
    if runtime is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("pilot runtime not initialized")
    backend = runtime["backend"]
    geometry = runtime["geometry"]
    cache = runtime["cache"]
    key = CacheKey(**payload["cache_key"])
    cache_hit: Optional[bool] = None
    filtered = None
    filter_start = time.perf_counter()
    if cache is not None:
        filtered = cache.get_filtered(key)
        cache_hit = filtered is not None
    if filtered is None:
        filtered = backend.filter_stack(
            runtime["raw"], geometry, window=key.ramp_filter
        )
        if cache is not None:
            cache.insert(key, filtered=filtered)
    filter_seconds = time.perf_counter() - filter_start
    backend.backproject(filtered, geometry, algorithm="proposed")
    return {"cache_hit": cache_hit, "filter_seconds": filter_seconds}


# --------------------------------------------------------------------- #
# Dispatcher (service side)
# --------------------------------------------------------------------- #
@dataclass
class _Pending:
    job: ReconstructionJob
    payload: dict
    attempt: int
    submitted: float  # absolute perf_counter at (re)submission
    parent: Optional[int]
    future: object = None


class ProcessDispatcher:
    """Runs pilots in a spawn-safe process pool with timeout/retry/degrade.

    Interface-compatible with :class:`~repro.service.dispatch.BatchedDispatcher`
    (``dispatch`` / ``drain`` / ``reset_accounting`` / ``close`` and the
    accounting counters), so :class:`~repro.service.service.ReconstructionService`
    treats either as "the dispatcher".  Differences that matter:

    * ``drain`` **returns the jobs that failed** (crash or timeout past the
      retry budget) instead of raising — the service folds them into its
      metrics as ``FAILED`` jobs;
    * extra counters: ``retries`` / ``timeouts`` / ``crashes`` /
      ``jobs_failed``;
    * ``effective_workers`` may shrink below the configured width after
      crashes (graceful degradation), never below one.
    """

    def __init__(
        self,
        workers: int,
        *,
        backend: str = "vectorized",
        pilot_problem: Union[ReconstructionProblem, str, None] = None,
        cache_dir=None,
        cache_capacity_bytes: int = 256 * 1024**3,
        timeout_seconds: float = 60.0,
        max_retries: int = 2,
        retry_backoff_seconds: float = 0.05,
        fault_injection: Optional[Dict[str, dict]] = None,
        on_executed: Optional[Callable[[ReconstructionJob], None]] = None,
        on_failed: Optional[Callable[[ReconstructionJob], None]] = None,
        on_retry: Optional[Callable[[ReconstructionJob, str], None]] = None,
        on_timeout: Optional[Callable[[ReconstructionJob], None]] = None,
        on_crash: Optional[Callable[[ReconstructionJob], None]] = None,
    ):
        if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
            raise ValueError(f"workers must be a positive integer (got {workers!r})")
        if timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        from ..backends import get_backend  # late import: backends import core

        self.workers = int(workers)
        self._width = int(workers)  # degrades after crashes, never below 1
        self.backend = get_backend(backend).name
        if pilot_problem is None:
            pilot_problem = DEFAULT_PILOT_PROBLEM
        elif isinstance(pilot_problem, str):
            pilot_problem = problem_from_string(pilot_problem)
        self.pilot_problem = pilot_problem
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.cache_capacity_bytes = int(cache_capacity_bytes)
        self.timeout_seconds = float(timeout_seconds)
        self.max_retries = int(max_retries)
        self.retry_backoff_seconds = float(retry_backoff_seconds)
        self.fault_injection = dict(fault_injection or {})
        self.on_executed = on_executed
        self.on_failed = on_failed
        self.on_retry = on_retry
        self.on_timeout = on_timeout
        self.on_crash = on_crash

        self._executor: Optional[ProcessPoolExecutor] = None  # guarded-by: _lock
        self._lock = threading.Lock()
        self._pending: List[_Pending] = []  # guarded-by: _lock
        self._epoch = time.perf_counter()
        self.batches_dispatched = 0
        self.jobs_executed = 0
        self.jobs_failed = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0
        self.busy_worker_seconds = 0.0

    # ------------------------------------------------------------------ #
    @property
    def effective_workers(self) -> int:
        """Current pool width (shrinks after crashes, never below one)."""
        return self._width

    def _ensure(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self._width,
                    mp_context=multiprocessing.get_context("spawn"),
                    initializer=_pilot_init,
                    initargs=(
                        str(self.pilot_problem),
                        self.backend,
                        self.cache_dir,
                        self.cache_capacity_bytes,
                    ),
                )
            return self._executor

    def _payload_for(self, job: ReconstructionJob, attempt: int) -> dict:
        # The pilot filters its own scaled-down stack, so the cache key uses
        # the *pilot* detector shape with the job's data/filter identity —
        # two jobs on one dataset share the entry, two datasets never do.
        key = dataclasses.replace(
            CacheKey.for_job(job),
            nu=self.pilot_problem.nu,
            nv=self.pilot_problem.nv,
            np_=self.pilot_problem.np_,
        )
        return {
            "job_id": job.job_id,
            "attempt": attempt,
            "cache_key": dataclasses.asdict(key),
            "fault": self.fault_injection.get(job.job_id),
        }

    def dispatch(self, placements: Sequence[Placement]) -> None:
        """Queue one scheduling cycle's placements on the process pool."""
        placements = list(placements)
        if not placements:
            return
        with self._lock:
            self.batches_dispatched += 1
        tracer = get_tracer()
        with tracer.span("dispatch.batch", jobs=len(placements)) as batch:
            parent = batch.span_id if tracer.enabled else None
            for placement in placements:
                self._submit(placement.job, attempt=1, parent=parent)

    def _submit(
        self, job: ReconstructionJob, *, attempt: int, parent: Optional[int]
    ) -> None:
        entry = _Pending(
            job=job,
            payload=self._payload_for(job, attempt),
            attempt=attempt,
            submitted=time.perf_counter(),
            parent=parent,
        )
        executor = self._ensure()
        try:
            entry.future = executor.submit(_pilot_execute, entry.payload)
        except BrokenExecutor:
            # Pool broke since the last drain: rebuild once and resubmit.
            self._teardown_pool()
            entry.future = self._ensure().submit(_pilot_execute, entry.payload)
        with self._lock:
            self._pending.append(entry)

    # ------------------------------------------------------------------ #
    def drain(self) -> List[ReconstructionJob]:
        """Await every dispatched pilot; return the jobs that failed.

        Bounded: each pending result is awaited with the per-attempt
        timeout, so even a pool of wedged workers resolves in
        ``O(pending × timeout)`` — a hung pilot becomes a timed-out (and
        retried or failed) job, never a hung service.
        """
        failed: List[ReconstructionJob] = []
        while True:
            with self._lock:
                pending, self._pending = self._pending, []
            if not pending:
                return failed
            queue = list(pending)
            while queue:
                entry = queue.pop(0)
                self._await(entry, queue, failed)

    def _await(
        self, entry: _Pending, queue: List[_Pending], failed: List[ReconstructionJob]
    ) -> None:
        tracer = get_tracer()
        try:
            result = entry.future.result(timeout=self.timeout_seconds)
        except FutureTimeoutError:
            with self._lock:
                self.timeouts += 1
            if self.on_timeout is not None:
                self.on_timeout(entry.job)
            reason = (
                f"pilot timed out after {self.timeout_seconds:.1f}s "
                f"(attempt {entry.attempt})"
            )
            # The worker is wedged: kill the pool, rebuild at the same
            # width, revive the collateral futures, then retry or fail.
            self._rebuild_pool(queue, width=self._width)
            self._retry_or_fail(entry, reason, queue, failed)
            return
        except BrokenExecutor:
            with self._lock:
                self.crashes += 1
            if self.on_crash is not None:
                self.on_crash(entry.job)
            reason = f"pilot worker crashed (attempt {entry.attempt})"
            # Degrade one worker per crash so a poisoned workload converges
            # to a narrow-but-live pool instead of thrashing a wide one.
            self._rebuild_pool(queue, width=max(1, self._width - 1))
            self._retry_or_fail(entry, reason, queue, failed)
            return
        except Exception as exc:  # noqa: BLE001 - pilot raised; pool is healthy
            reason = f"pilot raised {type(exc).__name__}: {exc} (attempt {entry.attempt})"
            self._retry_or_fail(entry, reason, queue, failed)
            return
        finish = time.perf_counter()
        job = entry.job
        job.mark_executed(
            entry.submitted - self._epoch, finish - self._epoch, workers=1
        )
        job.execution_attempts = entry.attempt
        if isinstance(result, dict) and result.get("cache_hit") is not None:
            job.pilot_cache_hit = bool(result["cache_hit"])
        with self._lock:
            self.jobs_executed += 1
            self.busy_worker_seconds += finish - entry.submitted
        tracer.record(
            "dispatch.process",
            entry.submitted,
            finish,
            parent=entry.parent,
            job=job.job_id,
            attempt=entry.attempt,
            cache_hit=job.pilot_cache_hit,
            backend=self.backend,
        )
        if self.on_executed is not None:
            self.on_executed(job)

    def _retry_or_fail(
        self,
        entry: _Pending,
        reason: str,
        queue: List[_Pending],
        failed: List[ReconstructionJob],
    ) -> None:
        job = entry.job
        job.execution_attempts = entry.attempt
        if entry.attempt <= self.max_retries:
            with self._lock:
                self.retries += 1
            if self.on_retry is not None:
                self.on_retry(job, reason)
            time.sleep(self.retry_backoff_seconds * (2 ** (entry.attempt - 1)))
            retry = _Pending(
                job=job,
                payload=self._payload_for(job, entry.attempt + 1),
                attempt=entry.attempt + 1,
                submitted=time.perf_counter(),
                parent=entry.parent,
            )
            retry.future = self._ensure().submit(_pilot_execute, retry.payload)
            queue.append(retry)
            return
        job.mark_failed(reason)
        with self._lock:
            self.jobs_failed += 1
        failed.append(job)
        get_tracer().record(
            "dispatch.process",
            entry.submitted,
            time.perf_counter(),
            parent=entry.parent,
            job=job.job_id,
            attempt=entry.attempt,
            outcome="failed",
        )
        if self.on_failed is not None:
            self.on_failed(job)

    # ------------------------------------------------------------------ #
    def _teardown_pool(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is None:
            return
        processes = list(getattr(executor, "_processes", {}).values())
        for process in processes:
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 - already dead is fine
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    def _rebuild_pool(self, queue: List[_Pending], *, width: int) -> None:
        """Kill the pool, restart at ``width``, resubmit collateral entries.

        Entries whose futures already resolved keep their outcome — a result
        *or* the pilot's own exception, which ``_await`` routes through
        ``_retry_or_fail`` without re-running the pilot (re-execution would
        duplicate side effects at the same attempt number).  Only entries
        the old pool took down with it — never started, cancelled, or
        resolved to the pool's own ``BrokenExecutor`` — are resubmitted on
        the new one at the same attempt number (a pool rebuild is not the
        job's fault).
        """
        self._teardown_pool()
        self._width = max(1, int(width))
        executor = self._ensure()
        for entry in queue:
            future = entry.future
            if future is not None and future.done() and not future.cancelled():
                exception = future.exception()
                if exception is None or not isinstance(exception, BrokenExecutor):
                    continue
            entry.submitted = time.perf_counter()
            entry.future = executor.submit(_pilot_execute, entry.payload)

    # ------------------------------------------------------------------ #
    def reset_accounting(self) -> None:
        """Zero cumulative counters at a quiescent point (drained)."""
        with self._lock:
            if self._pending:
                raise RuntimeError("cannot reset accounting with executions pending")
            self.batches_dispatched = 0
            self.jobs_executed = 0
            self.jobs_failed = 0
            self.retries = 0
            self.timeouts = 0
            self.crashes = 0
            self.busy_worker_seconds = 0.0
            self._epoch = time.perf_counter()

    def close(self) -> None:
        """Drain remaining pilots (failures become failed jobs) and shut down."""
        try:
            self.drain()
        finally:
            with self._lock:
                executor, self._executor = self._executor, None
            if executor is not None:
                executor.shutdown(wait=True)

    def __enter__(self) -> "ProcessDispatcher":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
