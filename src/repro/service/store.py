"""Durable job store: a JSONL journal of job lifecycle transitions.

The in-memory service loses its queue the moment the process dies — fine
for a simulator, disqualifying for the paper's "reconstruction as a
service" pitch.  :class:`JobStore` makes the queue restartable by
journaling every lifecycle transition to an append-only JSON-lines file
under a state directory::

    {"event": "submitted", "job_id": "job-0001", "job": {...static identity...}}
    {"event": "queued",    "job_id": "job-0001"}
    {"event": "placed",    "job_id": "job-0001", "start": 0.0, "gpus": 4, ...}
    {"event": "executed",  "job_id": "job-0001", "start": 0.01, "finish": 0.2, ...}
    {"event": "completed", "job_id": "job-0001", "finish": 12.5}

On restart, :meth:`recover` replays the journal and classifies every job
by its *last durable state*:

* ``completed`` / ``rejected`` / ``failed`` — terminal; reconstructed with
  their recorded outcome so reports and the HTTP ``/jobs`` registry
  survive the restart;
* ``submitted`` / ``queued`` / ``placed`` — in flight when the process
  died; reconstructed as fresh ``PENDING`` jobs for re-admission.  A
  placed-but-incomplete job restarts from the queue (at-least-once
  execution), and job ids are unique in the journal, so recovery never
  loses a job and never duplicates one.

Durability model: each append is flushed to the operating system, so the
journal survives ``kill -9`` of the service process (a whole-machine crash
can lose the tail — the last event, never the journal's integrity).  A
torn final line from a mid-write kill is detected and ignored on replay,
and truncated away before the first new append — so a recovered service's
own appends never merge onto the partial line and re-corrupt the journal.
Corruption anywhere else raises loudly.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, TextIO

from ..obs import get_tracer
from .job import ReconstructionJob

__all__ = ["JobStore", "RecoveredState", "JOURNAL_NAME"]

#: File name of the journal inside the state directory.
JOURNAL_NAME = "journal.jsonl"

#: Events that end a job's lifecycle; anything else leaves it in flight.
_TERMINAL_EVENTS = frozenset({"completed", "rejected", "failed"})

_KNOWN_EVENTS = frozenset(
    {"submitted", "queued", "rejected", "placed", "executed", "completed", "failed"}
)


@dataclass
class RecoveredState:
    """Outcome of one journal replay, classified by last durable state."""

    #: Jobs that were in flight (submitted/queued/placed) — re-admit these.
    pending: List[ReconstructionJob] = field(default_factory=list)
    completed: List[ReconstructionJob] = field(default_factory=list)
    rejected: List[ReconstructionJob] = field(default_factory=list)
    failed: List[ReconstructionJob] = field(default_factory=list)

    @property
    def jobs(self) -> List[ReconstructionJob]:
        """Every recovered job, terminal and in-flight."""
        return self.pending + self.completed + self.rejected + self.failed

    def __len__(self) -> int:
        return len(self.pending) + len(self.completed) + len(self.rejected) + len(
            self.failed
        )


class JobStore:
    """Append-only journal of job transitions under a state directory."""

    def __init__(self, state_dir) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.state_dir / JOURNAL_NAME
        self._lock = threading.Lock()
        self._handle: Optional[TextIO] = None
        self.events_appended = 0

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def append(self, event: str, job_id: str, **fields) -> None:
        """Journal one transition; flushed before returning (kill-safe)."""
        if event not in _KNOWN_EVENTS:
            raise ValueError(f"unknown journal event {event!r}")
        record = {"event": event, "job_id": job_id}
        record.update(fields)
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._handle is None:
                self._repair_torn_tail()
                self._handle = self.journal_path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            self.events_appended += 1

    def _repair_torn_tail(self) -> None:
        """Truncate a partial final line left by a mid-write ``kill -9``.

        Appending onto a torn tail would merge the new record into the
        partial line — the next replay would then either drop it as the
        torn tail or, once more events follow, refuse the whole journal as
        corrupt.  Called under the lock before the append handle opens.
        """
        try:
            with self.journal_path.open("rb+") as handle:
                size = handle.seek(0, 2)
                if size == 0:
                    return
                handle.seek(size - 1)
                if handle.read(1) == b"\n":
                    return
                # Scan backwards for the last newline; everything after it
                # is the torn record, which replay would discard anyway.
                keep = 0
                position = size
                while position > 0:
                    step = min(4096, position)
                    handle.seek(position - step)
                    chunk = handle.read(step)
                    newline = chunk.rfind(b"\n")
                    if newline != -1:
                        keep = position - step + newline + 1
                        break
                    position -= step
                handle.truncate(keep)
        except FileNotFoundError:
            return

    def record_submitted(self, job: ReconstructionJob) -> None:
        self.append("submitted", job.job_id, job=job.to_payload())

    def record_queued(self, job: ReconstructionJob) -> None:
        self.append("queued", job.job_id)

    def record_rejected(self, job: ReconstructionJob) -> None:
        self.append("rejected", job.job_id, reason=job.rejection_reason)

    def record_placed(self, job: ReconstructionJob, finish_seconds: float) -> None:
        self.append(
            "placed",
            job.job_id,
            start=job.start_seconds,
            finish=finish_seconds,
            gpus=job.gpus,
            rows=job.rows,
            columns=job.columns,
            cache_hit=job.cache_hit,
            filter_seconds=job.filter_seconds,
            backprojection_seconds=job.backprojection_seconds,
        )

    def record_executed(self, job: ReconstructionJob) -> None:
        self.append(
            "executed",
            job.job_id,
            start=job.executed_start_seconds,
            finish=job.executed_finish_seconds,
            workers=job.workers,
            pilot_cache_hit=job.pilot_cache_hit,
            attempts=job.execution_attempts,
        )

    def record_completed(self, job: ReconstructionJob) -> None:
        self.append("completed", job.job_id, finish=job.finish_seconds)

    def record_failed(self, job: ReconstructionJob) -> None:
        self.append("failed", job.job_id, reason=job.failure_reason)

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def events(self) -> Iterator[dict]:
        """Parsed journal events in append order.

        A torn *final* line (the process was killed mid-write) is silently
        dropped; a malformed line anywhere else means real corruption and
        raises ``ValueError``.
        """
        if not self.journal_path.exists():
            return
        lines = self.journal_path.read_text(encoding="utf-8").splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                if index == len(lines) - 1:
                    return  # torn tail from a mid-write kill: ignore
                raise ValueError(
                    f"corrupt journal {self.journal_path} at line {index + 1}: {exc}"
                ) from exc
            if not isinstance(payload, dict) or "event" not in payload:
                raise ValueError(
                    f"corrupt journal {self.journal_path} at line {index + 1}: "
                    "not an event object"
                )
            yield payload

    def recover(self) -> RecoveredState:
        """Replay the journal into a :class:`RecoveredState`.

        Jobs are keyed by ``job_id`` (submission order preserved), so a job
        journaled many times — including across earlier recoveries, which
        re-journal their re-submissions — recovers exactly once.
        """
        with get_tracer().span("service.store", op="recover"):
            submitted: Dict[str, dict] = {}
            last: Dict[str, dict] = {}
            extras: Dict[str, Dict[str, dict]] = {}
            for event in self.events():
                job_id = str(event.get("job_id", ""))
                kind = event["event"]
                if kind == "submitted":
                    # Latest submission wins (identical across re-journals).
                    submitted[job_id] = event.get("job", {})
                    if job_id not in last or last[job_id]["event"] not in _TERMINAL_EVENTS:
                        last[job_id] = event
                    continue
                if job_id not in submitted:
                    raise ValueError(
                        f"corrupt journal {self.journal_path}: {kind!r} event "
                        f"for unknown job {job_id!r}"
                    )
                extras.setdefault(job_id, {})[kind] = event
                # A pilot's `executed` verdict lands after the simulated
                # `completed` (the dispatcher drains after the event loop);
                # side-records never demote a terminal outcome — only
                # another terminal event (e.g. a late pilot `failed`
                # overturning `completed`) may replace one.
                if (
                    job_id in last
                    and last[job_id]["event"] in _TERMINAL_EVENTS
                    and kind not in _TERMINAL_EVENTS
                ):
                    continue
                last[job_id] = event
            state = RecoveredState()
            for job_id, payload in submitted.items():
                job = ReconstructionJob.from_payload(payload)
                side = extras.get(job_id, {})
                outcome = last[job_id]["event"]
                if outcome in _TERMINAL_EVENTS:
                    self._apply_terminal(job, outcome, side)
                if outcome == "completed":
                    state.completed.append(job)
                elif outcome == "rejected":
                    state.rejected.append(job)
                elif outcome == "failed":
                    state.failed.append(job)
                else:
                    state.pending.append(job)
            return state

    @staticmethod
    def _apply_terminal(job: ReconstructionJob, outcome: str, side: Dict[str, dict]) -> None:
        placed = side.get("placed")
        if placed is not None:
            job.mark_running(
                float(placed.get("start") or 0.0),
                gpus=int(placed.get("gpus") or 0),
                rows=int(placed.get("rows") or 0),
                columns=int(placed.get("columns") or 0),
                cache_hit=bool(placed.get("cache_hit", False)),
                filter_seconds=placed.get("filter_seconds"),
                backprojection_seconds=placed.get("backprojection_seconds"),
            )
        executed = side.get("executed")
        if executed is not None and executed.get("finish") is not None:
            job.mark_executed(
                float(executed.get("start") or 0.0),
                float(executed["finish"]),
                workers=int(executed.get("workers") or 1),
            )
            if executed.get("pilot_cache_hit") is not None:
                job.pilot_cache_hit = bool(executed["pilot_cache_hit"])
            job.execution_attempts = int(executed.get("attempts") or 0)
        if outcome == "completed":
            job.mark_completed(float(side["completed"].get("finish") or 0.0))
        elif outcome == "rejected":
            job.mark_rejected(str(side["rejected"].get("reason") or "rejected"))
        elif outcome == "failed":
            job.mark_failed(str(side["failed"].get("reason") or "failed"))

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
