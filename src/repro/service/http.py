"""A minimal HTTP/JSON front door for the reconstruction service.

Speaks :class:`~repro.api.ReconstructionPlan` over plain ``http.server``
(stdlib only — no new dependencies), so "reconstruction as a service" is
an actual network service rather than a Python API:

* ``POST /plans[?dataset=<id>]`` — body is a plan's canonical JSON
  (:meth:`~repro.api.ReconstructionPlan.to_json`); submits through
  :meth:`~repro.service.service.ReconstructionService.submit_plan` and
  returns the job record.  A malformed or mismatched plan is a ``400``
  with the :class:`ValueError` text — the same strictness as the API.
* ``GET /jobs/<id>`` — one job's record (``404`` for an unknown id;
  restart-recovered jobs are served from the journal-backed registry).
* ``GET /jobs`` — every known job record.
* ``GET /metrics`` — the KPI summary plus the obs-registry snapshot.
* ``POST /advance`` — drive the discrete event loop to idle (completing
  queued work); with ``auto_advance=True`` every submission does this
  implicitly, so a demo client never needs to call it.

Status-code contract for ``POST /plans``::

    202  admitted (record carries the queued/completed job)
    400  never feasible — malformed plan JSON, unknown fields, backend
         mismatch, or a problem no (R, C) decomposition of the cluster
         can hold.  Retrying the same request can never succeed.
    429  transient backpressure — a per-tenant fair-share quota or a
         queue depth/backlog admission cap rejected the job.  The
         response carries a ``Retry-After`` header (integer seconds,
         derived from the tenant's backlog estimate) and a JSON body
         with ``error``, ``retry_after_seconds`` and the rejected job
         record.  Retrying after the hint is expected to succeed.

``400`` means *fix the request*; ``429`` means *slow down* — the fair
scheduling layer (:mod:`repro.service.fairness`) decides which, by
attaching ``retry_after_seconds`` to quota/backlog rejections only.

Robustness: handler threads come from a **bounded pool**
(``handler_threads``) behind a **connection cap** (``max_connections``)
instead of unbounded thread-per-request — excess connections receive an
immediate ``503`` and are closed, counted as
``service.http.rejected_connections``.  A malformed ``Content-Length`` is
a JSON ``400`` (not a reset connection), a body over ``max_body_bytes``
is a ``413``, any non-:class:`ValueError` escaping the service layer is
caught at the handler boundary and returned as a JSON ``500`` (counted as
``service.http.errors``), and a client that disconnects mid-response is
swallowed and counted (``service.http.client_disconnects``) instead of
spamming stderr from daemon threads.
"""

from __future__ import annotations

import json
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from .job import JobState
from .service import ReconstructionService

__all__ = ["ServiceHTTPServer"]


class _HTTPError(Exception):
    """An error with a definite HTTP status, raised inside a handler."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


class _Handler(BaseHTTPRequestHandler):
    # Set by ServiceHTTPServer on the server instance; typed here for clarity.
    server: "_BoundServer"

    # Bound socket-read patience: a stalled client cannot pin a pool
    # thread forever (the read raises and the connection closes).
    timeout = 30

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the service's obs layer is the log; HTTP stays quiet

    # ------------------------------------------------------------------ #
    def _count(self, name: str) -> None:
        self.server.front.service.obs.counter(name).inc()

    def _send(self, code: int, payload, *, headers: Optional[dict] = None) -> None:
        """Serialize and send one JSON response.

        A client gone mid-response (``BrokenPipeError`` /
        ``ConnectionResetError``) is swallowed and counted — handler
        threads are daemons and a disconnecting client is routine, not a
        stack trace.
        """
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self._count("service.http.client_disconnects")
            self.close_connection = True

    def _read_body(self) -> bytes:
        raw = self.headers.get("Content-Length")
        if raw is None or not raw.strip():
            return b""
        try:
            length = int(raw)
        except ValueError:
            raise _HTTPError(
                400, f"malformed Content-Length header: {raw!r}"
            ) from None
        if length < 0:
            raise _HTTPError(400, f"negative Content-Length: {length}")
        limit = self.server.front.max_body_bytes
        if length > limit:
            raise _HTTPError(
                413, f"request body of {length} bytes exceeds the "
                     f"{limit}-byte limit"
            )
        return self.rfile.read(length) if length else b""

    # ------------------------------------------------------------------ #
    # Handler boundary: every route runs inside _guard, so a bug (or a
    # broken dispatcher raising RuntimeError out of submit_plan/advance)
    # becomes a JSON 500 instead of a dead thread and a reset connection.
    # ------------------------------------------------------------------ #
    def _guard(self, route) -> None:
        try:
            route()
        except _HTTPError as exc:
            self._send(exc.code, {"error": exc.message})
            # The request body may be partly or wholly unread (malformed /
            # oversized Content-Length): never reuse this connection, or
            # the leftover bytes would be parsed as the next request line.
            self.close_connection = True
        except (BrokenPipeError, ConnectionResetError):
            self._count("service.http.client_disconnects")
            self.close_connection = True
        except ValueError as exc:
            # The service layer's contract errors (plan/backend mismatch).
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - the boundary must hold
            self._count("service.http.errors")
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._guard(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self._guard(self._route_post)

    # ------------------------------------------------------------------ #
    def _route_get(self) -> None:
        service = self.server.front.service
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["metrics"]:
            self._send(200, {
                "summary": service.report().summary,
                "obs": service.obs_snapshot(),
            })
            return
        if parts == ["jobs"]:
            with service._lock:
                records = [job.as_record() for job in service.jobs.values()]
            self._send(200, {"jobs": records})
            return
        if len(parts) == 2 and parts[0] == "jobs":
            with service._lock:
                job = service.jobs.get(parts[1])
            if job is None:
                self._send(404, {"error": f"unknown job {parts[1]!r}"})
                return
            self._send(200, job.as_record())
            return
        self._send(404, {"error": f"no such resource {parsed.path!r}"})

    def _route_post(self) -> None:
        front = self.server.front
        service = front.service
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["plans"]:
            from ..api.plan import ReconstructionPlan  # late: api imports service

            query = parse_qs(parsed.query)
            dataset_id = (query.get("dataset") or [""])[0]
            try:
                plan = ReconstructionPlan.from_json(
                    self._read_body().decode("utf-8")
                )
                job = service.submit_plan(plan, dataset_id=dataset_id)
            except ValueError as exc:
                self._send(400, {"error": str(exc)})
                return
            if job.state is JobState.REJECTED:
                if job.retry_after_seconds is not None:
                    # Transient quota/backlog backpressure: tell the
                    # tenant when to come back (the 429 contract above).
                    retry = max(1, math.ceil(job.retry_after_seconds))
                    self._send(429, {
                        "error": job.rejection_reason,
                        "retry_after_seconds": job.retry_after_seconds,
                        "job": job.as_record(),
                    }, headers={"Retry-After": str(retry)})
                else:
                    # Never feasible on this cluster: retrying cannot help.
                    self._send(400, {
                        "error": job.rejection_reason,
                        "job": job.as_record(),
                    })
                return
            if front.auto_advance:
                front.advance()
            self._send(202, job.as_record())
            return
        if parts == ["advance"]:
            front.advance()
            # clock_seconds is guarded by the service lock; an unlocked
            # read can tear against an event-loop advance on another
            # handler thread.
            with service._lock:
                clock = service.clock_seconds
            self._send(200, {"ok": True, "clock_seconds": clock})
            return
        self._send(404, {"error": f"no such resource {parsed.path!r}"})


_BUSY_RESPONSE_BODY = b'{"error": "connection limit reached, retry later"}'
_BUSY_RESPONSE = (
    b"HTTP/1.1 503 Service Unavailable\r\n"
    b"Content-Type: application/json\r\n"
    b"Content-Length: " + str(len(_BUSY_RESPONSE_BODY)).encode("ascii") + b"\r\n"
    b"Retry-After: 1\r\n"
    b"Connection: close\r\n\r\n" + _BUSY_RESPONSE_BODY
)


class _BoundServer(ThreadingHTTPServer):
    daemon_threads = True
    front: "ServiceHTTPServer"

    def process_request(self, request, client_address):
        """Dispatch onto the bounded pool instead of thread-per-request.

        Connections beyond ``max_connections`` (queued plus in-flight) get
        an immediate ``503`` and are closed — overload sheds load at the
        door instead of accumulating threads without bound.
        """
        front = self.front
        if not front._connection_slots.acquire(blocking=False):
            front.service.obs.counter("service.http.rejected_connections").inc()
            try:
                request.sendall(_BUSY_RESPONSE)
            except OSError:
                pass
            self.shutdown_request(request)
            return
        try:
            front._pool.submit(self._handle_in_pool, request, client_address)
        except RuntimeError:  # pool already shut down (server stopping)
            front._connection_slots.release()
            self.shutdown_request(request)

    def _handle_in_pool(self, request, client_address):
        try:
            self.finish_request(request, client_address)
        except Exception:  # noqa: BLE001 - mirror process_request_thread
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)
            self.front._connection_slots.release()

    def handle_error(self, request, client_address):
        # Counted, not printed: daemon handler threads must not spam
        # stderr when a client vanishes mid-conversation.
        self.front.service.obs.counter("service.http.errors").inc()


class ServiceHTTPServer:
    """Serve one :class:`ReconstructionService` over HTTP/JSON.

    ``handler_threads`` bounds concurrent request handling and
    ``max_connections`` caps accepted-but-unfinished connections (the
    overflow is refused with ``503``); ``max_body_bytes`` bounds request
    bodies (``413`` beyond it).
    """

    def __init__(
        self,
        service: ReconstructionService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        auto_advance: bool = True,
        handler_threads: int = 8,
        max_connections: int = 64,
        max_body_bytes: int = 1 << 20,
    ):
        if handler_threads < 1:
            raise ValueError("handler_threads must be a positive integer")
        if max_connections < handler_threads:
            raise ValueError(
                "max_connections must be >= handler_threads "
                f"(got {max_connections} < {handler_threads})"
            )
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be a positive integer")
        self.service = service
        self.host = host
        self.port = port  # replaced by the bound port on start()
        self.auto_advance = auto_advance
        self.handler_threads = handler_threads
        self.max_connections = max_connections
        self.max_body_bytes = max_body_bytes
        self._server: Optional[_BoundServer] = None
        self._thread: Optional[threading.Thread] = None
        self._advance_lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._connection_slots = threading.Semaphore(max_connections)

    # ------------------------------------------------------------------ #
    def advance(self) -> None:
        """Drive the event loop to idle; serialized across handler threads."""
        with self._advance_lock:
            self.service.run_until_idle()

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the actual port."""
        if self._server is not None:
            return self.port
        self._pool = ThreadPoolExecutor(
            max_workers=self.handler_threads,
            thread_name_prefix="repro-http-handler",
        )
        server = _BoundServer((self.host, self.port), _Handler)
        server.front = self
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-http", daemon=True
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def serve_forever(self) -> None:
        """Blocking serve (the CLI's ``--http`` mode); Ctrl-C to stop."""
        self.start()
        try:
            self._thread.join()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "ServiceHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
