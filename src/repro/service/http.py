"""A minimal HTTP/JSON front door for the reconstruction service.

Speaks :class:`~repro.api.ReconstructionPlan` over plain ``http.server``
(stdlib only — no new dependencies), so "reconstruction as a service" is
an actual network service rather than a Python API:

* ``POST /plans[?dataset=<id>]`` — body is a plan's canonical JSON
  (:meth:`~repro.api.ReconstructionPlan.to_json`); submits through
  :meth:`~repro.service.service.ReconstructionService.submit_plan` and
  returns the job record.  A malformed or mismatched plan is a ``400``
  with the :class:`ValueError` text — the same strictness as the API.
* ``GET /jobs/<id>`` — one job's record (``404`` for an unknown id;
  restart-recovered jobs are served from the journal-backed registry).
* ``GET /jobs`` — every known job record.
* ``GET /metrics`` — the KPI summary plus the obs-registry snapshot.
* ``POST /advance`` — drive the discrete event loop to idle (completing
  queued work); with ``auto_advance=True`` every submission does this
  implicitly, so a demo client never needs to call it.

The server runs on a daemon thread over ``ThreadingHTTPServer``; handler
threads serialize on the service's own reentrant lock (submissions) and
on one advance lock (event-loop drives), so concurrent clients compose
exactly like concurrent in-process tenants.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from .service import ReconstructionService

__all__ = ["ServiceHTTPServer"]


class _Handler(BaseHTTPRequestHandler):
    # Set by ServiceHTTPServer on the server instance; typed here for clarity.
    server: "_BoundServer"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the service's obs layer is the log; HTTP stays quiet

    # ------------------------------------------------------------------ #
    def _send(self, code: int, payload) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        service = self.server.front.service
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["metrics"]:
            self._send(200, {
                "summary": service.report().summary,
                "obs": service.obs_snapshot(),
            })
            return
        if parts == ["jobs"]:
            with service._lock:
                records = [job.as_record() for job in service.jobs.values()]
            self._send(200, {"jobs": records})
            return
        if len(parts) == 2 and parts[0] == "jobs":
            with service._lock:
                job = service.jobs.get(parts[1])
            if job is None:
                self._send(404, {"error": f"unknown job {parts[1]!r}"})
                return
            self._send(200, job.as_record())
            return
        self._send(404, {"error": f"no such resource {parsed.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        front = self.server.front
        service = front.service
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["plans"]:
            from ..api.plan import ReconstructionPlan  # late: api imports service

            query = parse_qs(parsed.query)
            dataset_id = (query.get("dataset") or [""])[0]
            try:
                plan = ReconstructionPlan.from_json(
                    self._read_body().decode("utf-8")
                )
                job = service.submit_plan(plan, dataset_id=dataset_id)
            except ValueError as exc:
                self._send(400, {"error": str(exc)})
                return
            if front.auto_advance:
                front.advance()
            self._send(202, job.as_record())
            return
        if parts == ["advance"]:
            front.advance()
            self._send(200, {"ok": True, "clock_seconds": service.clock_seconds})
            return
        self._send(404, {"error": f"no such resource {parsed.path!r}"})


class _BoundServer(ThreadingHTTPServer):
    daemon_threads = True
    front: "ServiceHTTPServer"


class ServiceHTTPServer:
    """Serve one :class:`ReconstructionService` over HTTP/JSON."""

    def __init__(
        self,
        service: ReconstructionService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        auto_advance: bool = True,
    ):
        self.service = service
        self.host = host
        self.port = port  # replaced by the bound port on start()
        self.auto_advance = auto_advance
        self._server: Optional[_BoundServer] = None
        self._thread: Optional[threading.Thread] = None
        self._advance_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def advance(self) -> None:
        """Drive the event loop to idle; serialized across handler threads."""
        with self._advance_lock:
            self.service.run_until_idle()

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the actual port."""
        if self._server is not None:
            return self.port
        server = _BoundServer((self.host, self.port), _Handler)
        server.front = self
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-http", daemon=True
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def serve_forever(self) -> None:
        """Blocking serve (the CLI's ``--http`` mode); Ctrl-C to stop."""
        self.start()
        try:
            self._thread.join()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "ServiceHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
