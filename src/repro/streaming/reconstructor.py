"""The streaming FDK executor: chunked filter→back-project pipelining.

:class:`StreamingReconstructor` is the chunked counterpart of
:class:`~repro.core.fdk.FDKReconstructor`: instead of filtering the whole
``(Np, Nv, Nu)`` stack and then back-projecting it, it pulls bounded
chunks from a :class:`~repro.streaming.ProjectionChunkSource`, filters
each through the *same* shared driver (:meth:`ComputeBackend.filter_stack`
with the scenario's redundancy rows sliced to the chunk) and folds it into
one persistent :class:`~repro.backends.base.VolumeAccumulator` before the
next chunk is even read.

Bit-identity is the design invariant, not an accident:

* every filtering table (cosine weights, ramp response, FDK scale) depends
  only on the geometry, and the per-row FFT convolution is independent of
  how rows are batched — so a chunk's filtered rows equal the same rows of
  the whole-stack filtering bit-for-bit;
* the scenario redundancy table is ``(Np, Nu)`` and slices cleanly to each
  chunk's global projection window;
* back-projection is a sum over projections, and chunks are accumulated in
  acquisition order through one accumulator — the floating-point
  accumulation order is *exactly* the whole-stack order, on every backend
  (``parallel`` included: its shards accumulate each tile in sequential
  stack order per dispatch).

``tests/test_streaming.py`` pins that invariant across the full
backend × scenario × dtype × chunk-size matrix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from ..backends.base import ComputeBackend
from ..core.filtering import RAMP_FILTERS
from ..core.geometry import CBCTGeometry
from ..core.types import ProjectionStack, Volume
from ..obs import NULL_METRICS, MetricsRegistry, get_tracer, peak_rss_bytes
from .chunks import (
    chunk_working_set_bytes,
    plan_chunks,
    resolve_chunk_size,
)
from .sources import ProjectionChunkSource, StackChunkSource, StreamingError

__all__ = ["StreamingReconstructor", "StreamingResult", "reconstruct_streaming"]


@dataclass
class StreamingResult:
    """Outcome of one streaming reconstruction, with chunk accounting."""

    volume: Volume
    num_projections: int
    chunk_size: int
    chunk_count: int
    filter_seconds: float
    backprojection_seconds: float
    #: Over-estimated streaming working set of one executed chunk.
    working_set_bytes: int
    #: The budget the run was planned under (``None`` = unconstrained).
    memory_budget_bytes: Optional[int]
    #: Process-lifetime peak RSS sampled after the last chunk.
    peak_rss_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.filter_seconds + self.backprojection_seconds


class StreamingReconstructor:
    """Chunked FDK reconstruction under an explicit memory budget.

    Parameters mirror :class:`~repro.core.fdk.FDKReconstructor` (geometry,
    ramp filter, algorithm, backend, scenario, workers) plus the streaming
    knobs:

    chunk_size:
        Projections per chunk (``None`` derives it from the budget, or
        falls back to :data:`~repro.streaming.DEFAULT_CHUNK_SIZE`).
    memory_budget_bytes:
        Upper bound on the streaming working set (see
        :func:`~repro.streaming.chunk_working_set_bytes` for exactly what
        is counted).  Chunk planning never exceeds it; an infeasible
        combination raises :class:`ValueError` up front.
    backend:
        A backend *name* (resolved through the registry, with ``workers``
        sizing a dedicated pool exactly as on ``FDKReconstructor``) or a
        live :class:`ComputeBackend` instance (used as-is; ``workers``
        must then be ``None``).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` receiving the
        ``streaming.chunks`` counter and ``streaming.peak_rss_bytes``
        gauge; defaults to the process-wide no-op registry.
    """

    def __init__(
        self,
        geometry: CBCTGeometry,
        *,
        ramp_filter: str = "ram-lak",
        algorithm: str = "proposed",
        use_symmetry: bool = True,
        backend: Union[str, ComputeBackend] = "reference",
        scenario: Optional[object] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        memory_budget_bytes: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if ramp_filter not in RAMP_FILTERS:
            raise ValueError(
                f"unknown ramp filter {ramp_filter!r}; valid: {RAMP_FILTERS}"
            )
        if algorithm not in ("proposed", "standard"):
            raise ValueError("algorithm must be 'proposed' or 'standard'")
        self.geometry = geometry
        self.ramp_filter = ramp_filter
        self.algorithm = algorithm
        self.use_symmetry = use_symmetry
        self.chunk_size = chunk_size
        self.memory_budget_bytes = memory_budget_bytes
        self.metrics = metrics if metrics is not None else NULL_METRICS
        if isinstance(backend, ComputeBackend):
            if workers is not None:
                raise ValueError(
                    "workers only applies when the backend is given by name; "
                    "size the backend instance directly instead"
                )
            self._backend = backend
            self._owns_backend = False
        else:
            from ..backends import resolve_backend  # late: backends import core

            self._backend = resolve_backend(backend, workers=workers)
            self._owns_backend = workers is not None
        if scenario is None:
            self.scenario = None
            self._redundancy = None
        else:
            from ..scenarios import get_scenario  # late: scenarios import core

            self.scenario = get_scenario(scenario)
            self._redundancy = self.scenario.redundancy_weights(self.geometry)
        # Fail on an infeasible chunk/budget combination at construction,
        # before any source is opened or accumulator allocated.
        resolve_chunk_size(
            geometry, geometry.np_,
            chunk_size=chunk_size, memory_budget_bytes=memory_budget_bytes,
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_plan(
        cls, plan, *, metrics: Optional[MetricsRegistry] = None
    ) -> "StreamingReconstructor":
        """The streaming executor a ``streaming: true`` plan describes."""
        scenario = plan.resolved_scenario()
        return cls(
            geometry=plan.scenario_geometry(),
            ramp_filter=plan.ramp_filter,
            algorithm=plan.algorithm,
            backend=plan.backend,
            scenario=None if scenario.is_ideal else scenario,
            workers=plan.workers,
            chunk_size=plan.chunk_size,
            memory_budget_bytes=plan.memory_budget_bytes,
            metrics=metrics,
        )

    def close(self) -> None:
        """Join the worker pool of a dedicated ``parallel`` backend."""
        if self._owns_backend:
            self._backend.close()

    def __enter__(self) -> "StreamingReconstructor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    def reconstruct(self, source: ProjectionChunkSource) -> StreamingResult:
        """Stream every chunk of ``source`` into one reconstructed volume.

        The source must deliver exactly the acquisition the geometry
        describes; any shortfall, reordering beyond the source's window or
        bound mismatch raises (:class:`StreamingError` /
        :class:`TimeoutError`) — a partial volume is never returned.
        """
        np_total = int(source.num_projections)
        if np_total != self.geometry.np_:
            raise ValueError(
                f"source promises {np_total} projections but the geometry "
                f"acquires {self.geometry.np_}"
            )
        chunk = resolve_chunk_size(
            self.geometry, np_total,
            chunk_size=self.chunk_size,
            memory_budget_bytes=self.memory_budget_bytes,
        )
        bounds = plan_chunks(np_total, chunk)
        tracer = get_tracer()
        acc = self._backend.accumulator(
            self.geometry,
            algorithm=self.algorithm,
            use_symmetry=self.use_symmetry,
        )
        add_stack = getattr(acc, "add_stack", None)
        chunk_counter = self.metrics.counter("streaming.chunks")
        filter_seconds = 0.0
        backproject_seconds = 0.0
        delivered = 0
        for index, piece in enumerate(source.chunks(bounds)):
            if index >= len(bounds) or (piece.start, piece.stop) != bounds[index]:
                raise StreamingError(
                    f"source yielded chunk [{piece.start}, {piece.stop}) "
                    f"where the plan expected "
                    f"{bounds[index] if index < len(bounds) else 'no chunk'}"
                )
            stack = piece.stack
            if stack.nu != self.geometry.nu or stack.nv != self.geometry.nv:
                raise ValueError(
                    f"chunk projections ({stack.nv}x{stack.nu}) do not match "
                    f"the detector ({self.geometry.nv}x{self.geometry.nu})"
                )
            t0 = time.perf_counter()
            if stack.filtered:
                if self._redundancy is not None:
                    raise ValueError(
                        f"scenario {self.scenario.name!r} applies redundancy "
                        "weights in the filtering stage, but this source "
                        "delivers pre-filtered projections"
                    )
                filtered = stack
            else:
                redundancy = (
                    None if self._redundancy is None
                    else self._redundancy[piece.start:piece.stop]
                )
                with tracer.span(
                    "filter.chunk",
                    payload_bytes=int(stack.data.nbytes),
                    chunk=index,
                    start=piece.start,
                    stop=piece.stop,
                ):
                    filtered = self._backend.filter_stack(
                        stack, self.geometry, self.ramp_filter,
                        redundancy=redundancy,
                    )
            t1 = time.perf_counter()
            with tracer.span(
                "backproject.chunk",
                payload_bytes=int(filtered.data.nbytes),
                chunk=index,
                start=piece.start,
                stop=piece.stop,
            ):
                if add_stack is not None:
                    add_stack(filtered)
                else:
                    for angle, projection in filtered:
                        acc.add(projection, angle)
            backproject_seconds += time.perf_counter() - t1
            filter_seconds += t1 - t0
            delivered += piece.size
            chunk_counter.inc()
        if delivered != np_total:
            raise StreamingError(
                f"source delivered {delivered} of {np_total} projections — "
                "refusing to return a partial volume"
            )
        volume = acc.volume()
        rss = peak_rss_bytes()
        self.metrics.gauge("streaming.peak_rss_bytes").set(rss)
        return StreamingResult(
            volume=volume,
            num_projections=np_total,
            chunk_size=chunk,
            chunk_count=len(bounds),
            filter_seconds=filter_seconds,
            backprojection_seconds=backproject_seconds,
            working_set_bytes=chunk_working_set_bytes(self.geometry, chunk),
            memory_budget_bytes=self.memory_budget_bytes,
            peak_rss_bytes=rss,
        )


def reconstruct_streaming(
    source: Union[ProjectionChunkSource, ProjectionStack],
    geometry: CBCTGeometry,
    *,
    ramp_filter: str = "ram-lak",
    algorithm: str = "proposed",
    backend: Union[str, ComputeBackend] = "reference",
    scenario: Optional[object] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> StreamingResult:
    """One-call streaming reconstruction (a bare stack is wrapped)."""
    if isinstance(source, ProjectionStack):
        source = StackChunkSource(source)
    with StreamingReconstructor(
        geometry,
        ramp_filter=ramp_filter,
        algorithm=algorithm,
        backend=backend,
        scenario=scenario,
        workers=workers,
        chunk_size=chunk_size,
        memory_budget_bytes=memory_budget_bytes,
    ) as reconstructor:
        return reconstructor.reconstruct(source)
