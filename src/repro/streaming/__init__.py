"""Chunked streaming reconstruction: out-of-core and online FDK.

The whole-stack FDK path (`core.fdk` → `backends`) filters all ``Np``
projections, then back-projects them — two full ``(Np, Nv, Nu)`` arrays
resident at once.  This package refactors that handoff into a *chunk
iterator* pipeline so reconstruction can (a) bound its working set by an
explicit ``memory_budget_bytes`` for stacks that exceed node RAM, and
(b) start before acquisition finishes, consuming projections through
:class:`~repro.pipeline.CircularBuffer` — the paper's "instant FDK"
overlap of acquisition and reconstruction.

The pieces:

* :mod:`~repro.streaming.chunks` — chunk planning and the working-set
  budget arithmetic (:func:`plan_chunks`, :func:`resolve_chunk_size`,
  :func:`parse_byte_size`);
* :mod:`~repro.streaming.sources` — the :class:`ProjectionChunkSource`
  protocol and its three implementations (in-memory stack, PFS-backed
  reader, online circular-buffer consumer);
* :mod:`~repro.streaming.reconstructor` — the
  :class:`StreamingReconstructor` executor, bit-identical to the
  whole-stack path on every backend by construction.

The same plan/Session/CLI seams drive it: set ``streaming: true`` (plus
optional ``chunk_size`` / ``memory_budget_bytes``) on a
:class:`~repro.api.ReconstructionPlan`, or pass ``--stream`` /
``--chunk-size`` / ``--memory-budget`` to ``repro reconstruct``.
"""

from .chunks import (
    DEFAULT_CHUNK_SIZE,
    chunk_working_set_bytes,
    parse_byte_size,
    per_projection_working_set_bytes,
    plan_chunks,
    resolve_chunk_size,
    whole_stack_working_set_bytes,
)
from .reconstructor import (
    StreamingReconstructor,
    StreamingResult,
    reconstruct_streaming,
)
from .sources import (
    OnlineChunkSource,
    PFSChunkSource,
    ProjectionChunk,
    ProjectionChunkSource,
    StackChunkSource,
    StreamingError,
    stream_stack,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "OnlineChunkSource",
    "PFSChunkSource",
    "ProjectionChunk",
    "ProjectionChunkSource",
    "StackChunkSource",
    "StreamingError",
    "StreamingReconstructor",
    "StreamingResult",
    "chunk_working_set_bytes",
    "parse_byte_size",
    "per_projection_working_set_bytes",
    "plan_chunks",
    "reconstruct_streaming",
    "resolve_chunk_size",
    "stream_stack",
    "whole_stack_working_set_bytes",
]
