"""Projection chunk sources: where a streaming reconstruction reads from.

A :class:`ProjectionChunkSource` hands the :class:`StreamingReconstructor`
consecutive :class:`ProjectionChunk` windows of the acquisition, in order,
without ever requiring the whole ``(Np, Nv, Nu)`` stack in memory.  Three
sources cover the paper's regimes:

* :class:`StackChunkSource` — an in-memory stack, sliced without copying
  (zero-cost adapter; what ``Session.run`` wraps around its input);
* :class:`PFSChunkSource` — the out-of-core path: chunks are read on
  demand from a :class:`~repro.pfs.SimulatedPFS` projection dataset, so
  peak memory is one chunk, not one acquisition;
* :class:`OnlineChunkSource` — the *instant* path: projections arrive one
  at a time through a :class:`~repro.pipeline.CircularBuffer` while the
  gantry is still turning, with a bounded reorder window for
  out-of-order completion.

Fault semantics are deliberately loud: a source that cannot deliver the
full acquisition (producer died, stream closed early, an index arrived
twice, reordering exceeded the window) raises :class:`StreamingError` —
never a silent partial volume.  A stalled producer surfaces as the
:class:`TimeoutError` of the underlying buffer.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..core.types import ProjectionStack
from ..pfs.projection_io import dataset_angles, read_projection_subset
from ..pfs.storage import SimulatedPFS
from ..pipeline.circular_buffer import BufferClosed, CircularBuffer

__all__ = [
    "OnlineChunkSource",
    "PFSChunkSource",
    "ProjectionChunk",
    "ProjectionChunkSource",
    "StackChunkSource",
    "StreamingError",
    "stream_stack",
]


class StreamingError(RuntimeError):
    """A chunk source could not deliver the acquisition it promised."""


@dataclass(frozen=True)
class ProjectionChunk:
    """One consecutive window ``[start, stop)`` of the acquisition."""

    start: int
    stop: int
    stack: ProjectionStack

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(f"invalid chunk bounds [{self.start}, {self.stop})")
        if self.stack.np_ != self.stop - self.start:
            raise ValueError(
                f"chunk [{self.start}, {self.stop}) carries {self.stack.np_} "
                f"projections, expected {self.stop - self.start}"
            )

    @property
    def size(self) -> int:
        return self.stop - self.start


class ProjectionChunkSource(abc.ABC):
    """Protocol: iterate an acquisition as ordered projection chunks."""

    @property
    @abc.abstractmethod
    def num_projections(self) -> int:
        """Total projections this source will deliver (``Np``)."""

    @abc.abstractmethod
    def chunks(
        self, bounds: Sequence[Tuple[int, int]]
    ) -> Iterator[ProjectionChunk]:
        """Yield one :class:`ProjectionChunk` per requested ``(start, stop)``.

        ``bounds`` is a :func:`~repro.streaming.plan_chunks` partition of
        ``range(num_projections)``; implementations must yield exactly one
        chunk per bound, in order, or raise :class:`StreamingError`.
        """


class StackChunkSource(ProjectionChunkSource):
    """Chunks over an in-memory stack (views, no copies).

    Slicing ``data[start:stop]`` along the projection axis of a contiguous
    stack is itself contiguous, so each chunk aliases the parent storage —
    the adapter adds no memory beyond the stack the caller already holds.
    """

    def __init__(self, stack: ProjectionStack):
        self._stack = stack

    @property
    def num_projections(self) -> int:
        return self._stack.np_

    @property
    def filtered(self) -> bool:
        return self._stack.filtered

    def chunks(
        self, bounds: Sequence[Tuple[int, int]]
    ) -> Iterator[ProjectionChunk]:
        for start, stop in bounds:
            yield ProjectionChunk(
                start=start,
                stop=stop,
                stack=ProjectionStack(
                    data=self._stack.data[start:stop],
                    angles=self._stack.angles[start:stop],
                    filtered=self._stack.filtered,
                ),
            )


class PFSChunkSource(ProjectionChunkSource):
    """Chunks read on demand from a PFS projection dataset.

    The dataset layout is the one :func:`repro.pfs.write_projection_dataset`
    produces (one object per projection plus the angles vector); only the
    angles are held resident — projection data lives on the PFS until its
    chunk is requested.
    """

    def __init__(self, pfs: SimulatedPFS):
        self._pfs = pfs
        self._angles = np.asarray(dataset_angles(pfs), dtype=np.float64)
        if self._angles.ndim != 1 or self._angles.shape[0] < 1:
            raise StreamingError(
                "PFS dataset has no projections (empty angles vector)"
            )

    @property
    def num_projections(self) -> int:
        return int(self._angles.shape[0])

    def chunks(
        self, bounds: Sequence[Tuple[int, int]]
    ) -> Iterator[ProjectionChunk]:
        for start, stop in bounds:
            try:
                stack = read_projection_subset(self._pfs, range(start, stop))
            except (KeyError, IndexError) as exc:
                raise StreamingError(
                    f"PFS dataset is missing projections in [{start}, {stop}): "
                    f"{exc}"
                ) from exc
            yield ProjectionChunk(start=start, stop=stop, stack=stack)


class OnlineChunkSource(ProjectionChunkSource):
    """Chunks assembled from projections arriving through a circular buffer.

    The producer (the "acquisition") puts ``(index, angle, projection)``
    triples into ``buffer`` — in any order within ``reorder_window`` of the
    oldest outstanding chunk — and closes the buffer after the last one.
    Reconstruction overlaps acquisition: each chunk is released as soon as
    its window is complete, while later projections are still arriving.

    Parameters
    ----------
    buffer:
        The :class:`~repro.pipeline.CircularBuffer` joining producer and
        consumer; its capacity provides the back-pressure bound.
    num_projections:
        Total projections the producer has promised (``Np``).
    timeout:
        Per-item wait in seconds; a producer that stalls longer raises the
        buffer's :class:`TimeoutError` (``None`` waits forever).
    reorder_window:
        How far past the current chunk an early arrival may run before the
        source declares the stream incoherent (default: the buffer
        capacity, the natural bound on in-flight items).
    """

    def __init__(
        self,
        buffer: CircularBuffer,
        num_projections: int,
        *,
        timeout: Optional[float] = None,
        reorder_window: Optional[int] = None,
    ):
        if num_projections < 1:
            raise ValueError(
                f"num_projections must be positive, got {num_projections}"
            )
        if reorder_window is not None and reorder_window < 0:
            raise ValueError(
                f"reorder_window must be non-negative, got {reorder_window}"
            )
        self._buffer = buffer
        self._np = int(num_projections)
        self._timeout = timeout
        self._window = (
            int(reorder_window) if reorder_window is not None else buffer.capacity
        )

    @property
    def num_projections(self) -> int:
        return self._np

    def _receive(self, pending: Dict[int, Tuple[float, np.ndarray]], stop: int):
        """Pull one triple into ``pending``, enforcing stream coherence."""
        item = self._buffer.get(self._timeout)
        if item is None:
            raise StreamingError(
                f"projection stream closed after {len(pending)} pending of "
                f"{self._np} promised projections — refusing to reconstruct "
                "a partial acquisition"
            )
        try:
            index, angle, projection = item
            index = int(index)
        except (TypeError, ValueError) as exc:
            raise StreamingError(
                f"malformed stream item {item!r}: expected "
                "(index, angle, projection)"
            ) from exc
        if not 0 <= index < self._np:
            raise StreamingError(
                f"projection index {index} outside the promised acquisition "
                f"of {self._np} projections"
            )
        if index in pending:
            raise StreamingError(f"projection {index} arrived twice")
        pending[index] = (float(angle), np.asarray(projection))
        ahead = sum(1 for i in pending if i >= stop)
        if ahead > self._window:
            raise StreamingError(
                f"{ahead} projections arrived more than one chunk ahead, "
                f"exceeding the reorder window of {self._window}; the "
                "producer is completing too far out of order"
            )

    def chunks(
        self, bounds: Sequence[Tuple[int, int]]
    ) -> Iterator[ProjectionChunk]:
        pending: Dict[int, Tuple[float, np.ndarray]] = {}
        delivered = 0
        for start, stop in bounds:
            if index_lt := [i for i in pending if i < start]:
                raise StreamingError(
                    f"projection {min(index_lt)} arrived after its chunk was "
                    "already delivered (duplicate or out-of-range index)"
                )
            while any(i not in pending for i in range(start, stop)):
                self._receive(pending, stop)
            angles = []
            images = []
            for i in range(start, stop):
                angle, image = pending.pop(i)
                angles.append(angle)
                images.append(image)
            delivered += stop - start
            yield ProjectionChunk(
                start=start,
                stop=stop,
                stack=ProjectionStack(
                    data=np.stack(images, axis=0),
                    angles=np.asarray(angles, dtype=np.float64),
                ),
            )
        if delivered != self._np or pending:
            raise StreamingError(
                f"chunk plan covered {delivered} of {self._np} promised "
                f"projections with {len(pending)} left over — the plan and "
                "the stream disagree about the acquisition"
            )


def stream_stack(
    stack: ProjectionStack,
    buffer: CircularBuffer,
    *,
    order: Optional[Sequence[int]] = None,
    close: bool = True,
) -> int:
    """Produce a stack into a buffer, one ``(index, angle, projection)`` at a time.

    The convenience producer for tests and examples: run it on a thread to
    simulate an acquisition feeding :class:`OnlineChunkSource`.  ``order``
    permutes the emission sequence (the *indices* still identify each
    projection, so a permuted emission models out-of-order completion).
    Returns the number of projections emitted; ``close=True`` closes the
    buffer afterwards so the consumer sees end-of-stream.
    """
    indices = range(stack.np_) if order is None else order
    emitted = 0
    try:
        for index in indices:
            index = int(index)
            buffer.put((index, float(stack.angles[index]), stack.data[index]))
            emitted += 1
    except BufferClosed:
        pass
    finally:
        if close:
            buffer.close()
    return emitted
