"""Chunk planning for streaming reconstruction.

The streaming pipeline replaces the whole-stack ``(Np, Nv, Nu)`` arrays of
the filter→back-projection handoff with bounded *chunks* of consecutive
projections.  This module owns the arithmetic of that decomposition:

* :func:`plan_chunks` — the exact partition of ``range(Np)`` into
  consecutive ``[start, stop)`` windows (full coverage, no overlap, order
  preserved — the invariants the Hypothesis suite pins);
* :func:`chunk_working_set_bytes` — a deliberate *over*-estimate of the
  transient memory one chunk pushes through the shared filtering driver
  (mirroring the ``blocked`` backend's ``_block_bytes`` discipline: the
  estimate must bound reality, not flatter it);
* :func:`resolve_chunk_size` — turn an explicit ``chunk_size`` and/or a
  ``memory_budget_bytes`` into the chunk size actually executed, raising a
  clear :class:`ValueError` when the budget cannot fit even one projection
  instead of thrashing.

The budget bounds the **streaming working set**: the per-chunk buffers the
filter stage materializes (raw rows, weighted products, FFT spectra and
their inverse transforms, the filtered output).  It deliberately excludes
the output volume and the back-projection tile temporaries — those are
bounded separately (the volume is the irreducible output; tiles by the
backend's own ``byte_budget``) and exist identically in the whole-stack
path, so including them would make every budget comparison a tautology.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

import numpy as np

from ..core.geometry import CBCTGeometry

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "chunk_working_set_bytes",
    "parse_byte_size",
    "per_projection_working_set_bytes",
    "plan_chunks",
    "resolve_chunk_size",
    "whole_stack_working_set_bytes",
]

#: Chunk size when neither ``chunk_size`` nor a budget is given: small
#: enough that streaming is genuinely incremental, large enough that the
#: per-chunk FFT setup amortizes.
DEFAULT_CHUNK_SIZE = 16


def plan_chunks(num_projections: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Partition ``range(num_projections)`` into consecutive chunks.

    Returns ``[(start, stop), ...]`` with ``stop - start <= chunk_size``;
    the windows cover every index exactly once, never overlap, and are
    ordered — the properties that make chunked accumulation bit-identical
    to the whole-stack sum.
    """
    if isinstance(num_projections, bool) or not isinstance(num_projections, int):
        raise ValueError(
            f"num_projections must be an integer, got {num_projections!r}"
        )
    if num_projections < 1:
        raise ValueError(
            f"num_projections must be positive, got {num_projections}"
        )
    if isinstance(chunk_size, bool) or not isinstance(chunk_size, int):
        raise ValueError(f"chunk_size must be an integer, got {chunk_size!r}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [
        (start, min(start + chunk_size, num_projections))
        for start in range(0, num_projections, chunk_size)
    ]


def _fft_pad(nu: int) -> int:
    """FFT length of the ramp filter: next power of two >= ``2 * nu``."""
    return 1 << int(np.ceil(np.log2(max(2 * nu, 2))))


def per_projection_working_set_bytes(geometry: CBCTGeometry) -> int:
    """Transient bytes one projection needs in the filtering pipeline.

    Counts every intermediate the shared :meth:`ComputeBackend.filter_stack`
    driver materializes per ``(Nv, Nu)`` projection, over-estimating on the
    safe side:

    * the raw float32 rows and the cosine-weighted product (2 x 4 bytes);
    * the float64 redundancy-weighted intermediate (8 bytes — charged even
      for ideal scans so a scenario can never blow a validated budget);
    * the complex128 FFT spectrum of the zero-padded rows (NumPy transforms
      in double precision regardless of input dtype);
    * the float64 inverse transform over the padded length;
    * the filtered float32 output rows.
    """
    nv, nu = int(geometry.nv), int(geometry.nu)
    pad = _fft_pad(nu)
    row_bytes = nv * nu * (4 + 4 + 8 + 4)  # raw + weighted + f64 + filtered
    spectrum_bytes = nv * (pad // 2 + 1) * 16  # complex128 rfft bins
    inverse_bytes = nv * pad * 8  # float64 irfft over the padded length
    return row_bytes + spectrum_bytes + inverse_bytes


def chunk_working_set_bytes(geometry: CBCTGeometry, chunk_size: int) -> int:
    """Streaming working set of one chunk of ``chunk_size`` projections."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return int(chunk_size) * per_projection_working_set_bytes(geometry)


def whole_stack_working_set_bytes(
    geometry: CBCTGeometry, num_projections: Optional[int] = None
) -> int:
    """Working set of the non-streaming path: every projection at once."""
    np_ = geometry.np_ if num_projections is None else int(num_projections)
    return chunk_working_set_bytes(geometry, np_)


def resolve_chunk_size(
    geometry: CBCTGeometry,
    num_projections: int,
    *,
    chunk_size: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
) -> int:
    """The chunk size a streaming run actually executes.

    * neither given — :data:`DEFAULT_CHUNK_SIZE` (capped at the stack);
    * ``chunk_size`` only — used as-is (capped at the stack);
    * budget only — the largest chunk whose working set fits the budget;
    * both — the explicit chunk size, rejected if its working set exceeds
      the budget (an impossible request must fail, not silently shrink).

    A budget too small for even a single projection raises
    :class:`ValueError` naming the minimum feasible budget.
    """
    if num_projections < 1:
        raise ValueError(
            f"num_projections must be positive, got {num_projections}"
        )
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if memory_budget_bytes is not None and memory_budget_bytes < 1:
        raise ValueError(
            f"memory_budget_bytes must be positive, got {memory_budget_bytes}"
        )
    if memory_budget_bytes is None:
        if chunk_size is None:
            return min(DEFAULT_CHUNK_SIZE, num_projections)
        return min(int(chunk_size), num_projections)
    per = per_projection_working_set_bytes(geometry)
    largest_fitting = int(memory_budget_bytes) // per
    if largest_fitting < 1:
        raise ValueError(
            f"memory_budget_bytes={memory_budget_bytes} cannot stream even "
            f"one {geometry.nv}x{geometry.nu} projection through the filter "
            f"pipeline (working set ~{per} bytes/projection); raise the "
            f"budget to at least {per} bytes"
        )
    if chunk_size is not None:
        chunk_size = min(int(chunk_size), num_projections)
        if chunk_size > largest_fitting:
            raise ValueError(
                f"chunk_size={chunk_size} needs a working set of "
                f"~{chunk_working_set_bytes(geometry, chunk_size)} bytes, "
                f"exceeding memory_budget_bytes={memory_budget_bytes}; the "
                f"largest chunk that fits is {largest_fitting}"
            )
        return chunk_size
    return min(largest_fitting, num_projections)


_BYTE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": 1 << 10, "kb": 1 << 10, "kib": 1 << 10,
    "m": 1 << 20, "mb": 1 << 20, "mib": 1 << 20,
    "g": 1 << 30, "gb": 1 << 30, "gib": 1 << 30,
}


def parse_byte_size(text) -> int:
    """Parse a byte count like ``268435456``, ``256MiB`` or ``1.5G``.

    Suffixes are binary (``k``/``M``/``G`` and their ``iB``/``B`` forms,
    case-insensitive).  The result must be a positive whole number of
    bytes; anything else raises :class:`ValueError` (the CLI exit-2 path).
    """
    if isinstance(text, bool):
        raise ValueError(f"byte size must be a number, got {text!r}")
    if isinstance(text, (int, float)):
        text = str(text)
    match = re.fullmatch(
        r"\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*", str(text)
    )
    if not match:
        raise ValueError(
            f"cannot parse byte size {text!r} (expected e.g. 268435456, "
            "64MiB, 1.5G)"
        )
    number, suffix = match.groups()
    factor = _BYTE_SUFFIXES.get(suffix.lower())
    if factor is None:
        raise ValueError(
            f"unknown byte-size suffix {suffix!r} in {text!r} "
            "(expected k/M/G, kB/MB/GB or kiB/MiB/GiB)"
        )
    value = float(number) * factor
    if value <= 0 or value != int(value):
        raise ValueError(
            f"byte size {text!r} must be a positive whole number of bytes"
        )
    return int(value)
