"""The iFDK distributed framework: end-to-end driver (Section 4).

:class:`IFDKFramework` wires every substrate together:

1. the input projections are written to (or already live on) the simulated
   PFS;
2. ``R × C`` MPI ranks are launched with :func:`repro.mpi.engine.run_spmd`,
   each running the three-thread pipeline of
   :mod:`repro.pipeline.rank_runtime`;
3. the row-root ranks store their reduced Z slabs back to the PFS, from
   which the final volume is reassembled;
4. wall-clock timings, per-rank stage breakdowns, communication volumes and
   the performance-model prediction for the same configuration are reported
   together in :class:`IFDKRunResult`.

On this machine the framework runs scaled-down problems (tens of ranks,
64–256³ volumes) for functional validation; the at-scale numbers of the
paper's evaluation come from the same configuration objects fed to the
performance model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.types import ProjectionStack, ReconstructionProblem, Volume
from ..mpi.engine import run_spmd
from ..pfs.projection_io import write_projection_dataset
from ..pfs.storage import SimulatedPFS
from ..pfs.volume_io import read_volume
from .config import IFDKConfig
from .decomposition import Decomposition
from .perfmodel import ABCI_MICROBENCHMARKS, IFDKPerformanceModel, PerformanceBreakdown
from .rank_runtime import RankResult, run_rank

__all__ = ["IFDKRunResult", "IFDKFramework"]


@dataclass
class IFDKRunResult:
    """Everything produced by one distributed reconstruction."""

    volume: Volume
    config: IFDKConfig
    rank_results: List[RankResult]
    wall_seconds: float
    modelled: PerformanceBreakdown
    problem: ReconstructionProblem

    # ------------------------------------------------------------------ #
    @property
    def gups(self) -> float:
        """Measured end-to-end GUPS of the functional run."""
        return self.problem.gups(self.wall_seconds)

    @property
    def modelled_gups(self) -> float:
        """GUPS predicted by the performance model for the same grid."""
        return self.problem.gups(self.modelled.t_runtime)

    def stage_totals(self) -> Dict[str, float]:
        """Sum of each stage's busy time across all ranks."""
        totals: Dict[str, float] = {}
        for result in self.rank_results:
            for stage, seconds in result.stage_seconds.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def mean_overlap_delta(self) -> float:
        """Average of the per-rank overlap factors δ (Table 5)."""
        deltas = [r.overlap_delta for r in self.rank_results if np.isfinite(r.overlap_delta)]
        return float(np.mean(deltas)) if deltas else float("nan")


class IFDKFramework:
    """Configured distributed FDK reconstruction."""

    def __init__(
        self,
        config: IFDKConfig,
        *,
        pfs: Optional[SimulatedPFS] = None,
        performance_model: Optional[IFDKPerformanceModel] = None,
    ):
        self.config = config
        self.pfs = pfs or SimulatedPFS()
        self.performance_model = performance_model or IFDKPerformanceModel(
            ABCI_MICROBENCHMARKS
        )
        # Fail fast on inconsistent configurations.
        Decomposition(config).verify_complete()
        config.validate_device_memory()

    # ------------------------------------------------------------------ #
    def stage_input(self, stack: ProjectionStack) -> float:
        """Write the acquisition to the PFS; returns the modelled write time."""
        geometry = self.config.geometry
        if stack.np_ != geometry.np_ or stack.nv != geometry.nv or stack.nu != geometry.nu:
            raise ValueError(
                f"projection stack {stack.np_}x{stack.nv}x{stack.nu} does not match "
                f"the configured geometry {geometry.np_}x{geometry.nv}x{geometry.nu}"
            )
        return write_projection_dataset(self.pfs, stack)

    def reconstruct(
        self,
        stack: Optional[ProjectionStack] = None,
        *,
        volume_name: str = "reconstruction",
    ) -> IFDKRunResult:
        """Run the full distributed reconstruction.

        Parameters
        ----------
        stack:
            The acquisition to reconstruct.  When omitted, the projections
            must already be present on the PFS (staged by a previous
            :meth:`stage_input` call).
        volume_name:
            Name under which the output slabs are stored on the PFS.
        """
        if stack is not None:
            self.stage_input(stack)

        start = time.perf_counter()
        try:
            rank_results: List[RankResult] = run_spmd(
                self.config.n_ranks,
                run_rank,
                self.config,
                self.pfs,
                volume_name=volume_name,
                name=f"ifdk-{self.config.rows}x{self.config.columns}",
            )
        finally:
            # A config-owned parallel pool must not outlive the run (it
            # restarts lazily, so repeat reconstructions still work).
            self.config.close_backend()
        wall = time.perf_counter() - start

        volume = read_volume(
            self.pfs, volume_name, voxel_pitch=self.config.geometry.voxel_pitch
        )
        problem = self.config.problem
        modelled = self.performance_model.breakdown(
            problem, self.config.rows, self.config.columns
        )
        return IFDKRunResult(
            volume=volume,
            config=self.config,
            rank_results=rank_results,
            wall_seconds=wall,
            modelled=modelled,
            problem=problem,
        )
