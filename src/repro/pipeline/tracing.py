"""Pipeline event tracing.

The breakdown figures of the paper (Figure 4c, Table 5) require knowing how
long each rank spent in each stage and how well the stages overlapped.  A
:class:`PipelineTracer` is passed to every thread of the rank runtime; each
stage wraps its work in :meth:`PipelineTracer.span` and the collected
:class:`TraceEvent` records are aggregated afterwards into per-stage totals
and an overlap factor δ (Table 5's effectiveness metric).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "PipelineTracer", "StageSummary", "summarize_events"]


@dataclass(frozen=True)
class TraceEvent:
    """One timed span of pipeline work on one rank."""

    rank: int
    stage: str
    start: float
    stop: float
    payload_bytes: int = 0

    @property
    def duration(self) -> float:
        return self.stop - self.start


@dataclass
class StageSummary:
    """Aggregate of all events of one stage."""

    stage: str
    total_seconds: float = 0.0
    events: int = 0
    payload_bytes: int = 0

    def add(self, event: TraceEvent) -> None:
        self.total_seconds += event.duration
        self.events += 1
        self.payload_bytes += event.payload_bytes


class PipelineTracer:
    """Thread-safe collector of :class:`TraceEvent` records for one rank."""

    def __init__(self, rank: int, *, clock=time.perf_counter):
        self.rank = rank
        self._clock = clock
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()
        self.t0 = clock()

    # ------------------------------------------------------------------ #
    class _Span:
        def __init__(self, tracer: "PipelineTracer", stage: str, payload_bytes: int):
            self.tracer = tracer
            self.stage = stage
            self.payload_bytes = payload_bytes
            self.start = 0.0

        def __enter__(self) -> "PipelineTracer._Span":
            self.start = self.tracer._clock()
            return self

        def __exit__(self, exc_type, exc, tb) -> None:
            stop = self.tracer._clock()
            self.tracer.record(self.stage, self.start, stop, self.payload_bytes)

    def span(self, stage: str, payload_bytes: int = 0) -> "PipelineTracer._Span":
        """Context manager timing one unit of work of ``stage``."""
        return PipelineTracer._Span(self, stage, payload_bytes)

    def record(self, stage: str, start: float, stop: float, payload_bytes: int = 0) -> None:
        with self._lock:
            self._events.append(
                TraceEvent(
                    rank=self.rank,
                    stage=stage,
                    start=start - self.t0,
                    stop=stop - self.t0,
                    payload_bytes=payload_bytes,
                )
            )

    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    # ------------------------------------------------------------------ #
    def stage_seconds(self, stage: str) -> float:
        return sum(e.duration for e in self.events() if e.stage == stage)

    def wall_seconds(self) -> float:
        events = self.events()
        if not events:
            return 0.0
        return max(e.stop for e in events) - min(e.start for e in events)

    def overlap_delta(self, stages: Optional[List[str]] = None) -> float:
        """The paper's δ: summed stage time divided by elapsed wall time.

        δ > 1 means the stages genuinely overlapped (Table 5's criterion for
        the pipelining being effective).
        """
        events = self.events()
        if stages is not None:
            events = [e for e in events if e.stage in stages]
        if not events:
            return 0.0
        total = sum(e.duration for e in events)
        wall = max(e.stop for e in events) - min(e.start for e in events)
        return total / wall if wall > 0 else float("inf")


def summarize_events(events: List[TraceEvent]) -> Dict[str, StageSummary]:
    """Aggregate a list of events into per-stage summaries."""
    summaries: Dict[str, StageSummary] = {}
    for event in events:
        summaries.setdefault(event.stage, StageSummary(stage=event.stage)).add(event)
    return summaries
