"""Pipeline event tracing.

The breakdown figures of the paper (Figure 4c, Table 5) require knowing how
long each rank spent in each stage and how well the stages overlapped.  A
:class:`PipelineTracer` is passed to every thread of the rank runtime; each
stage wraps its work in :meth:`PipelineTracer.span` and the collected
:class:`TraceEvent` records are aggregated afterwards into per-stage totals
and an overlap factor δ (Table 5's effectiveness metric).

Since the ``repro.obs`` layer landed, :class:`PipelineTracer` is a
:class:`repro.obs.Tracer` subclass: every rank-stage span is a real
:class:`repro.obs.Span` (with ``rank``/``stage`` attributes), so an iFDK
run exports through the same Chrome-trace / JSON-lines / summary-tree
exporters as everything else, while the historical :class:`TraceEvent`
view (:meth:`events`, :func:`summarize_events`, :meth:`overlap_delta`)
keeps working unchanged on top of it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..obs.tracer import Tracer

__all__ = ["TraceEvent", "PipelineTracer", "StageSummary", "summarize_events"]


@dataclass(frozen=True)
class TraceEvent:
    """One timed span of pipeline work on one rank."""

    rank: int
    stage: str
    start: float
    stop: float
    payload_bytes: int = 0

    @property
    def duration(self) -> float:
        return self.stop - self.start


@dataclass
class StageSummary:
    """Aggregate of all events of one stage."""

    stage: str
    total_seconds: float = 0.0
    events: int = 0
    payload_bytes: int = 0

    def add(self, event: TraceEvent) -> None:
        self.total_seconds += event.duration
        self.events += 1
        self.payload_bytes += event.payload_bytes


class PipelineTracer(Tracer):
    """Span tracer for one rank of the iFDK pipeline.

    A thin :class:`repro.obs.Tracer` specialization: spans are tagged with
    the owning rank and their stage name, and the Figure-4c/Table-5 views
    (:meth:`events`, :meth:`overlap_delta`) are derived from the recorded
    spans rather than kept in a parallel store.
    """

    def __init__(self, rank: int, *, clock=time.perf_counter):
        super().__init__(clock=clock)
        self.rank = rank

    # ------------------------------------------------------------------ #
    def span(
        self,
        stage: str,
        payload_bytes: int = 0,
        *,
        parent: Optional[int] = None,
        **attrs: Any,
    ):
        """Context manager timing one unit of work of ``stage``."""
        attrs.setdefault("rank", self.rank)
        attrs.setdefault("stage", stage)
        return super().span(stage, payload_bytes, parent=parent, **attrs)

    def record(
        self,
        stage: str,
        start: float,
        stop: float,
        payload_bytes: int = 0,
        *,
        parent: Optional[int] = None,
        **attrs: Any,
    ):
        attrs.setdefault("rank", self.rank)
        attrs.setdefault("stage", stage)
        return super().record(
            stage, start, stop, payload_bytes, parent=parent, **attrs
        )

    # ------------------------------------------------------------------ #
    def events(self) -> List[TraceEvent]:
        """The historical per-rank event view, derived from the spans."""
        return [
            TraceEvent(
                rank=int(span.attrs.get("rank", self.rank)),
                stage=span.name,
                start=span.start,
                stop=span.stop,
                payload_bytes=span.payload_bytes,
            )
            for span in self.spans()
        ]

    def overlap_delta(self, stages: Optional[List[str]] = None) -> float:
        """The paper's δ: summed stage time divided by elapsed wall time.

        δ > 1 means the stages genuinely overlapped (Table 5's criterion for
        the pipelining being effective).
        """
        events = self.events()
        if stages is not None:
            events = [e for e in events if e.stage in stages]
        if not events:
            return 0.0
        total = sum(e.duration for e in events)
        wall = max(e.stop for e in events) - min(e.start for e in events)
        return total / wall if wall > 0 else float("inf")


def summarize_events(events: List[TraceEvent]) -> Dict[str, StageSummary]:
    """Aggregate a list of events into per-stage summaries."""
    summaries: Dict[str, StageSummary] = {}
    for event in events:
        summaries.setdefault(event.stage, StageSummary(stage=event.stage)).add(event)
    return summaries
