"""Per-rank runtime of the iFDK pipeline (Section 4.1.3 / Figure 4).

Each MPI rank runs three cooperating threads joined by circular buffers:

* **Filtering thread** — loads this rank's projections from the PFS and
  runs the filtering stage (Algorithm 1) on the CPU, pushing filtered
  projections into the first buffer.
* **Main thread** — pops filtered projections, shares them with the other
  ranks of its *column* through ``MPI_Allgather`` (one projection per rank
  per round), and pushes the gathered batch into the second buffer.  After
  the last round it waits for the BP thread, copies the sub-volume "device
  to host", reduces it across its *row* with ``MPI_Reduce`` and (on the row
  root) stores the slab to the PFS.
* **BP thread** — pops gathered batches, stages them "host to device" and
  back-projects them into this rank's Z slab with the selected kernel
  (Algorithm 4 by default).

The real paper offloads the BP thread's work to a physical GPU; here the
numerics run on the CPU while the :class:`~repro.gpusim.memory.DeviceMemoryPool`
enforces the V100 capacity constraint and the PCIe/collective cost models
record what the transfers would have cost at scale.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.backprojection import BackProjector
from ..core.filtering import FilteringStage
from ..core.types import DEFAULT_DTYPE
from ..gpusim.kernels import get_kernel
from ..gpusim.memory import DeviceMemoryPool
from ..gpusim.transfer import PCIeModel
from ..mpi.communicator import SimCommunicator
from ..mpi.datatypes import ReduceOp
from ..mpi.grid import RankGrid2D
from ..pfs.projection_io import read_projection_subset
from ..pfs.storage import SimulatedPFS
from ..pfs.volume_io import write_volume_slices
from .circular_buffer import CircularBuffer
from .config import IFDKConfig
from .decomposition import Decomposition, RankAssignment
from .tracing import PipelineTracer, TraceEvent

__all__ = ["RankResult", "run_rank"]


@dataclass
class RankResult:
    """What one rank reports back after the reconstruction."""

    rank: int
    row: int
    column: int
    projections_filtered: int
    projections_backprojected: int
    stored_slab: Optional[Tuple[int, int]]
    stage_seconds: Dict[str, float]
    overlap_delta: float
    modelled_seconds: Dict[str, float]
    events: List[TraceEvent] = field(default_factory=list)
    device_peak_bytes: int = 0


def _filtering_thread(
    config: IFDKConfig,
    assignment: RankAssignment,
    pfs: SimulatedPFS,
    out_buffer: CircularBuffer,
    tracer: PipelineTracer,
    errors: List[BaseException],
) -> None:
    """Load + filter this rank's own projections, in AllGather-round order."""
    try:
        stage = FilteringStage(
            config.geometry, config.ramp_filter, backend=config.compute_backend()
        )
        for index in assignment.owned_projections:
            with tracer.span("load", payload_bytes=config.geometry.nu * config.geometry.nv * 4):
                stack = read_projection_subset(pfs, [index])
            with tracer.span("filter"):
                filtered = stage(stack.data[0])
            out_buffer.put((index, float(stack.angles[0]), filtered))
    except BaseException as exc:  # noqa: BLE001 - surfaced by run_rank
        errors.append(exc)
    finally:
        out_buffer.close()


def _bp_thread(
    config: IFDKConfig,
    assignment: RankAssignment,
    in_buffer: CircularBuffer,
    tracer: PipelineTracer,
    errors: List[BaseException],
    result_holder: Dict[str, np.ndarray],
) -> None:
    """Back-project gathered batches into this rank's Z slab."""
    try:
        kernel = get_kernel(config.kernel)
        projector = BackProjector(
            config.geometry,
            algorithm=kernel.algorithm,
            z_range=assignment.z_range,
            backend=config.compute_backend(),
        )
        for angles, batch in in_buffer:
            with tracer.span("h2d", payload_bytes=int(batch.nbytes)):
                staged = np.ascontiguousarray(batch, dtype=DEFAULT_DTYPE)
            with tracer.span("backprojection", payload_bytes=int(batch.nbytes)):
                projector.accumulate(staged, angles)
        result_holder["subvolume"] = projector.volume().data
        result_holder["projections"] = projector.projections_processed
    except BaseException as exc:  # noqa: BLE001
        errors.append(exc)
        result_holder.setdefault(
            "subvolume",
            np.zeros(
                (
                    assignment.z_range[1] - assignment.z_range[0],
                    config.geometry.ny,
                    config.geometry.nx,
                ),
                dtype=DEFAULT_DTYPE,
            ),
        )
        result_holder.setdefault("projections", 0)


def run_rank(
    comm: SimCommunicator,
    config: IFDKConfig,
    pfs: SimulatedPFS,
    *,
    volume_name: str = "reconstruction",
    pcie: Optional[PCIeModel] = None,
    buffer_capacity: int = 8,
) -> RankResult:
    """The SPMD program of one iFDK rank (to be launched by ``run_spmd``)."""
    if comm.size != config.n_ranks:
        raise ValueError(
            f"communicator has {comm.size} ranks but the configuration needs "
            f"{config.n_ranks} (R={config.rows}, C={config.columns})"
        )
    config.validate_device_memory()
    decomposition = Decomposition(config)
    assignment = decomposition.assignment(comm.rank)
    grid = RankGrid2D(rows=config.rows, columns=config.columns)
    position, column_comm, row_comm = grid.split(comm)
    assert (position.row, position.column) == (assignment.row, assignment.column)

    pcie = pcie or PCIeModel(device=config.device, gpus_per_node=config.gpus_per_node)
    tracer = PipelineTracer(rank=comm.rank)
    geometry = config.geometry

    # Device-memory accounting for this rank (Section 4.1.5 constraint).
    pool = DeviceMemoryPool(config.device, materialize=False)
    pool.allocate(
        "subvolume", (config.slab_thickness, geometry.ny, geometry.nx), np.float32
    )
    pool.allocate(
        "projection_batch", (config.projection_batch, geometry.nv, geometry.nu), np.float32
    )

    filtered_buffer: CircularBuffer = CircularBuffer(buffer_capacity)
    gathered_buffer: CircularBuffer = CircularBuffer(buffer_capacity)
    errors: List[BaseException] = []
    bp_output: Dict[str, np.ndarray] = {}

    filter_thread = threading.Thread(
        target=_filtering_thread,
        args=(config, assignment, pfs, filtered_buffer, tracer, errors),
        name=f"rank{comm.rank}-filter",
    )
    bp_thread = threading.Thread(
        target=_bp_thread,
        args=(config, assignment, gathered_buffer, tracer, errors, bp_output),
        name=f"rank{comm.rank}-bp",
    )
    filter_thread.start()
    bp_thread.start()

    # ------------------------------------------------------------------ #
    # Main thread: AllGather rounds (Figure 4a)
    # ------------------------------------------------------------------ #
    projection_shape = (geometry.nv, geometry.nu)
    angle_send = np.zeros(1, dtype=np.float64)
    rounds = config.projections_per_rank
    modelled = {"allgather": 0.0, "h2d": 0.0}
    try:
        for round_index in range(rounds):
            item = filtered_buffer.get()
            if item is None:
                raise RuntimeError(
                    "filtering thread ended before producing all projections"
                )
            index, angle, filtered = item
            angle_send[0] = angle
            with tracer.span("allgather", payload_bytes=int(filtered.nbytes) * config.rows):
                gathered = column_comm.Allgather(np.ascontiguousarray(filtered))
                gathered_angles = column_comm.Allgather(angle_send)[:, 0]
            expected = decomposition.allgather_round_indices(
                assignment.column, round_index
            )
            if index != expected[assignment.row]:
                raise RuntimeError(
                    f"rank {comm.rank} filtered projection {index} but round "
                    f"{round_index} expected {expected[assignment.row]}"
                )
            gathered_buffer.put((gathered_angles.copy(), gathered))
    except BaseException as exc:  # noqa: BLE001
        errors.append(exc)
    finally:
        gathered_buffer.close()

    filter_thread.join()
    bp_thread.join()
    if errors:
        raise errors[0]

    # ------------------------------------------------------------------ #
    # Post-processing: D2H, row Reduce, store (Figure 4b)
    # ------------------------------------------------------------------ #
    subvolume = bp_output["subvolume"]
    with tracer.span("d2h", payload_bytes=int(subvolume.nbytes)):
        host_subvolume = np.ascontiguousarray(subvolume)
    modelled["d2h"] = pcie.transfer_seconds(int(subvolume.nbytes))

    with tracer.span("reduce", payload_bytes=int(subvolume.nbytes)):
        reduced = row_comm.Reduce(host_subvolume, op=ReduceOp.SUM, root=0)

    stored_slab: Optional[Tuple[int, int]] = None
    if row_comm.rank == 0:
        with tracer.span("store", payload_bytes=int(host_subvolume.nbytes)):
            modelled["store"] = write_volume_slices(
                pfs,
                volume_name,
                reduced,
                z_offset=assignment.z_range[0],
                slices_per_file=1,
            )
        stored_slab = assignment.z_range

    comm.Barrier()

    stage_seconds = {
        stage: tracer.stage_seconds(stage)
        for stage in ("load", "filter", "allgather", "h2d", "backprojection", "d2h", "reduce", "store")
    }
    return RankResult(
        rank=comm.rank,
        row=assignment.row,
        column=assignment.column,
        projections_filtered=len(assignment.owned_projections),
        projections_backprojected=int(bp_output.get("projections", 0)),
        stored_slab=stored_slab,
        stage_seconds=stage_seconds,
        overlap_delta=tracer.overlap_delta(
            ["load", "filter", "allgather", "backprojection", "h2d"]
        ),
        modelled_seconds=modelled,
        events=tracer.events(),
        device_peak_bytes=pool.peak_bytes,
    )
