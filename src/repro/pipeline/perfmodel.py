"""The iFDK performance model (Section 4.2, Equations 8-19).

The model predicts the end-to-end runtime of a distributed reconstruction
from a handful of micro-benchmark constants (Section 4.2.1):

==============  =====================================================  =========
Symbol          Meaning                                                Unit
==============  =====================================================  =========
``BW_load``     aggregate PFS read bandwidth                           bytes/s
``BW_store``    aggregate PFS write bandwidth                          bytes/s
``TH_flt``      filtering throughput of one node                       proj/s
``TH_bp``       back-projection throughput of one GPU                  proj/s
``TH_allgather``AllGather operations per second within a column        1/s
``TH_reduce``   Reduce bandwidth within a row                          bytes/s
``TH_trans``    device-side volume transpose bandwidth                 bytes/s
``BW_PCIe``     host<->device bandwidth of one PCIe link               bytes/s
``N_PCIe``      PCIe links per node                                    —
==============  =====================================================  =========

``ABCI_MICROBENCHMARKS`` reproduces the constants the paper publishes for
its testbed; ``measured_microbenchmarks`` derives the same constants from
this machine (used when the functional simulation is compared against the
model).  The individual terms implement Equations 8-16 verbatim;
``T_compute`` (Eq. 17), ``T_post`` (Eq. 18) and ``T_runtime`` (Eq. 19)
combine them exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..core.types import ReconstructionProblem
from ..gpusim.costmodel import BackprojectionCostModel
from ..gpusim.device import DeviceSpec, TESLA_V100
from ..gpusim.kernels import get_kernel
from ..mpi.costmodel import ABCI_COLLECTIVES, CollectiveCostModel

__all__ = [
    "MicroBenchmarks",
    "ABCI_MICROBENCHMARKS",
    "PerformanceBreakdown",
    "IFDKPerformanceModel",
]

_FLOAT_BYTES = 4


@dataclass(frozen=True)
class MicroBenchmarks:
    """The measured constants of Section 4.2.1 for one system."""

    bw_load: float
    bw_store: float
    th_flt: float
    th_bp: float
    th_allgather: float
    th_reduce: float
    th_trans: float
    bw_pcie: float
    n_pcie: int
    gpus_per_node: int = 4

    def __post_init__(self) -> None:
        for name in (
            "bw_load",
            "bw_store",
            "th_flt",
            "th_bp",
            "th_allgather",
            "th_reduce",
            "th_trans",
            "bw_pcie",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.n_pcie <= 0 or self.gpus_per_node <= 0:
            raise ValueError("n_pcie and gpus_per_node must be positive")

    def scaled(self, **kwargs) -> "MicroBenchmarks":
        """Return a copy with some constants replaced (what-if studies)."""
        return replace(self, **kwargs)


#: Constants of the ABCI testbed as published in the paper: GPFS write
#: 28.5 GB/s (Section 5.3.3), PCIe 11.9 GB/s per link with two links per
#: node, one AllGather of a 16 MB projection across a column in ≈0.25 s,
#: an 8 GB row Reduce in ≈2.7 s, ≈366 projections/s/node filtering and a
#: back-projection rate equivalent to ≈190 GUPS on an 8 GB sub-volume
#: (both implied by Table 5).
ABCI_MICROBENCHMARKS = MicroBenchmarks(
    # GPFS aggregate read bandwidth.  The paper does not publish BW_load
    # directly (T_load is folded into T_flt in Table 5); 120 GB/s is the IOR
    # read rate consistent with T_compute staying flat in the weak-scaling
    # experiments up to Np = 32k projections (Figure 5c).
    bw_load=120.0e9,
    bw_store=28.5e9,
    th_flt=366.0,
    th_bp=95.0,
    th_allgather=4.07,
    th_reduce=3.0e9,
    th_trans=220.0e9,
    # Effective per-link PCIe rate.  Nvidia's bandwidthTest reports 11.9 GB/s
    # unidirectionally, but the paper's own projected T_D2H (32 GB over dual
    # links in ~2.6 s, Section 5.3.3) implies ~6.2 GB/s sustained per link
    # once both directions and the two-GPUs-per-switch contention are active;
    # using the effective rate keeps Eq. 11/14 consistent with Figure 5.
    bw_pcie=6.2e9,
    n_pcie=2,
    gpus_per_node=4,
)


@dataclass(frozen=True)
class PerformanceBreakdown:
    """All terms of the model for one configuration (seconds)."""

    t_load: float
    t_flt: float
    t_allgather: float
    t_h2d: float
    t_bp: float
    t_trans: float
    t_d2h: float
    t_reduce: float
    t_store: float

    @property
    def t_compute(self) -> float:
        """Equation 17: the overlapped phase is bounded by its slowest member."""
        return max(self.t_load, self.t_flt, self.t_allgather, self.t_bp)

    @property
    def t_post(self) -> float:
        """Equation 18 (with the negligible transpose kept explicit)."""
        return self.t_trans + self.t_d2h + self.t_reduce + self.t_store

    @property
    def t_runtime(self) -> float:
        """Equation 19: end-to-end time including I/O."""
        return self.t_compute + self.t_post

    @property
    def delta(self) -> float:
        """Table 5's δ = (T_flt + T_allgather + T_bp) / T_compute."""
        compute = self.t_compute
        if compute == 0:
            return float("inf")
        return (self.t_flt + self.t_allgather + self.t_bp) / compute

    def as_dict(self) -> Dict[str, float]:
        return {
            "t_load": self.t_load,
            "t_flt": self.t_flt,
            "t_allgather": self.t_allgather,
            "t_h2d": self.t_h2d,
            "t_bp": self.t_bp,
            "t_trans": self.t_trans,
            "t_d2h": self.t_d2h,
            "t_reduce": self.t_reduce,
            "t_store": self.t_store,
            "t_compute": self.t_compute,
            "t_post": self.t_post,
            "t_runtime": self.t_runtime,
            "delta": self.delta,
        }


class IFDKPerformanceModel:
    """Evaluate Equations 8-19 for a problem and an (R, C) rank grid.

    Parameters
    ----------
    micro:
        Micro-benchmark constants (Section 4.2.1).
    collectives:
        Optional collective cost model.  When given (the default), the
        AllGather term is computed from the actual message size and column
        height ``R`` — important because a 256-rank column (8K problems)
        pays ~8x more per AllGather than the 32-rank column the scalar
        ``TH_AllGather`` constant was measured on.  Pass ``None`` to use the
        scalar constant exactly as Equation 10 is written.
    """

    def __init__(
        self,
        micro: MicroBenchmarks = ABCI_MICROBENCHMARKS,
        collectives: Optional[CollectiveCostModel] = ABCI_COLLECTIVES,
    ):
        self.micro = micro
        self.collectives = collectives

    # ------------------------------------------------------------------ #
    # Individual terms (Equations 8-16)
    # ------------------------------------------------------------------ #
    def t_load(self, problem: ReconstructionProblem) -> float:
        """Eq. 8: read all projections from the PFS."""
        return _FLOAT_BYTES * problem.input_pixels / self.micro.bw_load

    def t_flt(self, problem: ReconstructionProblem, rows: int, columns: int) -> float:
        """Eq. 9: filtering, spread over the nodes."""
        return (
            problem.np_
            * self.micro.gpus_per_node
            / (columns * rows * self.micro.th_flt)
        )

    def t_allgather(self, problem: ReconstructionProblem, rows: int, columns: int) -> float:
        """Eq. 10: one AllGather per projection handled by each rank.

        With a collective model configured, ``TH_AllGather`` is derived from
        the projection size and the column height ``R``; otherwise the scalar
        constant is used verbatim.
        """
        operations = problem.np_ / (columns * rows)
        if self.collectives is not None:
            projection_bytes = _FLOAT_BYTES * problem.nu * problem.nv
            return operations * self.collectives.allgather_seconds(projection_bytes, rows)
        return operations / self.micro.th_allgather

    def t_h2d(self, problem: ReconstructionProblem, columns: int) -> float:
        """Eq. 11: push each column's filtered projections to the GPUs."""
        return (
            _FLOAT_BYTES
            * self.micro.gpus_per_node
            * problem.nu
            * problem.nv
            * problem.np_
            / (columns * self.micro.bw_pcie * self.micro.n_pcie)
        )

    def t_bp(self, problem: ReconstructionProblem, rows: int, columns: int) -> float:
        """Eq. 12: back-projection time (includes the H2D staging)."""
        return self.t_h2d(problem, columns) + problem.np_ / (columns * self.micro.th_bp)

    def t_trans(self, problem: ReconstructionProblem, rows: int) -> float:
        """Eq. 13: transpose the sub-volume back to the i-major layout."""
        return _FLOAT_BYTES * problem.output_voxels / (rows * self.micro.th_trans)

    def t_d2h(self, problem: ReconstructionProblem, rows: int) -> float:
        """Eq. 14: copy every sub-volume from device to host."""
        return (
            _FLOAT_BYTES
            * self.micro.gpus_per_node
            * problem.output_voxels
            / (rows * self.micro.bw_pcie * self.micro.n_pcie)
        )

    def t_reduce(self, problem: ReconstructionProblem, rows: int, columns: int) -> float:
        """Eq. 15: reduce the partial sub-volumes across each row.

        With ``C = 1`` there is nothing to reduce (the paper reports "N/A").
        """
        if columns == 1:
            return 0.0
        return _FLOAT_BYTES * problem.output_voxels / (rows * self.micro.th_reduce)

    def t_store(self, problem: ReconstructionProblem) -> float:
        """Eq. 16: store the output volume to the PFS."""
        return _FLOAT_BYTES * problem.output_voxels / self.micro.bw_store

    # ------------------------------------------------------------------ #
    def breakdown(
        self, problem: ReconstructionProblem, rows: int, columns: int
    ) -> PerformanceBreakdown:
        """All model terms for an ``R x C`` grid (Equations 8-19)."""
        if rows <= 0 or columns <= 0:
            raise ValueError("rows and columns must be positive")
        return PerformanceBreakdown(
            t_load=self.t_load(problem),
            t_flt=self.t_flt(problem, rows, columns),
            t_allgather=self.t_allgather(problem, rows, columns),
            t_h2d=self.t_h2d(problem, columns),
            t_bp=self.t_bp(problem, rows, columns),
            t_trans=self.t_trans(problem, rows),
            t_d2h=self.t_d2h(problem, rows),
            t_reduce=self.t_reduce(problem, rows, columns),
            t_store=self.t_store(problem),
        )

    def runtime(self, problem: ReconstructionProblem, rows: int, columns: int) -> float:
        """Eq. 19 for one configuration."""
        return self.breakdown(problem, rows, columns).t_runtime

    def gups(self, problem: ReconstructionProblem, rows: int, columns: int) -> float:
        """End-to-end GUPS (the Figure 6 metric) predicted by the model."""
        return problem.gups(self.runtime(problem, rows, columns))

    # ------------------------------------------------------------------ #
    @classmethod
    def from_components(
        cls,
        *,
        device: DeviceSpec = TESLA_V100,
        kernel: str = "L1-Tran",
        problem: Optional[ReconstructionProblem] = None,
        subvolume_bytes: int = 8 * 1024**3,
        collectives: CollectiveCostModel = ABCI_COLLECTIVES,
        base: MicroBenchmarks = ABCI_MICROBENCHMARKS,
    ) -> "IFDKPerformanceModel":
        """Build a model whose ``TH_bp``/``TH_allgather``/``TH_reduce`` come
        from the GPU and collective cost models instead of published numbers.

        This ties the three substrate models together: the GPU cost model
        supplies the per-GPU back-projection rate for the kernel actually
        selected, and the collective model supplies the AllGather/Reduce
        throughput for the actual message sizes.
        """
        micro = base
        if problem is not None:
            # TH_bp: projections/s for a sub-volume of `subvolume_bytes`.
            sub_voxels = max(1, subvolume_bytes // _FLOAT_BYTES)
            sub_nz = max(1, sub_voxels // (problem.nx * problem.ny))
            sub_problem = ReconstructionProblem(
                nu=problem.nu, nv=problem.nv, np_=problem.np_,
                nx=problem.nx, ny=problem.ny, nz=sub_nz,
            )
            cost = BackprojectionCostModel(device)
            updates_per_second = cost.throughput_updates_per_second(
                get_kernel(kernel), sub_problem
            )
            th_bp = updates_per_second / (problem.nx * problem.ny * sub_nz)
            projection_bytes = problem.nu * problem.nv * _FLOAT_BYTES
            th_allgather = collectives.allgather_throughput(projection_bytes, 32)
            th_reduce = collectives.reduce_throughput_bytes(subvolume_bytes, 8)
            micro = base.scaled(
                th_bp=th_bp,
                th_allgather=th_allgather,
                th_reduce=th_reduce,
                bw_pcie=device.pcie_bandwidth,
            )
        return cls(micro)
