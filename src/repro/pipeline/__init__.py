"""The iFDK distributed framework (Section 4 of the paper)."""

from .circular_buffer import BufferClosed, CircularBuffer
from .config import IFDKConfig, choose_grid, subvolume_bytes
from .decomposition import Decomposition, RankAssignment
from .ifdk import IFDKFramework, IFDKRunResult
from .perfmodel import (
    ABCI_MICROBENCHMARKS,
    IFDKPerformanceModel,
    MicroBenchmarks,
    PerformanceBreakdown,
)
from .rank_runtime import RankResult, run_rank
from .tracing import PipelineTracer, StageSummary, TraceEvent, summarize_events

__all__ = [
    "ABCI_MICROBENCHMARKS",
    "BufferClosed",
    "CircularBuffer",
    "Decomposition",
    "IFDKConfig",
    "IFDKFramework",
    "IFDKPerformanceModel",
    "IFDKRunResult",
    "MicroBenchmarks",
    "PerformanceBreakdown",
    "PipelineTracer",
    "RankAssignment",
    "RankResult",
    "StageSummary",
    "TraceEvent",
    "choose_grid",
    "run_rank",
    "subvolume_bytes",
    "summarize_events",
]
