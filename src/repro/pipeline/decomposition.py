"""Problem decomposition onto the 2-D rank grid (Section 4.1.1, Figure 3).

* Columns partition the **input**: column ``c`` owns the contiguous block of
  ``Np / C`` projections starting at ``c · Np/C``.  Within a column the
  block is dealt round-robin to the ``R`` ranks, so that AllGather round
  ``t`` assembles the ``R`` consecutive projections
  ``[block_start + t·R, block_start + (t+1)·R)`` — one from each rank.
* Rows partition the **output**: row ``r`` owns the Z slab
  ``[r · Nz/R, (r+1) · Nz/R)`` of the volume.

Keeping this mapping in one place means the rank runtime, the performance
model and the tests all agree on who owns what.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .config import IFDKConfig

__all__ = ["RankAssignment", "Decomposition"]


@dataclass(frozen=True)
class RankAssignment:
    """Everything one rank needs to know about its share of the problem."""

    global_rank: int
    row: int
    column: int
    owned_projections: Tuple[int, ...]
    column_projections: Tuple[int, ...]
    z_range: Tuple[int, int]

    @property
    def n_owned(self) -> int:
        return len(self.owned_projections)


class Decomposition:
    """2-D decomposition of one :class:`~repro.pipeline.config.IFDKConfig`."""

    def __init__(self, config: IFDKConfig):
        self.config = config

    # ------------------------------------------------------------------ #
    def column_block(self, column: int) -> Tuple[int, int]:
        """Global projection index range ``[start, stop)`` of one column."""
        per_column = self.config.projections_per_column
        if not 0 <= column < self.config.columns:
            raise ValueError(f"column {column} outside grid")
        return column * per_column, (column + 1) * per_column

    def projections_for_rank(self, row: int, column: int) -> List[int]:
        """Global indices loaded and filtered by the rank at (row, column)."""
        start, stop = self.column_block(column)
        if not 0 <= row < self.config.rows:
            raise ValueError(f"row {row} outside grid")
        return list(range(start + row, stop, self.config.rows))

    def allgather_round_indices(self, column: int, round_index: int) -> List[int]:
        """Global indices assembled by AllGather round ``round_index`` of a column."""
        start, stop = self.column_block(column)
        rows = self.config.rows
        lo = start + round_index * rows
        if lo >= stop:
            raise ValueError(
                f"round {round_index} exceeds the {self.config.projections_per_rank} "
                "AllGather rounds of this configuration"
            )
        return list(range(lo, min(lo + rows, stop)))

    def z_range_for_row(self, row: int) -> Tuple[int, int]:
        """Z slab ``[z_start, z_stop)`` owned by one row of the grid."""
        if not 0 <= row < self.config.rows:
            raise ValueError(f"row {row} outside grid")
        thickness = self.config.slab_thickness
        return row * thickness, (row + 1) * thickness

    # ------------------------------------------------------------------ #
    def assignment(self, global_rank: int) -> RankAssignment:
        """Full assignment of one global rank (column-major placement)."""
        rows = self.config.rows
        if not 0 <= global_rank < self.config.n_ranks:
            raise ValueError(f"rank {global_rank} outside grid of {self.config.n_ranks}")
        row = global_rank % rows
        column = global_rank // rows
        start, stop = self.column_block(column)
        return RankAssignment(
            global_rank=global_rank,
            row=row,
            column=column,
            owned_projections=tuple(self.projections_for_rank(row, column)),
            column_projections=tuple(range(start, stop)),
            z_range=self.z_range_for_row(row),
        )

    def all_assignments(self) -> List[RankAssignment]:
        """Assignments of every rank, indexed by global rank."""
        return [self.assignment(r) for r in range(self.config.n_ranks)]

    # ------------------------------------------------------------------ #
    def verify_complete(self) -> None:
        """Sanity check: the decomposition covers everything exactly once.

        * every projection index is owned by exactly one rank,
        * every Z slice is produced by exactly one row,
        * every column sees exactly ``Np / C`` projections.
        """
        seen = np.zeros(self.config.geometry.np_, dtype=np.int64)
        for assignment in self.all_assignments():
            for index in assignment.owned_projections:
                seen[index] += 1
        if not np.all(seen == 1):
            raise AssertionError("projection ownership is not a partition")
        covered = np.zeros(self.config.geometry.nz, dtype=np.int64)
        for row in range(self.config.rows):
            z0, z1 = self.z_range_for_row(row)
            covered[z0:z1] += 1
        if not np.all(covered == 1):
            raise AssertionError("Z slabs do not partition the volume")
