"""iFDK framework configuration (the parameters of Table 2).

The central configuration object couples the acquisition geometry with the
2-D rank grid (``R`` rows × ``C`` columns), the per-node GPU count and the
kernel/filter choices.  :func:`choose_grid` implements the ``R`` selection
policy of Section 4.1.5: minimize ``R`` (and therefore maximize ``C``)
subject to the sub-volume fitting into device memory next to a
32-projection staging batch, with ``R`` kept a power of two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.geometry import CBCTGeometry
from ..core.types import ReconstructionProblem
from ..gpusim.device import DeviceSpec, TESLA_V100
from ..gpusim.kernels import DEFAULT_PROJECTION_BATCH

__all__ = ["IFDKConfig", "choose_grid", "subvolume_bytes"]


def subvolume_bytes(problem: ReconstructionProblem, rows: int, itemsize: int = 4) -> int:
    """Size in bytes of one row's sub-volume (``N_sub_vol`` in Section 4.1.5)."""
    if rows <= 0:
        raise ValueError("rows must be positive")
    return problem.output_bytes(itemsize) // rows


def choose_grid(
    problem: ReconstructionProblem,
    n_gpus: int,
    *,
    device: DeviceSpec = TESLA_V100,
    projection_batch: int = DEFAULT_PROJECTION_BATCH,
    itemsize: int = 4,
) -> Tuple[int, int]:
    """Select ``(R, C)`` for ``n_gpus`` ranks following Section 4.1.5.

    ``R`` is the smallest power of two such that

    ``sizeof(float)·(Nx·Ny·Nz / R + Nu·Nv·N_batch) <= N_gpu_mem_size``

    and ``R`` divides ``n_gpus``; ``C = n_gpus / R``.  Raises when even
    ``R = n_gpus`` cannot satisfy the memory constraint.
    """
    if n_gpus <= 0:
        raise ValueError("n_gpus must be positive")
    batch_bytes = problem.nu * problem.nv * projection_batch * itemsize
    if batch_bytes >= device.global_memory_bytes:
        raise ValueError(
            "the projection staging batch alone exceeds device memory; "
            "reduce the batch size or use a larger device"
        )
    r = 1
    while r <= n_gpus:
        if n_gpus % r == 0:
            required = problem.output_bytes(itemsize) // r + batch_bytes
            if required <= device.global_memory_bytes:
                return r, n_gpus // r
        r *= 2
    raise ValueError(
        f"no feasible R <= {n_gpus}: the output volume "
        f"({problem.output_bytes(itemsize) / 2**30:.1f} GiB) does not fit even "
        f"when split across all {n_gpus} GPUs of {device.name}"
    )


@dataclass(frozen=True)
class IFDKConfig:
    """Complete configuration of one distributed reconstruction.

    Parameters
    ----------
    geometry:
        Acquisition geometry; also defines the output volume.
    rows, columns:
        ``R`` and ``C`` of the 2-D rank grid (Table 2).
    gpus_per_node:
        ``N_gpu_per_node`` (ABCI has 4); one MPI rank is launched per GPU.
    kernel:
        Name of the back-projection kernel variant (Table 3); ``L1-Tran`` is
        the paper's proposed kernel and the default.
    ramp_filter:
        Ramp-filter window used by the filtering stage.
    backend:
        Name of the :mod:`repro.backends` compute backend every rank uses
        for its filtering and back-projection numerics.
    workers:
        Optional worker-thread count for the ``parallel`` backend.  All
        ranks share one resolved backend instance — and therefore one
        worker pool — so ``R·C`` ranks never multiply the thread count.
    projection_batch:
        Projections staged per device batch (``N_batch`` = 32 in Listing 1).
    device:
        GPU model each rank is assumed to own (memory-capacity checks).
    """

    geometry: CBCTGeometry
    rows: int
    columns: int
    gpus_per_node: int = 4
    kernel: str = "L1-Tran"
    ramp_filter: str = "ram-lak"
    backend: str = "reference"
    workers: Optional[int] = None
    projection_batch: int = DEFAULT_PROJECTION_BATCH
    device: DeviceSpec = TESLA_V100

    def __post_init__(self) -> None:
        from ..backends import resolve_backend  # late import: backends import core

        # Resolve once (raises ValueError on unknown names / bad workers);
        # the frozen dataclass stashes the instance outside its fields.
        object.__setattr__(
            self,
            "_compute_backend",
            resolve_backend(self.backend, workers=self.workers),
        )
        if self.rows <= 0 or self.columns <= 0:
            raise ValueError("rows and columns must be positive")
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")
        if self.projection_batch <= 0:
            raise ValueError("projection_batch must be positive")
        geometry = self.geometry
        if geometry.np_ % (self.rows * self.columns) != 0:
            raise ValueError(
                f"Np = {geometry.np_} must be divisible by R*C = "
                f"{self.rows * self.columns} so every rank loads the same number "
                "of projections (Equation 5)"
            )
        if geometry.nz % self.rows != 0:
            raise ValueError(
                f"Nz = {geometry.nz} must be divisible by R = {self.rows} so the "
                "volume decomposes into equal Z slabs"
            )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_plan(cls, plan, **overrides) -> "IFDKConfig":
        """Build the distributed configuration described by a plan.

        The plan must target ``ifdk`` semantics: ``rows`` and ``columns``
        set, an ideal (full-scan) scenario.  ``overrides`` pass through to
        the constructor for knobs the declarative plan does not carry
        (``gpus_per_node``, ``kernel``, ``projection_batch``, ``device``).
        """
        if plan.rows is None or plan.columns is None:
            raise ValueError(
                "an ifdk configuration needs the plan's rows and columns"
            )
        if not plan.resolved_scenario().is_ideal:
            raise ValueError(
                f"scenario {plan.scenario!r} runs single-node; the "
                "distributed pipeline only serves the ideal full scan"
            )
        return cls(
            geometry=plan.geometry,
            rows=plan.rows,
            columns=plan.columns,
            ramp_filter=plan.ramp_filter,
            backend=plan.backend,
            workers=plan.workers,
            **overrides,
        )

    # ------------------------------------------------------------------ #
    def compute_backend(self):
        """The resolved :class:`~repro.backends.base.ComputeBackend`.

        Every rank's filtering and BP thread executes on this single
        instance; with ``workers`` set it is a dedicated
        :class:`~repro.backends.ParallelBackend` whose pool is shared by
        all ranks.
        """
        return self._compute_backend

    def close_backend(self) -> None:
        """Join the dedicated worker pool of an explicit ``workers`` count.

        A no-op for shared registry backends (``workers=None``).  Safe to
        call between reconstructions: a closed pool restarts lazily, so the
        framework closes it after every run without losing reusability.
        """
        if self.workers is not None:
            self._compute_backend.close()

    @property
    def n_ranks(self) -> int:
        """Total MPI ranks, ``N_ranks = R · C`` (Equation 4)."""
        return self.rows * self.columns

    @property
    def n_gpus(self) -> int:
        """Total GPUs, one per rank (Equation 6)."""
        return self.n_ranks

    @property
    def n_nodes(self) -> int:
        """Number of compute nodes, ``N_ranks / N_gpu_per_node`` (rounded up)."""
        return -(-self.n_ranks // self.gpus_per_node)

    @property
    def projections_per_rank(self) -> int:
        """``N_proj_per_rank = Np / (C · R)`` (Equation 5)."""
        return self.geometry.np_ // self.n_ranks

    @property
    def projections_per_column(self) -> int:
        """Projections handled by each column group, ``Np / C``."""
        return self.geometry.np_ // self.columns

    @property
    def slab_thickness(self) -> int:
        """Z slices per row's sub-volume."""
        return self.geometry.nz // self.rows

    @property
    def problem(self) -> ReconstructionProblem:
        """The reconstruction problem this configuration solves."""
        return self.geometry.problem()

    def validate_device_memory(self) -> None:
        """Enforce the Section 4.1.5 per-GPU memory constraint."""
        g = self.geometry
        required = 4 * (
            g.nx * g.ny * self.slab_thickness
            + g.nu * g.nv * self.projection_batch
        )
        if required > self.device.global_memory_bytes:
            raise ValueError(
                f"a sub-volume of {self.slab_thickness} slices plus a "
                f"{self.projection_batch}-projection batch needs "
                f"{required / 2**30:.2f} GiB, exceeding the "
                f"{self.device.global_memory_bytes / 2**30:.0f} GiB of {self.device.name}; "
                "increase R"
            )
