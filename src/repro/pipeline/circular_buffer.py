"""Bounded circular buffer joining the pipeline threads (Figure 4a).

The paper's three per-rank threads "execute independently and exchange data
with each other using circular buffers" (Section 4.1.3).  This is a classic
bounded producer/consumer ring: the producer blocks when the buffer is full
(back-pressure keeps host memory bounded), the consumer blocks when it is
empty, and the producer signals completion by closing the buffer.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Generic, Iterator, Optional, TypeVar

__all__ = ["BufferClosed", "CircularBuffer"]

T = TypeVar("T")


class BufferClosed(RuntimeError):
    """Raised when putting into a buffer that has been closed."""


class CircularBuffer(Generic[T]):
    """A bounded, thread-safe FIFO with close semantics.

    Parameters
    ----------
    capacity:
        Maximum number of items held at once; the paper sizes this so that a
        slow consumer throttles the producer instead of exhausting memory.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._items: Deque[T] = deque()
        self._closed = False
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self.total_put = 0
        self.total_got = 0
        self.high_watermark = 0

    # ------------------------------------------------------------------ #
    def put(self, item: T, timeout: Optional[float] = None) -> None:
        """Append an item, blocking while the buffer is full."""
        with self._not_full:
            if self._closed:
                raise BufferClosed("cannot put into a closed buffer")
            while len(self._items) >= self.capacity:
                if not self._not_full.wait(timeout=timeout):
                    raise TimeoutError("CircularBuffer.put timed out")
                if self._closed:
                    raise BufferClosed("buffer closed while waiting to put")
            self._items.append(item)
            self.total_put += 1
            self.high_watermark = max(self.high_watermark, len(self._items))
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[T]:
        """Pop the oldest item; returns ``None`` once closed and drained."""
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    raise TimeoutError("CircularBuffer.get timed out")
            item = self._items.popleft()
            self.total_got += 1
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Mark the stream as finished; readers drain the remainder then get ``None``."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[T]:
        """Iterate until the buffer is closed and drained."""
        while True:
            item = self.get()
            if item is None:
                return
            yield item

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
