"""The metrics registry: counters, gauges and percentile histograms.

Where spans answer *where did the time go inside one run*, metrics answer
*what is this process doing over its lifetime*: how many jobs were
submitted, how deep the queue got, the p99 of queue wait.  A
:class:`MetricsRegistry` hands out named instruments on demand —
get-or-create, thread-safe, no registration step — and reduces them all to
one flat :meth:`~MetricsRegistry.snapshot` dictionary for reports.

The registry deliberately does **not** re-implement the service-level KPI
reductions of :class:`~repro.service.metrics.ServiceMetrics` (latency
percentiles over completed jobs, SLO attainment, GUPS): those stay derived
from the per-job records that are their source of truth.  The registry
covers what per-job records cannot — event counts and distributions
observed *while* the service runs (scheduler decisions, cache hits, queue
waits) — and a disabled registry (:data:`NULL_METRICS`) makes every
instrument a shared no-op, mirroring the tracer's strict no-op mode.
"""

from __future__ import annotations

import threading
from bisect import insort
from typing import Any, Dict, List

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0  # guarded-by: _lock

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, float]:
        return {self.name: float(self.value)}


class Gauge:
    """A point-in-time value (queue depth, pool occupancy)."""

    __slots__ = ("name", "_lock", "_value", "_max")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock
        self._max = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._max = max(self._max, self._value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {self.name: self._value, f"{self.name}_max": self._max}


class Histogram:
    """A distribution with exact linear-interpolated percentiles.

    Observations are kept sorted (``insort``), so percentiles are exact —
    the workloads this registry serves observe thousands of values, not
    millions, and exactness keeps the p50/p99 numbers testable.
    """

    __slots__ = ("name", "_lock", "_sorted", "_sum")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._sorted: List[float] = []  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            insort(self._sorted, value)
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._sorted)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / len(self._sorted) if self._sorted else float("nan")

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile ``q`` in [0, 100]; NaN if empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            values = self._sorted
            if not values:
                return float("nan")
            if len(values) == 1:
                return values[0]
            position = (q / 100.0) * (len(values) - 1)
            low = int(position)
            frac = position - low
            if low + 1 >= len(values):
                return values[-1]
            return values[low] * (1.0 - frac) + values[low + 1] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            if not self._sorted:
                return {f"{self.name}_count": 0.0}
        return {
            f"{self.name}_count": float(self.count),
            f"{self.name}_sum": self.sum,
            f"{self.name}_mean": self.mean,
            f"{self.name}_p50": self.p50,
            f"{self.name}_p99": self.p99,
            f"{self.name}_max": self.percentile(100.0),
        }


class _NullInstrument:
    """Shared stand-in for every instrument of a disabled registry."""

    __slots__ = ()
    name = "<null>"
    value = 0
    max = 0.0
    count = 0
    sum = 0.0
    mean = float("nan")
    p50 = float("nan")
    p99 = float("nan")

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002
        pass

    def set(self, value: float) -> None:  # noqa: ARG002
        pass

    def observe(self, value: float) -> None:  # noqa: ARG002
        pass

    def percentile(self, q: float) -> float:  # noqa: ARG002
        return float("nan")

    def snapshot(self) -> Dict[str, float]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    A name belongs to exactly one instrument kind; asking for the same name
    as a different kind is a programming error and raises.
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}  # guarded-by: _lock

    def _get(self, name: str, cls):
        if not self.enabled:
            return _NULL_INSTRUMENT
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name)
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, float]:
        """Every instrument reduced to one flat ``{name: value}`` dict."""
        with self._lock:
            instruments = list(self._instruments.values())
        out: Dict[str, float] = {}
        for instrument in sorted(instruments, key=lambda i: i.name):
            out.update(instrument.snapshot())
        return out


#: The process-wide disabled registry: every instrument is a shared no-op.
NULL_METRICS = MetricsRegistry(enabled=False)
