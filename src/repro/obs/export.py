"""Trace exporters: Chrome trace-event JSON, JSON-lines, summary tree.

Three renderings of one span list:

``chrome_trace`` / :func:`write_chrome_trace`
    The Chrome trace-event format (``"X"`` complete events in microseconds
    plus ``"M"`` thread-name metadata), loadable in ``chrome://tracing``
    and `Perfetto <https://ui.perfetto.dev>`__.  Span attributes land in
    each event's ``args``, so the UI shows backend/scenario/worker on
    click.
``jsonl_lines`` / :func:`write_jsonl`
    One JSON object per line — a header record first, then one record per
    span (:meth:`Span.as_record`).  This is the canonical on-disk form the
    CLI's ``--trace-out`` writes and ``repro report`` reads back.
``summary_tree``
    A human-readable tree: spans grouped by name under their parent, with
    call counts, summed seconds and payload volume.

:func:`load_trace` is the inverse of both machine formats: it sniffs
JSON-lines vs Chrome JSON and returns plain :class:`Span` records, raising
``ValueError`` (never a raw decode error) on malformed input so the CLI's
exit-2 convention holds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .tracer import Span, Tracer

__all__ = [
    "EXPORT_FORMATS",
    "chrome_trace",
    "jsonl_lines",
    "load_trace",
    "summary_tree",
    "trace_format_for",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]

#: Formats `repro report --format` (and write_trace) accept.
EXPORT_FORMATS = ("summary", "chrome", "jsonl")

JSONL_HEADER = {"format": "repro-trace", "version": 1}


def _spans_of(source) -> List[Span]:
    """Accept a Tracer or an iterable of spans."""
    if isinstance(source, Tracer):
        return source.spans()
    return list(source)


# ---------------------------------------------------------------------- #
# Chrome trace-event JSON
# ---------------------------------------------------------------------- #
def chrome_trace(source) -> Dict[str, Any]:
    """Render spans as a Chrome trace-event document (dict, JSON-ready)."""
    spans = _spans_of(source)
    threads = sorted({span.thread for span in spans})
    tid_of = {name: tid for tid, name in enumerate(threads)}
    events: List[Dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": name or f"thread-{tid}"},
        }
        for name, tid in sorted(tid_of.items(), key=lambda item: item[1])
    ]
    for span in spans:
        args: Dict[str, Any] = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.payload_bytes:
            args["payload_bytes"] = span.payload_bytes
        events.append(
            {
                "name": span.name,
                "cat": str(span.attrs.get("stage", span.name)),
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 0,
                "tid": tid_of[span.thread],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(source, path) -> Path:
    """Write the Chrome trace-event JSON document to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(source), indent=2) + "\n")
    return path


def _spans_from_chrome(payload: Dict[str, Any]) -> List[Span]:
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("Chrome trace must carry a 'traceEvents' array")
    tid_names: Dict[Any, str] = {}
    for event in events:
        if isinstance(event, dict) and event.get("ph") == "M" \
                and event.get("name") == "thread_name":
            tid_names[event.get("tid")] = str(event.get("args", {}).get("name", ""))
    spans: List[Span] = []
    fallback_ids = iter(range(-1, -(len(events) + 2), -1))
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        try:
            args = event.get("args") or {}
            start = float(event["ts"]) / 1e6
            duration = float(event["dur"]) / 1e6
            span_id = args.get("span_id")
            attrs = {
                key: value for key, value in args.items()
                if key not in ("span_id", "parent_id", "payload_bytes")
            }
            spans.append(
                Span(
                    name=str(event["name"]),
                    start=start,
                    stop=start + duration,
                    span_id=(
                        int(span_id) if span_id is not None else next(fallback_ids)
                    ),
                    parent_id=(
                        None if args.get("parent_id") is None
                        else int(args["parent_id"])
                    ),
                    thread=tid_names.get(event.get("tid"), str(event.get("tid", ""))),
                    payload_bytes=int(args.get("payload_bytes", 0)),
                    attrs=attrs,
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed Chrome trace event: {exc}") from exc
    return spans


# ---------------------------------------------------------------------- #
# JSON-lines
# ---------------------------------------------------------------------- #
def jsonl_lines(source) -> List[str]:
    """Render spans as JSON-lines (header line first)."""
    lines = [json.dumps(JSONL_HEADER)]
    lines.extend(json.dumps(span.as_record()) for span in _spans_of(source))
    return lines


def write_jsonl(source, path) -> Path:
    """Write the JSON-lines trace to ``path``."""
    path = Path(path)
    path.write_text("\n".join(jsonl_lines(source)) + "\n")
    return path


def _spans_from_jsonl(text: str) -> List[Span]:
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("trace file is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"trace is not valid JSON-lines: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != "repro-trace":
        raise ValueError(
            "JSON-lines trace must start with the "
            '{"format": "repro-trace", ...} header'
        )
    if header.get("version") != JSONL_HEADER["version"]:
        raise ValueError(f"unsupported trace version {header.get('version')!r}")
    spans = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {number} is not valid JSON: {exc}") from exc
        spans.append(Span.from_record(record))
    return spans


# ---------------------------------------------------------------------- #
# Loading (both machine formats)
# ---------------------------------------------------------------------- #
def load_trace(path) -> List[Span]:
    """Load spans back from a ``--trace-out`` file (either format).

    Raises ``ValueError`` with a one-line reason for anything malformed —
    missing file, bad JSON, wrong schema — so CLI callers map it to exit 2.
    """
    path = Path(path)
    if not path.exists():
        raise ValueError(f"trace file {path} does not exist")
    try:
        text = path.read_text()
    except OSError as exc:
        raise ValueError(f"cannot read trace file {path}: {exc}") from exc
    # Sniff: a file that parses as ONE JSON document is a Chrome trace (or
    # a header-only JSON-lines file); multi-line JSON-lines fails the
    # single-document parse with "extra data" and takes the line path.
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict):
        if "traceEvents" in payload:
            return _spans_from_chrome(payload)
        if payload.get("format") == JSONL_HEADER["format"]:
            return _spans_from_jsonl(text)
        raise ValueError(
            "unrecognized trace file: expected a Chrome 'traceEvents' "
            "document or a repro-trace JSON-lines file"
        )
    if payload is not None:
        raise ValueError(
            f"trace file must be a JSON object, not {type(payload).__name__}"
        )
    return _spans_from_jsonl(text)


# ---------------------------------------------------------------------- #
# Summary tree
# ---------------------------------------------------------------------- #
def _format_bytes(nbytes: int) -> str:
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{int(nbytes)} B"  # pragma: no cover - unreachable


def summary_tree(source, *, title: str = "trace summary") -> str:
    """Human-readable tree of spans grouped by (parent, name)."""
    spans = _spans_of(source)
    if not spans:
        return f"{title}: (no spans recorded)"
    ids = {span.span_id for span in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)

    wall = max(s.stop for s in spans) - min(s.start for s in spans)
    lines = [f"{title}  (wall {wall:.4f}s, {len(spans)} spans)"]

    def render(parent: Optional[int], prefix: str) -> None:
        groups: Dict[str, List[Span]] = {}
        for span in children.get(parent, []):
            groups.setdefault(span.name, []).append(span)
        ordered = sorted(
            groups.items(), key=lambda item: min(s.start for s in item[1])
        )
        for index, (name, group) in enumerate(ordered):
            last = index == len(ordered) - 1
            branch, extend = ("└─ ", "   ") if last else ("├─ ", "│  ")
            total = sum(s.duration for s in group)
            payload = sum(s.payload_bytes for s in group)
            detail = f"{total:.4f}s"
            if len(group) > 1:
                detail += f" ({len(group)}×)"
            if payload:
                detail += f", {_format_bytes(payload)}"
            lines.append(f"{prefix}{branch}{name:<28s} {detail}")
            for span in group:
                render(span.span_id, prefix + extend)

    render(None, "")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Dispatch by format name / file suffix
# ---------------------------------------------------------------------- #
def trace_format_for(path) -> str:
    """The export format a file suffix implies (``ValueError`` if none).

    Exposed so CLI callers can reject a bad ``--trace-out`` *before* the
    reconstruction runs, not after.
    """
    path = Path(path)
    by_suffix = {".json": "chrome", ".jsonl": "jsonl", ".txt": "summary"}
    format = by_suffix.get(path.suffix.lower())
    if format is None:
        raise ValueError(
            f"cannot infer trace export format from {path.name!r}; use a "
            ".json (Chrome), .jsonl (JSON-lines) or .txt (summary) suffix"
        )
    return format


def write_trace(source, path, *, format: Optional[str] = None) -> Path:
    """Write spans to ``path`` in ``format`` (default: infer from suffix).

    ``.json`` means Chrome trace-event JSON, ``.jsonl`` means JSON-lines,
    ``.txt`` means the summary tree; anything else without an explicit
    format is an error (``ValueError`` -> CLI exit 2).
    """
    path = Path(path)
    if format is None:
        format = trace_format_for(path)
    if format == "chrome":
        return write_chrome_trace(source, path)
    if format == "jsonl":
        return write_jsonl(source, path)
    if format == "summary":
        path.write_text(summary_tree(source) + "\n")
        return path
    raise ValueError(
        f"unknown trace export format {format!r}; expected one of {EXPORT_FORMATS}"
    )
