"""The span tracer: nested, attributed, thread-safe timing records.

A :class:`Span` is one timed unit of work — a filter pass, a worker's tile
loop, a scheduling cycle — with a name, wall-clock bounds, an id/parent-id
pair (so spans nest into a tree), the recording thread and a free-form
attribute mapping (backend, scenario, worker index, payload bytes).  A
:class:`Tracer` collects spans from any number of threads; the exporters in
:mod:`repro.obs.export` turn the collected list into Chrome trace-event
JSON, JSON-lines or a human-readable summary tree.

Two disciplines keep tracing out of the hot path's way:

* **Ambient installation.**  Code that wants spans never takes a tracer
  parameter; it calls :func:`get_tracer` and gets whatever the caller
  installed with :func:`use_tracer` — by default the process-wide
  :data:`NULL_TRACER`.  The backend drivers, the worker pool and the
  service are all instrumented unconditionally against that seam.
* **A strict no-op mode.**  :class:`NullTracer` hands out one shared,
  stateless context manager and records nothing; its per-span cost is a
  dict construction and two no-op calls (bounded by
  ``tests/test_obs.py::test_null_tracer_overhead_is_negligible``).  With no
  tracer installed, reconstruction wall time is indistinguishable from the
  pre-instrumentation baseline.

Cross-thread nesting is explicit: a dispatcher captures
:meth:`Tracer.current_span_id` on the submitting thread and passes it as
``parent=`` when opening spans on worker threads, because thread-local
span stacks do not (and must not) leak across the pool boundary.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "use_tracer",
]


@dataclass(frozen=True)
class Span:
    """One finished timed span, relative to its tracer's epoch."""

    name: str
    start: float
    stop: float
    span_id: int
    parent_id: Optional[int] = None
    thread: str = ""
    payload_bytes: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.stop - self.start

    def as_record(self) -> Dict[str, Any]:
        """Flat JSON-serializable form (the JSON-lines schema)."""
        return {
            "name": self.name,
            "start": self.start,
            "stop": self.stop,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "payload_bytes": self.payload_bytes,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Span":
        """Inverse of :meth:`as_record`; raises ValueError when malformed."""
        if not isinstance(record, dict):
            raise ValueError(f"span record must be an object, got {type(record).__name__}")
        try:
            return cls(
                name=str(record["name"]),
                start=float(record["start"]),
                stop=float(record["stop"]),
                span_id=int(record["span_id"]),
                parent_id=(
                    None if record.get("parent_id") is None
                    else int(record["parent_id"])
                ),
                thread=str(record.get("thread", "")),
                payload_bytes=int(record.get("payload_bytes", 0)),
                attrs=dict(record.get("attrs", {})),
            )
        except KeyError as exc:
            raise ValueError(f"span record missing required field {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise ValueError(f"span record field has the wrong type: {exc}") from exc


class _ActiveSpan:
    """Context manager of one in-flight span (internal)."""

    __slots__ = ("_tracer", "name", "payload_bytes", "attrs", "span_id",
                 "parent_id", "start")

    def __init__(self, tracer: "Tracer", name: str, payload_bytes: int,
                 parent_id: Optional[int], attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.payload_bytes = payload_bytes
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent_id = parent_id
        self.start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        if self.parent_id is None and stack:
            self.parent_id = stack[-1]
        stack.append(self.span_id)
        self.start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        stop = tracer._clock()
        stack = tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        tracer._append(
            Span(
                name=self.name,
                start=self.start - tracer.t0,
                stop=stop - tracer.t0,
                span_id=self.span_id,
                parent_id=self.parent_id,
                thread=threading.current_thread().name,
                payload_bytes=self.payload_bytes,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Thread-safe collector of nested :class:`Span` records.

    All span times are relative to the tracer's construction epoch ``t0``,
    so spans recorded on different threads share one timeline and the
    exported trace starts near zero.
    """

    #: Whether spans are actually recorded (the :class:`NullTracer` lies
    #: about nothing: instrumentation may branch on this to skip building
    #: expensive attributes).
    enabled: bool = True

    def __init__(self, *, clock=time.perf_counter):
        self._clock = clock
        self.t0 = clock()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = iter(range(1, 2**63))
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(
        self,
        name: str,
        payload_bytes: int = 0,
        *,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> _ActiveSpan:
        """Context manager timing one unit of work.

        ``parent`` overrides the ambient (thread-local) parent — the
        cross-thread case; within one thread, nesting is automatic.
        """
        return _ActiveSpan(self, name, payload_bytes, parent, attrs)

    def record(
        self,
        name: str,
        start: float,
        stop: float,
        payload_bytes: int = 0,
        *,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-timed span (``start``/``stop`` on this
        tracer's clock, absolute — the epoch is subtracted here)."""
        span = Span(
            name=name,
            start=start - self.t0,
            stop=stop - self.t0,
            span_id=self._next_id(),
            parent_id=parent,
            thread=threading.current_thread().name,
            payload_bytes=payload_bytes,
            attrs=attrs,
        )
        self._append(span)
        return span

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span on *this* thread (for explicit
        cross-thread parenting), or ``None`` outside any span."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def spans(self) -> List[Span]:
        """Snapshot of every finished span, in completion order."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def stage_seconds(self, name: str) -> float:
        """Summed duration of every span with this name."""
        return sum(s.duration for s in self.spans() if s.name == name)

    def stage_totals(self) -> Dict[str, float]:
        """Summed duration per span name."""
        totals: Dict[str, float] = {}
        for span in self.spans():
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def wall_seconds(self) -> float:
        """Elapsed time from the earliest start to the latest stop."""
        spans = self.spans()
        if not spans:
            return 0.0
        return max(s.stop for s in spans) - min(s.start for s in spans)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _next_id(self) -> int:
        with self._lock:
            return next(self._ids)

    def _append(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack


class _NullSpan:
    """The shared no-op context manager every disabled span call returns."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The strict no-op tracer: records nothing, allocates nothing per span.

    One process-wide instance (:data:`NULL_TRACER`) is the default ambient
    tracer, so every instrumentation point may call
    ``get_tracer().span(...)`` unconditionally.
    """

    enabled = False

    def __init__(self):
        super().__init__()

    def span(self, name, payload_bytes=0, *, parent=None, **attrs):  # noqa: ARG002
        return _NULL_SPAN

    def record(self, name, start, stop, payload_bytes=0, *, parent=None, **attrs):  # noqa: ARG002
        return None

    def current_span_id(self) -> Optional[int]:
        return None

    def _append(self, span: Span) -> None:  # pragma: no cover - defensive
        pass


#: The process-wide disabled tracer (see :class:`NullTracer`).
NULL_TRACER = NullTracer()

_ambient = threading.local()


def get_tracer() -> Tracer:
    """The tracer installed on this thread (default: :data:`NULL_TRACER`)."""
    return getattr(_ambient, "tracer", NULL_TRACER)


@contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Tracer]:
    """Install ``tracer`` as this thread's ambient tracer for the block.

    ``None`` installs :data:`NULL_TRACER` (explicitly disabling tracing in
    the block regardless of what the caller had installed).  Restores the
    previous ambient tracer on exit, so installations nest.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    previous = getattr(_ambient, "tracer", None)
    _ambient.tracer = tracer
    try:
        yield tracer
    finally:
        if previous is None:
            del _ambient.tracer
        else:
            _ambient.tracer = previous
