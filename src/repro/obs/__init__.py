"""Unified observability: spans, metrics, run reports and trace exporters.

Every timing claim the paper makes — stage breakdowns, the overlap factor
δ, GUPS, tail latency — is measured somewhere in this repo; ``repro.obs``
is the one substrate those measurements flow through:

* :class:`Tracer` — thread-safe nested spans with ids, attributes and
  payload bytes, installed ambiently via :func:`use_tracer` so the hot
  paths (backend filter/back-projection drivers, the parallel worker
  pool, the service dispatcher) are instrumented once, unconditionally,
  against the process-wide no-op :data:`NULL_TRACER`.
* :class:`MetricsRegistry` — counters, gauges and p50/p99 histograms for
  the lifetime view (queue waits, cache hits, scheduler decisions),
  feeding :class:`~repro.service.metrics.ServiceMetrics` rather than
  duplicating its per-job KPI reductions.
* :class:`RunReport` — the structured record every
  :meth:`Session.run <repro.api.Session.run>` returns: stage seconds,
  GUPS, peak RSS, span-derived stage totals.
* Exporters — Chrome trace-event JSON (``chrome://tracing`` / Perfetto),
  JSON-lines and a human-readable summary tree, surfaced on the CLI as
  ``--trace-out`` and ``repro report``.

The iFDK rank runtime's :class:`~repro.pipeline.tracing.PipelineTracer`
is a :class:`Tracer` subclass, so Figure-4c / Table-5 stage breakdowns
come out of the same span stream as everything else.
"""

from .export import (
    EXPORT_FORMATS,
    chrome_trace,
    jsonl_lines,
    load_trace,
    summary_tree,
    trace_format_for,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from .metrics import NULL_METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .report import RunReport, peak_rss_bytes
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, get_tracer, use_tracer

__all__ = [
    "EXPORT_FORMATS",
    "NULL_METRICS",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "RunReport",
    "Span",
    "Tracer",
    "chrome_trace",
    "get_tracer",
    "jsonl_lines",
    "load_trace",
    "peak_rss_bytes",
    "summary_tree",
    "trace_format_for",
    "use_tracer",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
