"""Structured run reports: the per-execution observability record.

Every :meth:`Session.run <repro.api.Session.run>` produces a
:class:`RunReport` alongside the volume: the stage-second split the
reconstructor measured, the back-projection throughput in GUPS, the
process's peak RSS, and — when a real tracer was installed — the per-stage
totals derived from the recorded spans, so the report and the exported
trace are two views of the same numbers (the acceptance criterion pins
them within ±10% of each other).

The report is plain data: everything is JSON-serializable via
:meth:`RunReport.as_dict`, and :meth:`RunReport.summary` renders the
operator-facing text block the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .tracer import Tracer

__all__ = ["RunReport", "peak_rss_bytes"]


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize to
    bytes.  Platforms without the ``resource`` module report 0 rather than
    failing the run that asked for a report.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - not the CI platform
        return int(maxrss)
    return int(maxrss) * 1024


@dataclass
class RunReport:
    """Observability record of one plan execution."""

    plan_key: str
    target: str
    backend: str
    scenario: str
    problem: str
    wall_seconds: float
    filter_seconds: float
    backprojection_seconds: float
    gups: float
    peak_rss_bytes: int = 0
    traced: bool = False
    span_count: int = 0
    #: Summed seconds per span name (empty when tracing was disabled).
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Target-specific extras (iFDK overlap delta, service job record, ...).
    details: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_tracer(
        cls,
        tracer: Optional[Tracer],
        *,
        plan_key: str,
        target: str,
        backend: str,
        scenario: str,
        problem: str,
        wall_seconds: float,
        filter_seconds: float,
        backprojection_seconds: float,
        gups: float,
        details: Optional[Dict[str, Any]] = None,
    ) -> "RunReport":
        """Build the report, folding in span-derived stage totals when the
        tracer actually recorded (a null tracer yields an untraced report).
        """
        traced = tracer is not None and tracer.enabled
        return cls(
            plan_key=plan_key,
            target=target,
            backend=backend,
            scenario=scenario,
            problem=problem,
            wall_seconds=wall_seconds,
            filter_seconds=filter_seconds,
            backprojection_seconds=backprojection_seconds,
            gups=gups,
            peak_rss_bytes=peak_rss_bytes(),
            traced=traced,
            span_count=len(tracer) if traced else 0,
            stage_seconds=tracer.stage_totals() if traced else {},
            details=dict(details or {}),
        )

    # ------------------------------------------------------------------ #
    @property
    def stage_sum_seconds(self) -> float:
        """Measured stage split total (filter + back-projection)."""
        return self.filter_seconds + self.backprojection_seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "plan_key": self.plan_key,
            "target": self.target,
            "backend": self.backend,
            "scenario": self.scenario,
            "problem": self.problem,
            "wall_seconds": self.wall_seconds,
            "filter_seconds": self.filter_seconds,
            "backprojection_seconds": self.backprojection_seconds,
            "gups": self.gups,
            "peak_rss_bytes": self.peak_rss_bytes,
            "traced": self.traced,
            "span_count": self.span_count,
            "stage_seconds": dict(self.stage_seconds),
            "details": dict(self.details),
        }

    def summary(self) -> str:
        """Operator-facing text block (what ``repro reconstruct`` prints
        to stderr when tracing is on)."""
        lines = [
            f"run {self.plan_key} [{self.target}] backend={self.backend} "
            f"scenario={self.scenario} problem={self.problem}",
            f"  wall            {self.wall_seconds:.4f}s",
            f"  filter          {self.filter_seconds:.4f}s",
            f"  backprojection  {self.backprojection_seconds:.4f}s "
            f"({self.gups:.4f} GUPS)",
            f"  peak RSS        {self.peak_rss_bytes / 2**20:.1f} MiB",
        ]
        if self.traced:
            lines.append(f"  spans           {self.span_count}")
            for stage in sorted(self.stage_seconds):
                lines.append(
                    f"    {stage:<24s} {self.stage_seconds[stage]:.4f}s"
                )
        return "\n".join(lines)
