#!/usr/bin/env python
"""Run the project-invariant linter programmatically and render a report.

The ``repro.analysis`` passes encode the invariants the serving stack
depends on — lock discipline, spawn safety, determinism, float32 dtype
discipline and the CLI/HTTP error contracts.  This example runs them
three ways:

1. over the installed ``repro`` package (the self-clean check CI runs),
2. over the known-bad fixture corpus with every rule unscoped, showing
   what each rule's findings look like,
3. grouped per rule, as a maintainer would triage them.

Run:  PYTHONPATH=src python examples/lint_report.py
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import repro
from repro.analysis import LintConfig, format_json, lint_paths

REPO = Path(__file__).resolve().parent.parent


def main() -> int:
    # 1. The package itself must be clean (this is the CI gate).
    package_dir = Path(repro.__file__).parent
    result = lint_paths([package_dir])
    print(f"repro package: {len(result.findings)} finding(s) "
          f"in {result.files_checked} files")
    assert not result.findings, "the shipped tree must lint clean"

    # 2. The fixture corpus, with every rule applied everywhere.
    config = LintConfig.default()
    for rule in config.rules.values():
        rule.include = []  # unscope: fixtures live outside src/repro
    corpus = REPO / "tests" / "data" / "lint"
    result = lint_paths([corpus], config=config)
    print(f"\nfixture corpus: {len(result.findings)} finding(s) "
          f"in {result.files_checked} files")
    for finding in result.findings:
        print(f"  {finding.render()}")

    # 3. Triage view: counts per rule, plus the JSON form tooling consumes.
    by_rule = Counter(finding.rule for finding in result.findings)
    print("\nfindings per rule:")
    for rule, count in sorted(by_rule.items()):
        print(f"  {rule:<20s} {count}")

    payload = format_json(result)
    print(f"\nmachine-readable keys: {sorted(payload)}")
    print(json.dumps(payload["findings"][0], indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
