#!/usr/bin/env python
"""Distributed iFDK reconstruction on a simulated cluster.

This example mirrors Figure 7 of the paper: a 2-D grid of MPI ranks (here
R=4 rows x C=4 columns = 16 simulated GPUs) reconstructs a volume from
projections staged on a simulated parallel file system.  Columns share
filtered projections with AllGather, rows combine partial sub-volumes with
Reduce, and the row roots write Z slabs back to the PFS.

The run is functionally complete (every byte of the volume is computed and
checked against a single-node reconstruction); the at-scale timing for the
same configuration on the paper's ABCI testbed is reported from the
calibrated performance model.

Run:  python examples/distributed_reconstruction.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    EllipsoidPhantom,
    default_geometry_for_problem,
    forward_project_analytic,
    reconstruct_fdk,
    shepp_logan_ellipsoids,
)
from repro.bench import PROBLEM_4K
from repro.pfs import SimulatedPFS
from repro.pipeline import IFDKConfig, IFDKFramework, IFDKPerformanceModel, choose_grid


def main() -> None:
    # ---------------------------------------------------------------- #
    # Functional run at laptop scale: 16 ranks in a 4x4 grid.
    # ---------------------------------------------------------------- #
    geometry = default_geometry_for_problem(nu=64, nv=64, np_=32, nx=48, ny=48, nz=48)
    phantom = EllipsoidPhantom(shepp_logan_ellipsoids())
    projections = forward_project_analytic(phantom, geometry)

    config = IFDKConfig(geometry=geometry, rows=4, columns=4, kernel="L1-Tran")
    print(f"grid: R={config.rows} x C={config.columns} = {config.n_ranks} ranks "
          f"({config.n_nodes} nodes with {config.gpus_per_node} GPUs each)")
    print(f"each rank loads {config.projections_per_rank} projections and owns a "
          f"{config.slab_thickness}-slice Z slab")

    framework = IFDKFramework(config, pfs=SimulatedPFS())
    result = framework.reconstruct(projections)

    reference = reconstruct_fdk(projections, geometry)
    max_diff = float(np.abs(result.volume.data - reference.data).max())
    print(f"\nfunctional run finished in {result.wall_seconds:.1f} s wall clock")
    print(f"distributed vs single-node max |difference| = {max_diff:.2e} "
          f"(volume dynamic range {np.abs(reference.data).max():.2f})")
    print(f"mean pipeline overlap factor delta = {result.mean_overlap_delta():.2f}")
    print("per-stage busy seconds summed over ranks:")
    for stage, seconds in sorted(result.stage_totals().items()):
        print(f"    {stage:<15s} {seconds:8.2f} s")

    # ---------------------------------------------------------------- #
    # The same framework at paper scale, through the performance model.
    # ---------------------------------------------------------------- #
    print("\nProjected ABCI-scale performance for the paper's 4K problem "
          f"({PROBLEM_4K}):")
    model = IFDKPerformanceModel()
    for gpus in (128, 512, 2048):
        rows, columns = choose_grid(PROBLEM_4K, gpus)
        breakdown = model.breakdown(PROBLEM_4K, rows, columns)
        print(f"    {gpus:5d} GPUs (R={rows}, C={columns}): "
              f"T_compute={breakdown.t_compute:6.1f} s, T_post={breakdown.t_post:5.1f} s, "
              f"end-to-end {breakdown.t_runtime:6.1f} s "
              f"({PROBLEM_4K.gups(breakdown.t_runtime):8.0f} GUPS)")


if __name__ == "__main__":
    main()
