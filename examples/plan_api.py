"""The declarative plan API: describe once, execute anywhere.

This example walks the ``repro.api`` front door end to end:

1. build a :class:`ReconstructionPlan` from a problem spec,
2. serialize it to JSON and reload it (losslessly — same content hash),
3. execute it through a :class:`Session` on three targets (single-node
   FDK, distributed iFDK, the reconstruction service) and show the
   unified :class:`RunResult` each returns,
4. show the plan's two identities: the full execution key and the
   filtering identity the service cache shares across execution knobs.

Run with ``PYTHONPATH=src python examples/plan_api.py``.
"""

from __future__ import annotations

import numpy as np

from repro.api import ReconstructionPlan, Session, plan_for_problem, run_plan
from repro.core import (
    EllipsoidPhantom,
    forward_project_analytic,
    shepp_logan_ellipsoids,
)

# --------------------------------------------------------------------- #
# 1. One canonical description of "a reconstruction"
# --------------------------------------------------------------------- #
plan = plan_for_problem(
    "64x64x48->48x48x48",
    backend="vectorized",
    scenario="short_scan",
).validate()
print(f"plan key        : {plan.key()}")
print(f"filtering key   : {plan.filter_key()}")
print(f"base problem    : {plan.problem}")
print(f"executed views  : {plan.scenario_geometry().np_} (short scan)")

# --------------------------------------------------------------------- #
# 2. Lossless serialization — the JSON file *is* the reconstruction
# --------------------------------------------------------------------- #
text = plan.to_json()
reloaded = ReconstructionPlan.from_json(text)
assert reloaded == plan and reloaded.key() == plan.key()
print(f"round-tripped   : {len(text)} bytes of JSON, same key")

# --------------------------------------------------------------------- #
# 3. Execute the same plan on different targets
# --------------------------------------------------------------------- #
phantom = EllipsoidPhantom(shepp_logan_ellipsoids())
stack = forward_project_analytic(phantom, plan.geometry)

with Session(reloaded) as session:
    fdk = session.run(stack)
print(f"fdk target      : {fdk.volume.shape} volume, "
      f"{fdk.gups:.3f} GUPS, key {fdk.plan_key}")

# The ideal full scan can also run distributed or through the service —
# same declarative object, different execution engine.
full = plan_for_problem("64x64x48->48x48x48", backend="vectorized")
full_stack = forward_project_analytic(phantom, full.geometry)

distributed = run_plan(
    full.with_updates(target="ifdk", rows=2, columns=2), full_stack
)
print(f"ifdk target     : {distributed.details['rows']}x"
      f"{distributed.details['columns']} grid, "
      f"wall {distributed.wall_seconds:.3f}s")

service = run_plan(
    full.with_updates(target="service", cluster_gpus=8, slo_seconds=120.0),
    full_stack,
)
job = service.details["job"]
print(f"service target  : job {job['job_id']} {job['state']}, "
      f"latency {job['latency_s']:.2f}s (simulated), "
      f"plan_key {job['plan_key']}")

# The functional volume is bit-identical across the single-node paths.
single = run_plan(full, full_stack)
assert np.array_equal(service.volume.data, single.volume.data)

# --------------------------------------------------------------------- #
# 4. The filtering identity drives the service cache
# --------------------------------------------------------------------- #
more_workers = full.with_updates(target="service", workers=4)
assert more_workers.key() != full.key()                # different execution
assert more_workers.filter_key() == full.filter_key()  # same filtering
short = full.with_updates(scenario="short_scan")
assert short.filter_key() != full.filter_key()         # never shared
print("cache identity  : workers/backend changes share filtered "
      "projections; scenario/geometry changes never do")
