#!/usr/bin/env python
"""Compare the five back-projection kernel variants of Table 3/4.

Two comparisons are made:

* **Numerical** — all kernels are executed (NumPy) on the same filtered
  projections; the four proposed-algorithm variants must agree bit-for-bit
  in spirit (they only differ in memory layout / read path), and RTK-32
  (Algorithm 2) must agree to float32 round-off.
* **Performance** — the calibrated V100 cost model regenerates Table 4 and
  reports the speedup of the proposed L1-Tran kernel over RTK-32 for every
  problem in the table.

Run:  python examples/kernel_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import TABLE4_PROBLEMS, format_table, paper_reference_table4
from repro.core import (
    default_geometry_for_problem,
    fdk_weight_and_filter,
    forward_project_analytic,
    uniform_sphere_phantom,
)
from repro.gpusim import KERNEL_VARIANTS, BackprojectionCostModel, TESLA_V100


def numerical_comparison() -> None:
    geometry = default_geometry_for_problem(nu=48, nv=48, np_=16, nx=32, ny=32, nz=32)
    stack = forward_project_analytic(uniform_sphere_phantom(), geometry)
    filtered = fdk_weight_and_filter(stack, geometry)

    print("numerical agreement of the kernel variants (32^3 sphere):")
    reference = KERNEL_VARIANTS[-1].backproject(filtered, geometry).data  # L1-Tran
    for kernel in KERNEL_VARIANTS:
        volume = kernel.backproject(filtered, geometry).data
        diff = float(np.abs(volume - reference).max())
        print(f"    {kernel.name:<9s} ({kernel.algorithm:>8s} algorithm)  "
              f"max |diff vs L1-Tran| = {diff:.2e}")


def performance_comparison() -> None:
    model = BackprojectionCostModel(TESLA_V100)
    rows = []
    for problem in TABLE4_PROBLEMS:
        predicted = {k.name: model.gups(k, problem) for k in KERNEL_VARIANTS}
        paper = paper_reference_table4[str(problem)]
        rows.append(
            {
                "problem": str(problem),
                "alpha": problem.alpha,
                "RTK-32": predicted["RTK-32"],
                "L1-Tran": predicted["L1-Tran"],
                "speedup": predicted["L1-Tran"] / predicted["RTK-32"]
                if predicted["RTK-32"] == predicted["RTK-32"] else float("nan"),
                "paper speedup": (paper["L1-Tran"] / paper["RTK-32"])
                if paper["RTK-32"] else float("nan"),
            }
        )
    print()
    print(format_table(
        rows,
        ["problem", "alpha", "RTK-32", "L1-Tran", "speedup", "paper speedup"],
        title="Modelled V100 GUPS: proposed kernel vs RTK-32 (Table 4)",
        float_format="{:.2f}",
    ))


def main() -> None:
    numerical_comparison()
    performance_comparison()


if __name__ == "__main__":
    main()
