#!/usr/bin/env python
"""Explore the iFDK performance model: scaling sweeps and what-if studies.

Regenerates the scaling behaviour of Figures 5 and 6 from the calibrated
performance model and then answers two of the paper's discussion questions
(Section 6.2): what would the 4K problem cost on a 16-GPU DGX-2-class box,
and how does the runtime respond to faster storage?

Run:  python examples/performance_projection.py
"""

from __future__ import annotations

from repro.bench import PROBLEM_2K, PROBLEM_4K, PROBLEM_8K, format_table
from repro.pipeline import ABCI_MICROBENCHMARKS, IFDKPerformanceModel, choose_grid


def scaling_sweep(model: IFDKPerformanceModel) -> None:
    rows = []
    for label, problem in (("2048^3", PROBLEM_2K), ("4096^3", PROBLEM_4K), ("8192^3", PROBLEM_8K)):
        for gpus in (32, 128, 512, 2048):
            try:
                r, c = choose_grid(problem, gpus)
            except ValueError:
                continue
            b = model.breakdown(problem, r, c)
            rows.append(
                {
                    "output": label,
                    "GPUs": gpus,
                    "R": r,
                    "C": c,
                    "T_compute": b.t_compute,
                    "T_post": b.t_post,
                    "runtime": b.t_runtime,
                    "GUPS": problem.gups(b.t_runtime),
                }
            )
    print(format_table(
        rows, ["output", "GPUs", "R", "C", "T_compute", "T_post", "runtime", "GUPS"],
        title="Strong-scaling sweep (performance model, ABCI constants)",
    ))


def dgx2_projection(model: IFDKPerformanceModel) -> None:
    """Section 6.2.2: a 16-GPU DGX-2 with NVSwitch and local NVMe."""
    from repro.gpusim import TESLA_V100

    dgx2 = ABCI_MICROBENCHMARKS.scaled(
        bw_pcie=60.0e9,      # NVSwitch-class device<->host paths
        th_reduce=50.0e9,    # on-box reduction instead of InfiniBand
        bw_store=10.0e9,     # local NVMe array
        bw_load=20.0e9,
        gpus_per_node=16,
    )
    dgx_model = IFDKPerformanceModel(dgx2, collectives=None)
    # The DGX-2 ships 32 GB V100s, which is what makes 16 GPUs enough for 4K.
    dgx2_gpu = TESLA_V100.with_memory(32 * 1024**3)
    r, c = choose_grid(PROBLEM_4K, 16, device=dgx2_gpu)
    b = dgx_model.breakdown(PROBLEM_4K, r, c)
    print(f"\nDGX-2 class box (16 GPUs, R={r}, C={c}): projected 4K reconstruction in "
          f"{b.t_runtime / 60:.1f} minutes (T_compute {b.t_compute:.0f} s, "
          f"T_post {b.t_post:.0f} s)")
    print("    (the paper projects 'tackle 4K problems within a minute' for a DGX-2 "
          "from its Figure 5a results; the model is deliberately conservative about "
          "the single box's aggregate back-projection rate)")


def storage_sensitivity(model: IFDKPerformanceModel) -> None:
    rows = []
    for factor in (0.5, 1.0, 2.0, 4.0):
        micro = ABCI_MICROBENCHMARKS.scaled(bw_store=28.5e9 * factor)
        m = IFDKPerformanceModel(micro)
        r, c = choose_grid(PROBLEM_8K, 2048)
        b = m.breakdown(PROBLEM_8K, r, c)
        rows.append(
            {
                "store bandwidth (GB/s)": 28.5 * factor,
                "T_store": b.t_store,
                "8K end-to-end": b.t_runtime,
            }
        )
    print()
    print(format_table(
        rows, ["store bandwidth (GB/s)", "T_store", "8K end-to-end"],
        title="Sensitivity of the 8K runtime to PFS write bandwidth (2,048 GPUs)",
    ))


def main() -> None:
    model = IFDKPerformanceModel()
    scaling_sweep(model)
    dgx2_projection(model)
    storage_sensitivity(model)


if __name__ == "__main__":
    main()
