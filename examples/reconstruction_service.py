#!/usr/bin/env python
"""Run the reconstruction service on a synthetic multi-tenant workload.

Demonstrates the ``repro.service`` layer end to end:

1. generate a seeded 24-job arrival trace — four tenants mixing interactive
   Table-4-class scans with heavy 2K reconstructions (the Figure 6 problem),
   re-requesting a small pool of datasets;
2. replay it on a simulated 16-GPU cluster under the SLO-aware scheduler
   and under the naive FIFO baseline;
3. compare throughput, tail latency, SLO attainment and the filtered-
   projection cache hit rate, then show how the SLO scheduler right-sized
   one interactive job vs. one heavy job.

Run:  python examples/reconstruction_service.py
"""

from __future__ import annotations

from repro.bench import format_table
from repro.service import ReconstructionService, synthetic_trace

CLUSTER_GPUS = 16


def compare_policies(trace) -> dict:
    summaries = {}
    for policy in ("slo", "fifo"):
        service = ReconstructionService(CLUSTER_GPUS, policy=policy)
        report = service.replay(trace)
        summaries[policy] = report
    rows = [
        {
            "metric": key,
            "slo": summaries["slo"].summary[key],
            "fifo": summaries["fifo"].summary[key],
        }
        for key in (
            "throughput_jobs_per_s",
            "aggregate_gups",
            "latency_p50_s",
            "latency_p99_s",
            "slo_attainment",
            "queue_depth_max",
            "cache_hit_rate",
            "gpu_utilization",
        )
    ]
    print(format_table(
        rows, ["metric", "slo", "fifo"],
        title=f"SLO-aware packing vs. naive FIFO ({len(trace)} jobs, "
              f"{CLUSTER_GPUS} GPUs)",
        float_format="{:.3f}",
    ))
    return summaries


def show_right_sizing(report) -> None:
    """How the scheduler shaped individual jobs under the SLO policy."""
    completed = [j for j in report.jobs if j["state"] == "completed"]
    interactive = min(completed, key=lambda j: j["gpus"])
    heavy = max(completed, key=lambda j: j["gpus"])
    print()
    print(format_table(
        [interactive, heavy],
        ["job_id", "tenant", "problem", "gpus", "grid", "latency_s", "slo_s",
         "cache_hit"],
        title="Per-job right-sizing under the SLO policy",
        float_format="{:.2f}",
    ))
    print(
        "\nThe scheduler spends the fewest GPUs that still meet each job's "
        "SLO,\nso interactive scans run beside a heavy reconstruction "
        "instead of behind it."
    )


def main() -> None:
    trace = synthetic_trace(24, cluster_gpus=CLUSTER_GPUS, seed=0)
    print(f"workload: {trace.description}\n")
    summaries = compare_policies(trace)
    show_right_sizing(summaries["slo"])


if __name__ == "__main__":
    main()
