#!/usr/bin/env python
"""Tracing a reconstruction end to end with ``repro.obs``.

One ambient span tracer instruments every execution path — the shared
filter driver, each backend's back-projection loop (including the
parallel pool's per-worker spans), the session and the service.  This
example reconstructs a *short-scan* acquisition with tracing on, prints
the structured run report and the span summary tree, and exports the
trace as a Chrome trace-event document you can drop into
``chrome://tracing`` or https://ui.perfetto.dev.

Run:  python examples/observability.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Session, plan_for_problem
from repro.obs import Tracer, summary_tree, write_trace
from repro.core.types import ProjectionStack

TRACE_FILE = "shortscan_trace.json"


def main() -> None:
    # A short-scan plan on the parallel backend: the scenario trims the
    # angular range and applies Parker weights in the filter stage, and
    # the pool fans the tile plan out over two workers — both of which
    # are visible in the recorded span tree.
    plan = plan_for_problem(
        "96x64x48->48x48x24",
        scenario="short_scan",
        backend="parallel",
        workers=2,
    )
    rng = np.random.default_rng(0)
    geometry = plan.geometry
    stack = ProjectionStack(
        data=rng.standard_normal(
            (geometry.np_, geometry.nv, geometry.nu)
        ).astype(np.float32),
        angles=geometry.angles,
    )

    tracer = Tracer()
    result = Session(plan, tracer=tracer).run(stack)

    # The structured report: stage-second split, GUPS, peak RSS and the
    # per-stage span totals (the same numbers as the exported trace).
    print(result.report.summary())
    print()

    # The span tree: run -> filter -> filter.worker, run -> backproject
    # -> backproject.worker, with per-stage payload bytes.
    print(summary_tree(tracer))

    # Chrome trace-event export (`repro reconstruct --trace-out` and
    # `repro report` drive the same writers).
    path = write_trace(tracer, TRACE_FILE)
    print(f"\n{len(tracer)} spans written to {path}")
    print("open chrome://tracing or https://ui.perfetto.dev and load it")


if __name__ == "__main__":
    main()
