#!/usr/bin/env python
"""Online streaming reconstruction with ``repro.streaming``.

A real scanner does not hand you a finished projection stack: frames
arrive one at a time, sometimes slightly out of order, while the
reconstruction is already running.  This example plays the acquisition
side on a producer thread — pushing ``(index, angle, frame)`` triples
through a bounded :class:`~repro.pipeline.CircularBuffer` — while a
:class:`~repro.streaming.StreamingReconstructor` consumes them in fixed
chunks on the other end, filtering and accumulating each chunk as soon
as it is complete.  The consumer never holds more than one chunk of
projections, yet the result is **bit-identical** to the offline
whole-stack reconstruction of the same frames.

Run:  python examples/streaming_online.py
"""

from __future__ import annotations

import threading

import numpy as np

from repro.backends import get_backend
from repro.core import default_geometry_for_problem
from repro.core.types import ProjectionStack
from repro.pipeline import CircularBuffer
from repro.streaming import (
    OnlineChunkSource,
    StreamingReconstructor,
    chunk_working_set_bytes,
    stream_stack,
    whole_stack_working_set_bytes,
)

CHUNK_SIZE = 8


def main() -> None:
    geometry = default_geometry_for_problem(
        nu=96, nv=64, np_=48, nx=48, ny=48, nz=24
    )
    rng = np.random.default_rng(0)
    stack = ProjectionStack(
        data=rng.standard_normal(
            (geometry.np_, geometry.nv, geometry.nu)
        ).astype(np.float32),
        angles=geometry.angles,
    )

    # The scanner: a producer thread emitting frames in *almost* sorted
    # order (adjacent pairs swapped — the kind of jitter a multi-detector
    # readout produces).  The buffer holds one chunk, so the producer
    # blocks whenever the reconstruction falls behind: bounded memory on
    # both sides of the pipe.
    order = list(range(geometry.np_))
    for i in range(0, geometry.np_ - 1, 2):
        order[i], order[i + 1] = order[i + 1], order[i]
    buffer = CircularBuffer(capacity=CHUNK_SIZE)
    producer = threading.Thread(
        target=stream_stack, args=(stack, buffer), kwargs={"order": order}
    )
    producer.start()

    # The consumer: chunks of CHUNK_SIZE frames are filtered and
    # back-projected as they complete.  The reorder window (defaulting to
    # the buffer capacity) bounds how far ahead the scanner may run; a
    # stalled or truncated acquisition raises StreamingError instead of
    # silently returning a partial volume.
    source = OnlineChunkSource(buffer, geometry.np_, timeout=30.0)
    with StreamingReconstructor(
        geometry, backend="vectorized", chunk_size=CHUNK_SIZE
    ) as reconstructor:
        result = reconstructor.reconstruct(source)
    producer.join()

    print(
        f"streamed {result.num_projections} projections in "
        f"{result.chunk_count} chunks of <= {result.chunk_size}"
    )
    print(
        f"working set: {result.working_set_bytes / 1e6:.1f} MB per chunk vs "
        f"{whole_stack_working_set_bytes(geometry) / 1e6:.1f} MB whole-stack"
    )
    print(
        f"filter {result.filter_seconds * 1e3:.1f} ms + backproject "
        f"{result.backprojection_seconds * 1e3:.1f} ms, "
        f"peak RSS {result.peak_rss_bytes / 1e6:.1f} MB"
    )
    assert result.working_set_bytes == chunk_working_set_bytes(
        geometry, CHUNK_SIZE
    )

    # The punchline: the online, out-of-order, chunk-at-a-time volume is
    # bit-identical to the offline whole-stack reconstruction.
    offline = get_backend("vectorized").reconstruct(
        stack, geometry, algorithm="proposed"
    )
    exact = np.array_equal(result.volume.data, offline.data)
    print(f"bit-identical to the offline whole-stack volume: {exact}")
    assert exact


if __name__ == "__main__":
    main()
