#!/usr/bin/env python
"""Fair-share scheduling: one aggressive tenant cannot starve another.

Two tenants share a 16-GPU reconstruction service.  The *aggressor*
submits ten times the *victim's* load.  Under naive FIFO the victim's
jobs wait behind the aggressor's entire backlog; with the weighted
fair-share queue (deficit round-robin across per-tenant subqueues, plus
starvation aging) the victim's small flow is interleaved at its share and
its tail latency collapses.

The same knobs on the command line::

    repro serve --trace skewed.json --tenant-weights victim=1,aggressor=1 \
                --max-tenant-depth 64 --aging-seconds 300

and over HTTP the per-tenant depth quota surfaces as ``429 Too Many
Requests`` with a ``Retry-After`` hint (see ``repro.service.http``).

Run:  python examples/fair_share.py
"""

from __future__ import annotations

from repro.service import AdmissionPolicy, ReconstructionService, synthetic_trace

CLUSTER_GPUS = 16
N_JOBS = 400


def replay(label: str, policy: str, admission: AdmissionPolicy) -> dict:
    trace = synthetic_trace(
        N_JOBS,
        cluster_gpus=CLUSTER_GPUS,
        seed=0,
        heavy_fraction=0.0,
        mean_interarrival_seconds=0.25,
        tenant_mix={"aggressor": 10.0, "victim": 1.0},
    )
    service = ReconstructionService(CLUSTER_GPUS, policy=policy, admission=admission)
    summary = service.replay(trace).summary
    print(f"\n{label}")
    for key in ("tenant[victim]_p99_s", "tenant[aggressor]_p99_s",
                "latency_p99_s", "slo_attainment"):
        print(f"  {key:>28s} = {summary[key]:10.2f}")
    if "fairness_index" in summary:
        print(f"  {'fairness_index':>28s} = {summary['fairness_index']:10.3f}")
    return summary


def main() -> None:
    deep = dict(max_depth=N_JOBS + 1)
    fifo = replay("naive FIFO", "fifo", AdmissionPolicy(**deep))
    fair = replay(
        "weighted fair-share (DRR + aging)",
        "slo",
        AdmissionPolicy(**deep, fair_share=True, aging_seconds=600.0),
    )
    speedup = fifo["tenant[victim]_p99_s"] / fair["tenant[victim]_p99_s"]
    print(f"\nvictim p99 improvement under fair-share: {speedup:.1f}x")


if __name__ == "__main__":
    main()
