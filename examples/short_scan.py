"""Short-scan reconstruction with Parker redundancy weighting.

Simulates an ideal full-2π Shepp-Logan acquisition, replays it through the
``short_scan`` acquisition scenario (only the leading ``π + 2Δ`` of the
sweep survives, as if the gantry had stopped early), reconstructs both
with the vectorized backend and compares image quality against the
rasterized phantom — demonstrating that the Parker weights recover
full-scan-grade images from ~65% of the projections (and hence ~65% of
the dose and the scan time).

Run with:  PYTHONPATH=src python examples/short_scan.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    EllipsoidPhantom,
    FDKReconstructor,
    default_geometry_for_problem,
    forward_project_analytic,
    shepp_logan_3d,
    shepp_logan_ellipsoids,
)
from repro.scenarios import available_scenarios, get_scenario, reconstruct_scenario


def rel_rmse(volume: np.ndarray, truth: np.ndarray) -> float:
    scale = float(np.abs(truth).max())
    return float(np.sqrt(np.mean((volume - truth) ** 2))) / scale


def main() -> None:
    base = default_geometry_for_problem(nu=96, nv=96, np_=96, nx=64, ny=64, nz=64)
    phantom = EllipsoidPhantom(shepp_logan_ellipsoids())
    truth = shepp_logan_3d(base.nx, base.ny, base.nz).data

    print(f"simulating ideal full scan: {base.np_} projections over 2π ...")
    ideal = forward_project_analytic(phantom, base)

    full = FDKReconstructor(geometry=base, backend="vectorized").reconstruct(ideal)

    scenario = get_scenario("short_scan")
    geometry, scan = scenario.apply(base, ideal)
    span_deg = np.degrees(geometry.angular_range)
    print(
        f"short scan keeps {geometry.np_}/{base.np_} projections "
        f"({span_deg:.1f}° = 180° + 2·{np.degrees(base.fan_angle):.1f}° fan)"
    )

    # The Parker table: per-(projection, column) weights whose conjugate
    # ray pairs sum to one.  It rides into the filtering stage of every
    # backend via FDKReconstructor(scenario=...).
    table = scenario.redundancy_weights(geometry)
    print(f"Parker weight table: shape {table.shape}, "
          f"range [{table.min():.3f}, {table.max():.3f}]")

    short = reconstruct_scenario("short_scan", base, ideal, backend="vectorized")

    full_rmse = rel_rmse(full.volume.data, truth)
    short_rmse = rel_rmse(short.volume.data, truth)
    print(f"\n{'scan':>12s} {'projections':>12s} {'rel RMSE':>10s}")
    print(f"{'full 2π':>12s} {base.np_:>12d} {full_rmse:>10.4f}")
    print(f"{'short':>12s} {geometry.np_:>12d} {short_rmse:>10.4f}")
    print(f"\nshort-scan RMSE is {short_rmse / full_rmse:.2f}x the full scan's "
          f"with {geometry.np_ / base.np_:.0%} of the dose")
    print(f"\nall presets: {', '.join(available_scenarios())}")


if __name__ == "__main__":
    main()
