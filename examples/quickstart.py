#!/usr/bin/env python
"""Quickstart: reconstruct a Shepp-Logan phantom with FDK on one node.

This is the smallest end-to-end use of the library:

1. define a cone-beam acquisition geometry,
2. synthesize projections of the 3-D Shepp-Logan phantom (exact line
   integrals — the role RTK's forward projector plays in the paper),
3. run the FDK pipeline (Algorithm 1 filtering + Algorithm 4 back-projection),
4. compare the result against the analytic phantom.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    EllipsoidPhantom,
    FDKReconstructor,
    default_geometry_for_problem,
    forward_project_analytic,
    shepp_logan_3d,
    shepp_logan_ellipsoids,
)
from repro.core.metrics import interior_mask, normalized_cross_correlation, psnr, rmse


def main() -> None:
    # A 64^3 volume reconstructed from 96^2 projections at 120 angles keeps
    # the runtime at a few seconds on a laptop while showing real structure.
    n = 64
    geometry = default_geometry_for_problem(nu=96, nv=96, np_=120, nx=n, ny=n, nz=n)
    print(f"geometry: {geometry.nu}x{geometry.nv} detector, {geometry.np_} views, "
          f"{geometry.nx}^3 volume, SAD {geometry.sad:.0f} mm, SDD {geometry.sdd:.0f} mm")

    phantom = EllipsoidPhantom(shepp_logan_ellipsoids())
    print("forward projecting the Shepp-Logan phantom ...")
    projections = forward_project_analytic(phantom, geometry)

    print("reconstructing with FDK (proposed Algorithm 4 back-projection) ...")
    reconstructor = FDKReconstructor(geometry=geometry, algorithm="proposed")
    result = reconstructor.reconstruct(projections)

    reference = shepp_logan_3d(n)
    mask = interior_mask(reference.shape, 0.7)
    print(f"filtering took       {result.filter_seconds:6.2f} s")
    print(f"back-projection took {result.backprojection_seconds:6.2f} s "
          f"({result.gups:.3f} GUPS on this CPU)")
    print(f"interior RMSE vs analytic phantom : {rmse(result.volume.data, reference.data, mask):.4f}")
    print(f"interior correlation              : "
          f"{normalized_cross_correlation(result.volume.data, reference.data, mask):.3f}")
    print(f"interior PSNR                     : {psnr(result.volume.data, reference.data, mask):.1f} dB")

    mid = result.volume.data[n // 2]
    print("\ncentral slice (coarse ASCII rendering):")
    chars = " .:-=+*#%@"
    lo, hi = np.percentile(mid, [5, 99.5])
    for row in mid[:: max(1, n // 24)]:
        line = ""
        for value in row[:: max(1, n // 48)]:
            level = int(np.clip((value - lo) / max(hi - lo, 1e-6), 0, 0.999) * len(chars))
            line += chars[level]
        print("   " + line)


if __name__ == "__main__":
    main()
