#!/usr/bin/env python
"""Iterative reconstruction (SIRT / OSEM) on top of the same operators.

Section 6.2 of the paper argues that the proposed back-projection algorithm
carries over to iterative solvers (ART, SART, MLEM, MBIR), which repeat the
back-projection dozens of times.  This example reconstructs a low-view
acquisition — where FDK shows streak artefacts — with SIRT and OSEM and
reports how the iterative solutions improve on the analytic FDK baseline.

Run:  python examples/iterative_reconstruction.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    default_geometry_for_problem,
    forward_project_analytic,
    reconstruct_fdk,
    uniform_sphere_phantom,
)
from repro.core.iterative import osem, sirt
from repro.core.metrics import interior_mask, rmse


def main() -> None:
    # Few views (16) make the reconstruction genuinely ill-posed.
    geometry = default_geometry_for_problem(nu=32, nv=32, np_=16, nx=24, ny=24, nz=24)
    phantom = uniform_sphere_phantom(radius=0.55, value=1.0)
    projections = forward_project_analytic(phantom, geometry)
    reference = phantom.rasterize(24, 24, 24)
    mask = interior_mask(reference.shape, 0.7)

    print("reconstructing a 16-view acquisition (24^3 volume)\n")

    fdk = reconstruct_fdk(projections, geometry)
    print(f"FDK baseline          interior RMSE = {rmse(fdk.data, reference.data, mask):.4f}")

    result = sirt(projections, geometry, iterations=8, relaxation=1.0)
    print(f"SIRT (8 iterations)   interior RMSE = "
          f"{rmse(result.volume.data, reference.data, mask):.4f}   "
          f"residual history: {[round(r, 4) for r in result.residual_history]}")

    result = osem(projections, geometry, subsets=4, iterations=4)
    print(f"OSEM (4x4 subsets)    interior RMSE = "
          f"{rmse(result.volume.data, reference.data, mask):.4f}   "
          f"residual history: {[round(r, 4) for r in result.residual_history]}")

    # The solvers accept either back-projection algorithm; the result is the
    # same (the paper's point: the optimization is free for iterative methods).
    a = sirt(projections, geometry, iterations=2, algorithm="proposed").volume.data
    b = sirt(projections, geometry, iterations=2, algorithm="standard").volume.data
    print(f"\nSIRT with Algorithm 4 vs Algorithm 2: max |difference| = "
          f"{float(np.abs(a - b).max()):.2e}")


if __name__ == "__main__":
    main()
