#!/usr/bin/env python
"""Kill a serving process mid-queue and watch the restart recover it.

Demonstrates the durable-serving pieces of ``repro.service`` end to end:

1. a first service process submits a queue of jobs against
   ``--state-dir``-style journaling and a shared on-disk filtered cache,
   warms the cache by completing one job, then is SIGKILLed with the rest
   of the queue still pending — no shutdown hook, no flush, exactly the
   crash a real deployment has to survive;
2. a second process (this one) rebuilds the service on the same state
   directory: the journal replay brings back every job exactly once —
   the completed job with its outcome, the pending ones re-queued;
3. the recovered queue drains on a *process* dispatcher, and the jobs
   that re-request the warmed dataset hit the on-disk cache even though
   the process (and worker pool) that filtered it is long dead.

Run:  python examples/serving_restart.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import textwrap
from pathlib import Path

from repro.service import JobState, ReconstructionService

PILOT = "32x32x16->16x16x16"
PROBLEM = "512x512x1024->256x256x256"


def crash_a_serving_process(state_dir: Path, cache_dir: Path) -> None:
    """Phase 1 in a child process, ended by SIGKILL mid-queue."""
    script = textwrap.dedent(
        f"""
        import os, signal
        from repro.core.types import problem_from_string
        from repro.service import ReconstructionJob, ReconstructionService

        service = ReconstructionService(
            16, backend="vectorized", workers=1, dispatcher="process",
            pilot_problem={PILOT!r},
            state_dir={str(state_dir)!r}, cache_dir={str(cache_dir)!r})
        # Complete one job: journals its outcome and warms the disk cache.
        warm = ReconstructionJob(
            problem=problem_from_string({PROBLEM!r}),
            job_id="job-warm", dataset_id="ds-popular")
        service.submit(warm)
        service.run_until_idle()
        print(f"  [first process] job-warm completed, "
              f"pilot cache hit: {{warm.pilot_cache_hit}}", flush=True)
        # Queue more work, then die before any of it runs.
        for index in range(3):
            service.submit(ReconstructionJob(
                problem=problem_from_string({PROBLEM!r}),
                job_id=f"job-queued-{{index}}", dataset_id="ds-popular"))
        print("  [first process] 3 jobs queued; SIGKILL now", flush=True)
        os.kill(os.getpid(), signal.SIGKILL)
        """
    )
    process = subprocess.run([sys.executable, "-c", script])
    assert process.returncode == -signal.SIGKILL, process.returncode


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-serving-") as scratch:
        state_dir = Path(scratch) / "state"
        cache_dir = Path(scratch) / "cache"

        print("phase 1: first service process, killed mid-queue")
        crash_a_serving_process(state_dir, cache_dir)

        print("phase 2: restart on the same state dir and recover")
        service = ReconstructionService(
            16, backend="vectorized", workers=1, dispatcher="process",
            pilot_problem=PILOT, state_dir=state_dir, cache_dir=cache_dir,
        )
        print(f"  recovered {service.recovered_jobs} jobs "
              f"({len(service.queue)} re-queued) "
              f"from {service.store.journal_path}")
        warm = service.jobs["job-warm"]
        assert warm.state is JobState.COMPLETED  # outcome survived the kill
        assert len(service.queue) == 3

        print("phase 3: drain the recovered queue on fresh workers")
        service.run_until_idle()
        summary = service.report().summary
        for index in range(3):
            job = service.jobs[f"job-queued-{index}"]
            print(f"  job-queued-{index}: {job.state.value}, "
                  f"pilot cache hit: {job.pilot_cache_hit}")
            assert job.state is JobState.COMPLETED
            # ds-popular was filtered (and cached) by the dead first
            # process; these pilots ran in brand-new worker processes.
            assert job.pilot_cache_hit is True
        assert summary["jobs_completed"] == 4.0  # job-warm + 3 recovered
        print(f"  summary: jobs_completed={summary['jobs_completed']:.0f}, "
              f"cache_hit_rate={summary['cache_hit_rate']:.2f}")
        service.close()
        print("queued workload survived the kill: nothing lost, "
              "nothing duplicated, cache warm across processes.")


if __name__ == "__main__":
    main()
