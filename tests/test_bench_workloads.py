"""Tests for the benchmark workload definitions and reporting helpers."""

from __future__ import annotations

import pytest

from repro.bench import (
    PAPER_CALIBRATION,
    PROBLEM_4K,
    PROBLEM_8K,
    TABLE4_PROBLEMS,
    figure6_workloads,
    format_scaling_figure,
    format_table,
    paper_reference_table4,
    scaled_for_functional_run,
    strong_scaling_4k,
    strong_scaling_8k,
    weak_scaling_4k,
    weak_scaling_8k,
)


class TestWorkloads:
    def test_table4_has_fifteen_problems(self):
        assert len(TABLE4_PROBLEMS) == 15
        assert all(str(p) in paper_reference_table4 for p in TABLE4_PROBLEMS)

    def test_4k_and_8k_definitions(self):
        assert (PROBLEM_4K.nx, PROBLEM_4K.nz) == (4096, 4096)
        assert PROBLEM_8K.output_bytes() == 4 * 8192**3
        assert PROBLEM_4K.input_pixels == 2048 * 2048 * 4096

    def test_strong_scaling_grids(self):
        points = strong_scaling_4k()
        assert [p.n_gpus for p in points] == [32, 64, 128, 256, 512, 1024, 2048]
        assert all(p.rows == 32 for p in points)
        points8k = strong_scaling_8k()
        assert all(p.rows == 256 for p in points8k)
        assert points8k[0].columns == 1

    def test_weak_scaling_projection_counts(self):
        points = weak_scaling_4k()
        assert points[0].problem.np_ == 16 * 32
        assert points[-1].problem.np_ == 16 * 2048
        points8k = weak_scaling_8k()
        assert points8k[-1].problem.np_ == 4 * 2048

    def test_figure6_series_skip_infeasible_gpu_counts(self):
        series = figure6_workloads()
        assert {w.n_gpus for w in series["2048^3"]} >= {4, 8, 2048}
        # 8192^3 needs at least R=256 GPUs.
        assert min(w.n_gpus for w in series["8192^3"]) == 256

    def test_scaled_for_functional_run_respects_limits(self):
        workload = strong_scaling_4k()[3]  # 256 GPUs
        problem, rows, columns = scaled_for_functional_run(workload, max_ranks=8)
        assert rows * columns <= 8
        assert problem.nx <= 64 and problem.np_ % (rows * columns) == 0

    def test_calibration_entries_documented(self):
        assert PAPER_CALIBRATION["bw_store"].value == pytest.approx(28.5e9)
        for entry in PAPER_CALIBRATION.values():
            assert entry.source  # provenance is mandatory


class TestReporting:
    def test_format_table_renders_all_columns(self):
        rows = [{"a": 1.234, "b": "x"}, {"a": float("nan"), "b": "y"}]
        text = format_table(rows, ["a", "b"], title="T")
        assert "T" in text and "N/A" in text and "1.2" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], ["a"], title="T")

    def test_format_scaling_figure(self):
        series = {"4096^3": [{"gpus": 32, "gups": 5851.0}, {"gpus": 64, "gups": 9134.0}]}
        text = format_scaling_figure(series, x_key="gpus", y_key="gups", title="Fig6")
        assert "32:5851.0" in text and "Fig6" in text

    def test_reference_table_contains_na_entries(self):
        assert paper_reference_table4["512x512x1024->1024x1024x2048"]["RTK-32"] is None
