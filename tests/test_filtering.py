"""Unit tests for repro.core.filtering (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.filtering import (
    RAMP_FILTERS,
    FilteringStage,
    apply_ramp_filter,
    cosine_weight_table,
    fdk_normalization,
    fdk_weight_and_filter,
    filter_projections,
    measure_filtering_throughput,
    ramp_filter_frequency_response,
    ramp_kernel_spatial,
)
from repro.core.types import ProjectionStack


class TestCosineWeight:
    def test_center_weight_is_one(self, small_geometry):
        table = cosine_weight_table(small_geometry)
        assert table.shape == (small_geometry.nv, small_geometry.nu)
        cv, cu = (small_geometry.nv - 1) // 2, (small_geometry.nu - 1) // 2
        assert float(table[cv, cu]) == pytest.approx(1.0, abs=0.01)

    def test_weights_decrease_towards_corners(self, small_geometry):
        table = cosine_weight_table(small_geometry)
        assert table[0, 0] < table[small_geometry.nv // 2, small_geometry.nu // 2]
        assert np.all(table > 0) and np.all(table <= 1.0)

    def test_symmetry(self, small_geometry):
        table = cosine_weight_table(small_geometry)
        np.testing.assert_allclose(table, table[::-1, :], atol=1e-6)
        np.testing.assert_allclose(table, table[:, ::-1], atol=1e-6)


class TestRampKernel:
    def test_kak_slaney_taps(self):
        tau = 2.0
        kernel = ramp_kernel_spatial(8, tau)
        assert kernel[0] == pytest.approx(1.0 / (4 * tau * tau))
        assert kernel[1] == pytest.approx(-1.0 / (np.pi * 1 * tau) ** 2)
        assert kernel[2] == 0.0
        assert kernel[3] == pytest.approx(-1.0 / (np.pi * 3 * tau) ** 2)

    def test_rejects_invalid_args(self):
        with pytest.raises(ValueError):
            ramp_kernel_spatial(1, 1.0)
        with pytest.raises(ValueError):
            ramp_kernel_spatial(8, 0.0)

    def test_response_is_real_and_nonnegative(self):
        resp = ramp_filter_frequency_response(64, 1.0)
        assert resp.shape[0] >= 128
        assert np.all(resp >= -1e-9)
        # The band-limited (Kak & Slaney) kernel has a small positive DC gain
        # that shrinks with the FFT length; it must be far below the Nyquist gain.
        assert resp[0] < 0.01 * resp[len(resp) // 2]

    @pytest.mark.parametrize("window", RAMP_FILTERS)
    def test_all_windows_supported(self, window):
        resp = ramp_filter_frequency_response(32, 1.0, window)
        assert np.all(np.isfinite(resp))

    def test_windowed_responses_attenuate_high_frequencies(self):
        ram_lak = ramp_filter_frequency_response(64, 1.0, "ram-lak")
        hann = ramp_filter_frequency_response(64, 1.0, "hann")
        nyquist_bin = len(ram_lak) // 2
        assert hann[nyquist_bin] < ram_lak[nyquist_bin]

    def test_unknown_window_rejected(self):
        with pytest.raises(ValueError):
            ramp_filter_frequency_response(32, 1.0, "boxcar")


class TestApplyRampFilter:
    def test_constant_rows_filter_to_near_zero(self):
        rows = np.ones((4, 64), dtype=np.float32)
        out = apply_ramp_filter(rows, tau=1.0)
        # The ramp filter removes DC; a constant row maps to ~0 (edge effects aside).
        assert np.abs(out[:, 16:48]).max() < 0.05

    def test_impulse_response_shape(self):
        rows = np.zeros((1, 65), dtype=np.float32)
        rows[0, 32] = 1.0
        out = apply_ramp_filter(rows, tau=1.0)
        # Peak at the impulse, negative side lobes at odd offsets.
        assert out[0, 32] == pytest.approx(0.25, rel=1e-3)
        assert out[0, 31] < 0 and out[0, 33] < 0
        assert out[0, 30] == pytest.approx(0.0, abs=1e-6)

    def test_linearity(self, rng):
        a = rng.random((3, 40), dtype=np.float32)
        b = rng.random((3, 40), dtype=np.float32)
        fa = apply_ramp_filter(a, 1.0)
        fb = apply_ramp_filter(b, 1.0)
        fab = apply_ramp_filter(a + b, 1.0)
        np.testing.assert_allclose(fab, fa + fb, atol=1e-4)


class TestFilterProjections:
    def test_output_shape_and_flag(self, small_geometry, small_projections):
        filtered = filter_projections(small_projections, small_geometry)
        assert filtered.data.shape == small_projections.data.shape
        assert filtered.filtered is True
        np.testing.assert_array_equal(filtered.angles, small_projections.angles)

    def test_detector_mismatch_raises(self, small_geometry, rng):
        bad = ProjectionStack(data=rng.random((4, 8, 8)), angles=np.zeros(4))
        with pytest.raises(ValueError):
            filter_projections(bad, small_geometry)

    def test_fdk_normalization_value(self, small_geometry):
        expected = small_geometry.sad**2 * small_geometry.theta / 2.0
        assert fdk_normalization(small_geometry) == pytest.approx(expected)

    def test_fdk_weight_and_filter_is_scaled_filtering(
        self, small_geometry, small_projections
    ):
        plain = filter_projections(small_projections, small_geometry)
        scaled = fdk_weight_and_filter(small_projections, small_geometry)
        ratio = fdk_normalization(small_geometry)
        np.testing.assert_allclose(
            scaled.data, plain.data * np.float32(ratio), rtol=1e-4
        )


class TestFilteringStage:
    def test_single_and_batch_agree(self, small_geometry, small_projections):
        stage = FilteringStage(small_geometry)
        batch = stage(small_projections.data[:4])
        singles = np.stack([stage(p) for p in small_projections.data[:4]])
        np.testing.assert_allclose(batch, singles, atol=1e-5)

    def test_matches_fdk_weight_and_filter(self, small_geometry, small_projections):
        stage = FilteringStage(small_geometry)
        np.testing.assert_allclose(
            stage(small_projections.data),
            fdk_weight_and_filter(small_projections, small_geometry).data,
            atol=1e-5,
        )

    def test_counts_projections(self, small_geometry, small_projections):
        stage = FilteringStage(small_geometry)
        stage(small_projections.data[:3])
        stage(small_projections.data[0])
        assert stage.projections_filtered == 4

    def test_rejects_wrong_shape(self, small_geometry, rng):
        stage = FilteringStage(small_geometry)
        with pytest.raises(ValueError):
            stage(rng.random((3, 3)))

    def test_rejects_unknown_window(self, small_geometry):
        with pytest.raises(ValueError):
            FilteringStage(small_geometry, window="unknown")

    def test_filter_stack_wrapper(self, small_geometry, small_projections):
        stage = FilteringStage(small_geometry)
        out = stage.filter_stack(small_projections)
        assert out.filtered and out.np_ == small_projections.np_


def test_measure_filtering_throughput_positive(small_geometry):
    th = measure_filtering_throughput(small_geometry, n_projections=2, repeats=1)
    assert th > 0
