"""Tests for the in-process MPI substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import (
    ABCI_COLLECTIVES,
    CollectiveCostModel,
    RankGrid2D,
    ReduceOp,
    SpmdError,
    run_spmd,
)


class TestRunSpmd:
    def test_returns_per_rank_results(self):
        results = run_spmd(4, lambda comm: comm.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_rejects_nonpositive_ranks(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)

    def test_rank_failure_reported(self):
        def failing(comm):
            if comm.rank == 2:
                raise RuntimeError("boom")
            return comm.rank

        with pytest.raises(SpmdError) as excinfo:
            run_spmd(4, failing)
        assert any(f.rank == 2 for f in excinfo.value.failures)

    def test_extra_args_forwarded(self):
        results = run_spmd(2, lambda comm, a, b=0: a + b + comm.rank, 5, b=7)
        assert results == [12, 13]


class TestCollectives:
    def test_barrier_and_rank_size(self):
        def program(comm):
            comm.Barrier()
            return (comm.Get_rank(), comm.Get_size())

        assert run_spmd(3, program) == [(0, 3), (1, 3), (2, 3)]

    def test_bcast(self):
        def program(comm):
            buf = np.full(4, comm.rank, dtype=np.float64)
            comm.Bcast(buf, root=1)
            return buf.tolist()

        for result in run_spmd(3, program):
            assert result == [1.0, 1.0, 1.0, 1.0]

    def test_allgather_preserves_rank_order(self):
        def program(comm):
            send = np.array([comm.rank, comm.rank * 2], dtype=np.int64)
            return comm.Allgather(send).tolist()

        for result in run_spmd(4, program):
            assert result == [[0, 0], [1, 2], [2, 4], [3, 6]]

    def test_allgather_send_buffer_reusable_immediately(self):
        """MPI blocking semantics: the caller may overwrite its buffer right
        after the call returns without corrupting what siblings receive."""

        def program(comm):
            received = []
            send = np.zeros(1, dtype=np.float64)
            for round_index in range(20):
                send[0] = comm.rank * 100 + round_index
                gathered = comm.Allgather(send)
                received.append(gathered[:, 0].copy())
            return received

        results = run_spmd(4, program)
        for rounds in results:
            for round_index, gathered in enumerate(rounds):
                expected = [rank * 100 + round_index for rank in range(4)]
                assert gathered.tolist() == expected

    def test_reduce_sum_only_root_receives(self):
        def program(comm):
            send = np.full(3, float(comm.rank + 1))
            out = comm.Reduce(send, op=ReduceOp.SUM, root=0)
            return None if out is None else out.tolist()

        results = run_spmd(4, program)
        assert results[0] == [10.0, 10.0, 10.0]
        assert results[1] is None

    @pytest.mark.parametrize("op,expected", [
        (ReduceOp.SUM, 6.0), (ReduceOp.PROD, 6.0), (ReduceOp.MAX, 3.0), (ReduceOp.MIN, 1.0),
    ])
    def test_allreduce_operators(self, op, expected):
        def program(comm):
            send = np.array([float(comm.rank + 1)])
            return float(comm.Allreduce(send, op=op)[0])

        assert all(r == expected for r in run_spmd(3, program))

    def test_gather_and_scatter(self):
        def program(comm):
            send = np.array([comm.rank], dtype=np.int64)
            gathered = comm.Gather(send, None, root=0)
            if comm.rank == 0:
                table = gathered * 10
            else:
                table = None
            recv = np.zeros(1, dtype=np.int64)
            comm.Scatter(table, recv, root=0)
            return int(recv[0])

        assert run_spmd(4, program) == [0, 10, 20, 30]

    def test_send_recv(self):
        def program(comm):
            if comm.rank == 0:
                comm.Send(np.array([42.0]), dest=1, tag=7)
                return None
            buf = np.zeros(1)
            comm.Recv(buf, source=0, tag=7)
            return float(buf[0])

        assert run_spmd(2, program)[1] == 42.0

    def test_split_groups_and_orders(self):
        def program(comm):
            color = comm.rank % 2
            sub = comm.Split(color=color, key=-comm.rank)  # reverse order inside group
            return (color, sub.rank, sub.size)

        results = run_spmd(4, program)
        # Group {0, 2}: key -2 < 0, so rank 2 becomes sub-rank 0.
        assert results[2] == (0, 0, 2)
        assert results[0] == (0, 1, 2)
        assert results[1][2] == 2

    def test_collective_accounting(self):
        def program(comm):
            comm.Allgather(np.zeros(10, dtype=np.float32))
            comm.Barrier()
            return comm.collective_calls

        calls = run_spmd(2, program)[0]
        assert calls["Allgather"] == 2  # one call per rank
        assert calls["Barrier"] == 2

    def test_invalid_root_rejected(self):
        def program(comm):
            comm.Bcast(np.zeros(1), root=5)

        with pytest.raises(SpmdError):
            run_spmd(2, program)


class TestRankGrid:
    def test_column_major_layout_matches_figure3(self):
        # Figure 3a: 32 ranks, R=8, C=4 -> rank 9 sits at row 1, column 1.
        grid = RankGrid2D(rows=8, columns=4)
        pos = grid.position(9)
        assert (pos.row, pos.column) == (1, 1)
        assert grid.global_rank(1, 1) == 9

    def test_members(self):
        grid = RankGrid2D(rows=4, columns=2)
        assert grid.column_members(1) == [4, 5, 6, 7]
        assert grid.row_members(2) == [2, 6]

    def test_bounds(self):
        grid = RankGrid2D(rows=2, columns=2)
        with pytest.raises(ValueError):
            grid.position(4)
        with pytest.raises(ValueError):
            grid.global_rank(2, 0)

    def test_split_creates_row_and_column_communicators(self):
        grid = RankGrid2D(rows=2, columns=2)

        def program(comm):
            pos, col_comm, row_comm = grid.split(comm)
            col_sum = col_comm.Allreduce(np.array([float(comm.rank)]))
            row_sum = row_comm.Allreduce(np.array([float(comm.rank)]))
            return (pos.row, pos.column, float(col_sum[0]), float(row_sum[0]))

        results = run_spmd(4, program)
        # Columns are {0,1} and {2,3}; rows are {0,2} and {1,3}.
        assert results[0] == (0, 0, 1.0, 2.0)
        assert results[3] == (1, 1, 5.0, 4.0)

    def test_split_size_mismatch(self):
        grid = RankGrid2D(rows=4, columns=4)

        def program(comm):
            grid.split(comm)

        with pytest.raises(SpmdError):
            run_spmd(2, program)


class TestCollectiveCostModel:
    def test_allgather_scales_with_group_size(self):
        m = CollectiveCostModel()
        t8 = m.allgather_seconds(16 << 20, 8)
        t32 = m.allgather_seconds(16 << 20, 32)
        assert t32 > t8
        assert m.allgather_seconds(16 << 20, 1) == 0.0

    def test_reduce_dominated_by_bandwidth_for_large_buffers(self):
        m = CollectiveCostModel()
        t = m.reduce_seconds(8 << 30, 16)
        assert t == pytest.approx((8 << 30) / m.reduce_bandwidth, rel=0.01)

    def test_abci_calibration_anchors(self):
        # One 16 MB projection AllGather across a 32-rank column ~0.25 s (Table 5).
        t_ag = ABCI_COLLECTIVES.allgather_seconds(2048 * 2048 * 4, 32)
        assert 0.15 < t_ag < 0.4
        # 8 GB Reduce ~2.7 s (Section 5.3.3).
        t_red = ABCI_COLLECTIVES.reduce_seconds(8 * 2**30, 8)
        assert 2.0 < t_red < 3.5

    def test_invalid_inputs(self):
        m = CollectiveCostModel()
        with pytest.raises(ValueError):
            m.allgather_seconds(-1, 4)
        with pytest.raises(ValueError):
            m.reduce_seconds(10, 0)
        with pytest.raises(ValueError):
            CollectiveCostModel(allgather_bandwidth=0)
