"""Known-good fixture: every guarded access holds the right lock."""

import threading


class Service:
    def __init__(self):
        self._lock = threading.RLock()
        self.jobs = {}  # guarded-by: _lock
        self.clock = 0.0  # guarded-by: _lock

    def snapshot(self):
        with self._lock:
            return dict(self.jobs), self.clock

    def advance(self, dt):
        with self._lock:
            self.clock += dt
            self._advance_locked()

    def _advance_locked(self):  # caller-locked
        self.jobs.clear()


class CallerGuarded:
    """The `caller` guard documents external serialization; not enforced."""

    def __init__(self):
        self._items = []  # guarded-by: caller

    def push(self, item):
        self._items.append(item)
