"""Fixture: suppression with a reason works; without one it is a finding."""

import numpy as np


def suppressed_with_reason():
    return np.arange(10)  # repro-lint: disable=dtype-discipline -- fixture: integer index table, promotion is fine


def suppressed_missing_reason():
    return np.arange(10)  # repro-lint: disable=dtype-discipline
