"""Known-good fixture: main() maps ValueError to exit code 2."""

import sys


def main(argv=None):
    try:
        return run(argv)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def run(argv):
    return 0
