"""Known-good fixture: process pools get module-level functions only.

Thread pools are exempt by design: their closures never cross a process
boundary (the parallel backend depends on that).
"""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Optional


def work(payload):
    return payload


def init_worker():
    pass


class Dispatcher:
    def __init__(self):
        self._executor: Optional[ProcessPoolExecutor] = None
        self._threads = ThreadPoolExecutor(2)

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(2, initializer=init_worker)
        return self._executor

    def ok_module_function(self):
        self._ensure().submit(work, 1)

    def ok_thread_pool_closure(self):
        local = []
        self._threads.submit(lambda: local.append(1))
