"""Known-bad fixture: unpicklable work shipped to a process pool."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Optional


def module_level(x):
    return x


class Dispatcher:
    def __init__(self):
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(2)
        return self._executor

    def bad_lambda(self):
        self._executor.submit(lambda: 1)

    def bad_bound_method(self):
        executor = self._ensure()
        executor.submit(self.helper, 1)

    def helper(self, x):
        return x

    def bad_nested_def(self):
        def inner():
            return 1

        self._ensure().submit(inner)

    def bad_initializer(self):
        return ProcessPoolExecutor(2, initializer=lambda: None)


def bad_fork_start():
    multiprocessing.set_start_method("fork")
