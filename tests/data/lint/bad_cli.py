"""Known-bad fixture: main() without the ValueError -> exit 2 contract."""


def main(argv=None):
    return run(argv)


def run(argv):
    return 0
