"""Known-good fixture: every handler stays behind the guard boundary."""


class Handler:
    def do_GET(self):
        self._guard(self._route_get)

    def do_POST(self):
        try:
            self._route_post()
        except Exception:
            self._send_error()

    def _guard(self, route):
        try:
            route()
        except Exception:
            self._send_error()

    def _route_get(self):
        pass

    def _route_post(self):
        pass

    def _send_error(self):
        pass
