"""Known-good fixture: every constructor states its dtype.

Explicit float64 is allowed (stated intent, e.g. geometry tables built in
double then cast), and bare Python floats are weak-typed — they preserve a
float32 array's dtype.
"""

import numpy as np


def good_explicit_f32():
    return np.zeros((4, 4), dtype=np.float32)


def good_explicit_f64_table(n):
    return np.arange(n, dtype=np.float64)


def good_weak_scalar(volume):
    return volume * 0.5
