"""Known-bad fixture: guarded attributes touched without their lock."""

import threading


class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self.jobs = {}  # guarded-by: _lock
        self.clock = 0.0  # guarded-by: _lock

    def ok_locked(self):
        with self._lock:
            return dict(self.jobs)

    def bad_read(self):
        return len(self.jobs)

    def bad_write(self):
        self.clock = 1.0

    def bad_escaping_closure(self):
        with self._lock:
            def later():
                return self.jobs

            return later
