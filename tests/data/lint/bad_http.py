"""Known-bad fixture: HTTP handlers that leak exceptions."""


class Handler:
    def do_GET(self):
        self._route()

    def do_POST(self):
        body = self._read_body()
        self._guard(lambda: body)

    def _guard(self, route):
        try:
            route()
        except Exception:
            pass

    def _route(self):
        pass

    def _read_body(self):
        return b""
