"""Known-bad fixture: hidden RNG state and wall-clock reads."""

import random
import time

import numpy as np


def bad_global_seed():
    np.random.seed(0)


def bad_global_draw():
    return np.random.normal(size=4)


def bad_stdlib_random():
    return random.random()


def bad_wall_clock():
    return time.time()
