"""Known-good fixture: explicitly seeded state and monotonic clocks."""

import random
import time

import numpy as np


def good_seeded_generator(seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=4)


def good_stdlib_instance(seed):
    rng = random.Random(seed)
    return rng.random()


def good_duration_clock():
    start = time.perf_counter()
    return time.perf_counter() - start
