"""Known-bad fixture: silent float64 promotion on the hot path."""

import numpy as np


def bad_arange():
    return np.arange(10)


def bad_zeros():
    return np.zeros((4, 4))


def bad_scalar_promotion(volume):
    return volume * np.float64(0.5)
