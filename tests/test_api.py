"""Tests for the declarative plan / session front door (``repro.api``).

Three layers of guarantees:

1. **Serialization** — lossless JSON round-trips and a canonical content
   hash that is stable across field ordering and across processes (the
   golden plan's key is pinned).
2. **Execution equivalence** — a plan serialized, reloaded and executed
   through a :class:`Session` produces a bit-identical volume to the
   equivalent direct :class:`FDKReconstructor` call, for every registered
   backend and every execution target that shares the single-node compute
   path.
3. **Identity threading** — the plan's filtering identity is exactly what
   the service cache keys on, and the shims (``FDKReconstructor.from_plan``,
   ``IFDKConfig.from_plan``, ``ReconstructionJob.from_plan``) agree with
   the keyword constructors they wrap.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    PLAN_VERSION,
    TARGETS,
    ReconstructionPlan,
    Session,
    filter_cache_identity,
    plan_for_problem,
    run_plan,
)
from repro.backends import available_backends
from repro.core import FDKReconstructor, default_geometry_for_problem
from repro.pipeline import IFDKConfig
from repro.scenarios import get_scenario
from repro.service import CacheKey, ReconstructionJob

GOLDEN_PLAN = Path(__file__).parent / "data" / "golden_plan.json"

#: Pinned canonical identity of the checked-in golden plan.  These values
#: must be stable across processes, machines and Python versions: if this
#: test fails, the plan hashing scheme changed and every persisted plan
#: key (service cache identities, job records) silently rotated.
GOLDEN_PLAN_KEY = "71956b86874bea67"
GOLDEN_PLAN_FILTER_KEY = "bd5d11dd272ac233"


def small_plan(**fields) -> ReconstructionPlan:
    return plan_for_problem("48x48x24->32x32x32", **fields)


# --------------------------------------------------------------------------- #
# Serialization: lossless round-trips, canonical hashing
# --------------------------------------------------------------------------- #
class TestPlanSerialization:
    def test_json_round_trip_is_lossless(self):
        plan = small_plan(backend="vectorized", scenario="short_scan",
                          slo_seconds=12.5)
        restored = ReconstructionPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.key() == plan.key()

    def test_dict_round_trip_is_lossless(self):
        plan = small_plan(target="ifdk", rows=2, columns=2, workers=None)
        assert ReconstructionPlan.from_dict(plan.to_dict()) == plan

    def test_key_is_stable_across_field_ordering(self):
        plan = small_plan(backend="blocked")
        payload = plan.to_dict()
        shuffled = {k: payload[k] for k in reversed(list(payload))}
        shuffled["geometry"] = {
            k: payload["geometry"][k] for k in reversed(list(payload["geometry"]))
        }
        restored = ReconstructionPlan.from_json(json.dumps(shuffled))
        assert restored == plan
        assert restored.key() == plan.key()

    def test_key_distinguishes_every_field(self):
        base = small_plan()
        variants = [
            base.with_updates(backend="vectorized"),
            base.with_updates(scenario="sparse_view"),
            base.with_updates(ramp_filter="hann"),
            base.with_updates(algorithm="standard"),
            base.with_updates(workers=4),
            base.with_updates(target="service"),
            base.with_updates(priority=0),
            base.with_updates(target="service", tenant_weight=2.0),
            base.with_updates(target="service", max_inflight=2),
            base.with_updates(streaming=True),
            base.with_updates(streaming=True, chunk_size=4),
            base.with_updates(streaming=True, memory_budget_bytes=1 << 26),
            base.with_updates(geometry=default_geometry_for_problem(
                nu=48, nv=48, np_=24, nx=32, ny=32, nz=16)),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == 1 + len(variants)

    def test_unknown_plan_field_rejected(self):
        payload = small_plan().to_dict()
        payload["worker_count"] = 4
        with pytest.raises(ValueError, match="unknown plan field.*worker_count"):
            ReconstructionPlan.from_dict(payload)

    def test_unknown_geometry_field_rejected(self):
        payload = small_plan().to_dict()
        payload["geometry"]["pitch"] = 1.0
        with pytest.raises(ValueError, match="unknown geometry field"):
            ReconstructionPlan.from_dict(payload)

    def test_missing_geometry_rejected(self):
        payload = small_plan().to_dict()
        del payload["geometry"]
        with pytest.raises(ValueError, match="geometry"):
            ReconstructionPlan.from_dict(payload)

    def test_malformed_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            ReconstructionPlan.from_json("{not json")

    def test_unsupported_version_rejected(self):
        payload = small_plan().to_dict()
        payload["version"] = PLAN_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            ReconstructionPlan.from_dict(payload)

    def test_golden_plan_key_is_pinned(self):
        plan = ReconstructionPlan.from_json(GOLDEN_PLAN.read_text())
        plan.validate()
        assert plan.key() == GOLDEN_PLAN_KEY
        assert plan.filter_key() == GOLDEN_PLAN_FILTER_KEY
        # The checked-in file is the canonical serialization of itself.
        assert plan.to_json() + "\n" == GOLDEN_PLAN.read_text()


# --------------------------------------------------------------------------- #
# Property tests: round-trips over the whole plan space
# --------------------------------------------------------------------------- #
def geometries():
    dims = st.integers(min_value=2, max_value=64)
    factor = st.floats(min_value=2.5, max_value=8.0,
                       allow_nan=False, allow_infinity=False)
    return st.builds(
        lambda nu, nv, np_, nx, ny, nz, sad_factor: default_geometry_for_problem(
            nu=nu, nv=nv, np_=np_, nx=nx, ny=ny, nz=nz, sad_factor=sad_factor
        ),
        dims, dims, dims, dims, dims, dims, factor,
    )


def plans():
    return st.builds(
        ReconstructionPlan,
        geometry=geometries(),
        target=st.sampled_from(TARGETS),
        scenario=st.sampled_from(("full_scan", "short_scan", "sparse_view")),
        backend=st.sampled_from(available_backends()),
        workers=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
        ramp_filter=st.sampled_from(("ram-lak", "shepp-logan", "hann")),
        algorithm=st.sampled_from(("proposed", "standard")),
        rows=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
        columns=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
        cluster_gpus=st.integers(min_value=1, max_value=64),
        tenant=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=12,
        ),
        priority=st.integers(min_value=0, max_value=5),
        slo_seconds=st.one_of(
            st.none(),
            st.floats(min_value=0.1, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
        ),
        streaming=st.booleans(),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
        memory_budget_bytes=st.one_of(
            st.none(), st.integers(min_value=1 << 20, max_value=1 << 34)
        ),
    )


class TestPlanProperties:
    @settings(max_examples=100, deadline=None)
    @given(plan=plans())
    def test_from_json_to_json_round_trip(self, plan):
        restored = ReconstructionPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.key() == plan.key()

    @settings(max_examples=50, deadline=None)
    @given(plan=plans(), data=st.data())
    def test_key_invariant_under_field_ordering(self, plan, data):
        payload = plan.to_dict()
        order = data.draw(st.permutations(list(payload)))
        shuffled = {k: payload[k] for k in order}
        assert ReconstructionPlan.from_dict(shuffled).key() == plan.key()

    @settings(max_examples=50, deadline=None)
    @given(plan=plans())
    def test_filter_key_ignores_execution_fields(self, plan):
        same = [
            plan.with_updates(workers=None),
            plan.with_updates(backend="reference"),
            plan.with_updates(target="fdk", rows=None, columns=None),
            plan.with_updates(algorithm="standard"),
            plan.with_updates(priority=0, tenant="other", slo_seconds=None),
            plan.with_updates(streaming=True, chunk_size=8,
                              memory_budget_bytes=1 << 28),
        ]
        assert {p.filter_key() for p in same} == {plan.filter_key()}

    @settings(max_examples=50, deadline=None)
    @given(plan=plans())
    def test_filter_key_tracks_acquisition_identity(self, plan):
        different = [
            plan.with_updates(ramp_filter="cosine"),
            plan.with_updates(geometry=plan.geometry.with_detector(
                plan.geometry.nu + 1, plan.geometry.nv)),
        ]
        if plan.scenario != "short_scan":
            different.append(plan.with_updates(scenario="short_scan"))
        for other in different:
            assert other.filter_key() != plan.filter_key()


# --------------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------------- #
class TestPlanValidation:
    def test_valid_plan_chains(self):
        plan = small_plan()
        assert plan.validate() is plan

    @pytest.mark.parametrize("fields, match", [
        (dict(target="cloud"), "unknown plan target"),
        (dict(ramp_filter="butterworth"), "unknown ramp filter"),
        (dict(algorithm="fancy"), "proposed"),
        (dict(dtype="float64"), "float32"),
        (dict(backend="cuda"), "unknown backend"),
        (dict(workers=2), "parallel"),
        (dict(backend="parallel", workers=0), "positive"),
        (dict(target="ifdk", rows=2), "rows and columns"),
        (dict(rows=2, columns=2), "only apply to the ifdk target"),
        (dict(target="ifdk", rows=5, columns=5), "divisible"),
        (dict(target="ifdk", rows=2, columns=2, scenario="short_scan"),
         "single-node"),
        (dict(target="service", cluster_gpus=0), "cluster_gpus"),
        (dict(target="service", priority=-1), "priority"),
        (dict(target="service", slo_seconds=0.0), "slo_seconds"),
        (dict(scenario="helical"), "unknown scenario"),
    ])
    def test_invalid_plans_rejected(self, fields, match):
        with pytest.raises(ValueError, match=match):
            small_plan(**fields).validate()

    def test_service_target_allows_workers_on_any_backend(self):
        # Service workers size the dispatcher, not a backend pool.
        small_plan(target="service", workers=2).validate()

    def test_plan_for_problem_rejects_non_problems(self):
        with pytest.raises(ValueError, match="problem"):
            plan_for_problem(42)


# --------------------------------------------------------------------------- #
# Execution equivalence (the acceptance criterion)
# --------------------------------------------------------------------------- #
class TestSessionExecution:
    @pytest.mark.parametrize("backend", available_backends())
    def test_serialized_plan_matches_direct_fdk_bit_for_bit(
        self, backend, small_geometry, small_projections
    ):
        """JSON round-trip + Session == direct FDKReconstructor, exactly."""
        plan = ReconstructionPlan(geometry=small_geometry, backend=backend)
        reloaded = ReconstructionPlan.from_json(plan.to_json())
        with Session(reloaded) as session:
            result = session.run(small_projections)
        direct = FDKReconstructor(
            geometry=small_geometry, backend=backend
        ).reconstruct(small_projections)
        np.testing.assert_array_equal(result.volume.data, direct.volume.data)
        assert result.plan_key == plan.key()
        assert result.target == "fdk"

    def test_scenario_plan_matches_direct_scenario_path(
        self, small_geometry, small_projections
    ):
        from repro.scenarios import reconstruct_scenario

        plan = ReconstructionPlan(
            geometry=small_geometry, scenario="short_scan", backend="vectorized"
        )
        result = run_plan(plan, small_projections)
        direct = reconstruct_scenario(
            "short_scan", small_geometry, small_projections, backend="vectorized"
        )
        np.testing.assert_array_equal(result.volume.data, direct.volume.data)
        assert result.problem.np_ < small_geometry.np_

    def test_scenario_session_accepts_pre_transformed_stack(
        self, small_geometry, small_projections
    ):
        scenario = get_scenario("sparse_view")
        _, scenario_stack = scenario.apply(small_geometry, small_projections)
        plan = ReconstructionPlan(geometry=small_geometry, scenario="sparse_view")
        with Session(plan) as session:
            via_base = session.run(small_projections)
            via_transformed = session.run(scenario_stack)
        np.testing.assert_array_equal(
            via_base.volume.data, via_transformed.volume.data
        )

    def test_session_rejects_mismatched_stack(self, small_geometry, small_projections):
        plan = ReconstructionPlan(
            geometry=small_geometry.with_detector(
                small_geometry.nu - 8, small_geometry.nv
            ),
            scenario="short_scan",
        )
        with Session(plan) as session, pytest.raises(ValueError, match="matches"):
            session.run(small_projections)

    def test_ifdk_target_runs_and_matches_single_node(
        self, small_geometry, small_projections
    ):
        plan = ReconstructionPlan(
            geometry=small_geometry, target="ifdk", rows=2, columns=2,
            backend="vectorized",
        )
        result = run_plan(plan, small_projections)
        single = run_plan(
            ReconstructionPlan(geometry=small_geometry, backend="vectorized"),
            small_projections,
        )
        assert result.details["rows"] == 2 and result.details["columns"] == 2
        np.testing.assert_allclose(
            result.volume.data, single.volume.data, atol=1e-4
        )

    def test_service_target_returns_volume_and_job_record(
        self, small_geometry, small_projections
    ):
        plan = ReconstructionPlan(
            geometry=small_geometry, target="service", cluster_gpus=8,
            slo_seconds=120.0, tenant="api-test",
        )
        result = run_plan(plan, small_projections)
        fdk = run_plan(
            ReconstructionPlan(geometry=small_geometry), small_projections
        )
        np.testing.assert_array_equal(result.volume.data, fdk.volume.data)
        job = result.details["job"]
        assert result.details["accepted"]
        assert job["state"] == "completed"
        assert job["tenant"] == "api-test"
        assert job["plan_key"] == plan.key()

    def test_run_result_record_is_flat_and_keyed(self, small_geometry, small_projections):
        plan = ReconstructionPlan(geometry=small_geometry)
        record = run_plan(plan, small_projections).as_record()
        assert record["plan_key"] == plan.key()
        assert record["gups"] > 0
        assert record["target"] == "fdk"

    def test_session_rejects_invalid_plan(self, small_geometry):
        with pytest.raises(ValueError, match="unknown backend"):
            Session(ReconstructionPlan(geometry=small_geometry, backend="cuda"))


# --------------------------------------------------------------------------- #
# Constructor shims and identity threading
# --------------------------------------------------------------------------- #
class TestPlanShims:
    def test_fdk_reconstructor_from_plan(self, small_geometry, small_projections):
        plan = ReconstructionPlan(geometry=small_geometry, backend="blocked")
        with FDKReconstructor.from_plan(plan) as via_plan:
            a = via_plan.reconstruct(small_projections).volume
        b = FDKReconstructor(
            geometry=small_geometry, backend="blocked"
        ).reconstruct(small_projections).volume
        np.testing.assert_array_equal(a.data, b.data)

    def test_fdk_from_plan_resolves_scenario_geometry(self, small_geometry):
        plan = ReconstructionPlan(geometry=small_geometry, scenario="short_scan")
        reconstructor = FDKReconstructor.from_plan(plan)
        assert reconstructor.geometry.np_ < small_geometry.np_
        assert reconstructor.scenario is not None

    def test_ifdk_config_from_plan(self, small_geometry):
        plan = ReconstructionPlan(
            geometry=small_geometry, target="ifdk", rows=2, columns=2,
            ramp_filter="hann", backend="vectorized",
        )
        config = IFDKConfig.from_plan(plan)
        assert config.rows == 2 and config.columns == 2
        assert config.ramp_filter == "hann"
        assert config.backend == "vectorized"
        assert config.geometry == small_geometry

    def test_ifdk_config_from_plan_requires_grid(self, small_geometry):
        plan = ReconstructionPlan(geometry=small_geometry)
        with pytest.raises(ValueError, match="rows and columns"):
            IFDKConfig.from_plan(plan)

    def test_ifdk_config_from_plan_rejects_non_ideal_scenario(self, small_geometry):
        # A scenario plan must never silently become a full-scan config.
        plan = ReconstructionPlan(
            geometry=small_geometry, scenario="short_scan", rows=2, columns=2
        )
        with pytest.raises(ValueError, match="full scan"):
            IFDKConfig.from_plan(plan)

    def test_job_from_plan_carries_identity_and_qos(self, small_geometry):
        plan = ReconstructionPlan(
            geometry=small_geometry, target="service", scenario="sparse_view",
            backend="vectorized", priority=0, slo_seconds=30.0, tenant="t-9",
        )
        job = ReconstructionJob.from_plan(plan, dataset_id="ds-7")
        assert job.plan_key == plan.key()
        assert job.problem == plan.problem
        assert job.scenario == "sparse_view"
        assert job.backend == "vectorized"
        assert (job.tenant, job.priority, job.slo_seconds) == ("t-9", 0, 30.0)
        overridden = ReconstructionJob.from_plan(plan, priority=3)
        assert overridden.priority == 3

    def test_cache_key_from_plan_equals_for_job(self, small_geometry):
        plan = ReconstructionPlan(
            geometry=small_geometry, target="service", scenario="short_scan"
        )
        job = ReconstructionJob.from_plan(plan, dataset_id="ds-1")
        assert CacheKey.for_job(job) == CacheKey.from_plan(plan, "ds-1")
        assert CacheKey.from_plan(plan, "ds-1").filter_key == plan.filter_key()

    def test_filter_cache_identity_is_shared(self):
        direct = filter_cache_identity(
            ramp_filter="ram-lak", nu=48, nv=48, np_=24, scenario="full"
        )
        key = CacheKey(dataset_id="x", ramp_filter="ram-lak", nu=48, nv=48, np_=24)
        assert key.filter_key == direct


class TestPlanFieldTypes:
    """Wrong-typed plan-file fields are ValueErrors (the CLI exit-2 path),
    and validate() rejects non-integers that the canonical dict would
    silently truncate (protecting the lossless round-trip)."""

    @pytest.mark.parametrize("field, value", [
        ("priority", [1]),
        ("workers", [4]),
        ("cluster_gpus", "many"),
        ("slo_seconds", [1.0]),
    ])
    def test_wrong_typed_plan_field_is_value_error(self, field, value):
        payload = small_plan().to_dict()
        payload[field] = value
        with pytest.raises(ValueError, match=field):
            ReconstructionPlan.from_dict(payload)

    def test_wrong_typed_geometry_field_is_value_error(self):
        payload = small_plan().to_dict()
        payload["geometry"]["nu"] = None
        with pytest.raises(ValueError, match="geometry.nu"):
            ReconstructionPlan.from_dict(payload)

    @pytest.mark.parametrize("fields", [
        dict(target="service", workers=2.5),
        dict(target="service", priority=1.5),
        dict(cluster_gpus=16.0),
        dict(target="ifdk", rows=2.0, columns=2),
    ])
    def test_validate_rejects_non_integer_scalars(self, fields):
        with pytest.raises(ValueError, match="integer"):
            small_plan(**fields).validate()


class TestPlanFieldTypeStrictness:
    """from_dict must never reinterpret what the author wrote."""

    @pytest.mark.parametrize("field, value", [
        ("workers", 2.5),
        ("priority", 1.5),
        ("workers", True),
        ("cluster_gpus", False),
    ])
    def test_lossy_numerics_rejected_at_parse_time(self, field, value):
        payload = small_plan().to_dict()
        payload[field] = value
        with pytest.raises(ValueError, match=field):
            ReconstructionPlan.from_dict(payload)

    def test_integral_float_canonicalizes(self):
        # "workers": 2.0 is a JSON artifact, not a different plan.
        payload = small_plan(backend="parallel", workers=2).to_dict()
        reference_key = ReconstructionPlan.from_dict(dict(payload)).key()
        payload["workers"] = 2.0
        plan = ReconstructionPlan.from_dict(payload)
        assert plan.workers == 2
        assert plan.key() == reference_key


class TestQoSFieldScoping:
    """QoS fields are service-only: inert-but-hashed fields must not give
    two identical executions different plan keys."""

    @pytest.mark.parametrize("fields", [
        dict(slo_seconds=45.0),
        dict(cluster_gpus=8),
        dict(priority=0),
        dict(tenant="x"),
    ])
    def test_qos_on_non_service_target_rejected(self, fields):
        with pytest.raises(ValueError, match="service"):
            small_plan(**fields).validate()

    def test_qos_on_service_target_accepted(self):
        small_plan(target="service", slo_seconds=45.0, cluster_gpus=8,
                   priority=0, tenant="x").validate()


class TestStreamingFieldScoping:
    """Streaming fields are fdk-only execution knobs: valid combinations
    validate, impossible or off-target ones are loud ValueErrors."""

    def test_streaming_fdk_plan_validates(self):
        small_plan(streaming=True).validate()
        small_plan(streaming=True, chunk_size=4).validate()
        small_plan(streaming=True, memory_budget_bytes=1 << 26).validate()

    @pytest.mark.parametrize("fields, match", [
        (dict(streaming=True, target="service", cluster_gpus=8),
         "only wired for the fdk target"),
        (dict(streaming=True, target="ifdk", rows=2, columns=2),
         "only wired for the fdk target"),
        (dict(chunk_size=4), "streaming"),
        (dict(memory_budget_bytes=1 << 26), "streaming"),
        (dict(streaming=True, chunk_size=0), "positive"),
        (dict(streaming=True, memory_budget_bytes=-1), "positive"),
        (dict(streaming=True, memory_budget_bytes=16), "cannot stream"),
    ])
    def test_invalid_streaming_plans_rejected(self, fields, match):
        with pytest.raises(ValueError, match=match):
            small_plan(**fields).validate()

    def test_streaming_must_be_boolean(self):
        payload = small_plan().to_dict()
        payload["streaming"] = 1
        with pytest.raises(ValueError, match="streaming.*boolean"):
            ReconstructionPlan.from_dict(payload)

    def test_streaming_budget_exceeded_by_chunk_rejected(self):
        from repro.streaming import per_projection_working_set_bytes

        plan = small_plan(streaming=True, chunk_size=16)
        budget = 2 * per_projection_working_set_bytes(plan.geometry)
        with pytest.raises(ValueError, match="largest chunk that fits"):
            plan.with_updates(memory_budget_bytes=budget).validate()

    def test_streaming_fields_reach_describe(self):
        summary = small_plan(streaming=True, chunk_size=4).describe()
        assert summary["streaming"] is True
        assert summary["chunk_size"] == 4


class TestNonFiniteRejection:
    """NaN/Infinity never reach a plan file, a key, or a validated plan."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_slo_rejected_everywhere(self, bad):
        payload = small_plan(target="service").to_dict()
        payload["slo_seconds"] = bad
        with pytest.raises(ValueError, match="finite"):
            ReconstructionPlan.from_dict(payload)
        plan = small_plan(target="service", slo_seconds=bad)
        with pytest.raises(ValueError, match="finite"):
            plan.validate()
        with pytest.raises(ValueError):
            plan.to_json()  # never emits invalid strict JSON
        with pytest.raises(ValueError):
            plan.key()

    def test_non_finite_geometry_rejected(self):
        import dataclasses as dc

        geometry = small_plan().geometry
        plan = ReconstructionPlan(
            geometry=dc.replace(geometry, angle_offset=float("nan"))
        )
        with pytest.raises(ValueError, match="angle_offset must be finite"):
            plan.validate()
