"""Tests for the dynamic lock-order sanitizer (repro.analysis.locksan)."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import LockOrderSanitizer
from repro.analysis.locksan import _TrackedLock

pytestmark = pytest.mark.lint


def _run_in_thread(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join(timeout=10)
    assert not thread.is_alive()


# --------------------------------------------------------------------- #
# Inversion detection
# --------------------------------------------------------------------- #
def test_injected_inversion_is_detected_with_both_stacks():
    sanitizer = LockOrderSanitizer()
    lock_a = sanitizer.wrap(threading.Lock(), label="lock-A")
    lock_b = sanitizer.wrap(threading.Lock(), label="lock-B")

    def forward_order():
        with lock_a:
            with lock_b:
                pass

    def reverse_order():
        with lock_b:
            with lock_a:
                pass

    # Sequential, so no real deadlock risk — the *order* is the hazard.
    _run_in_thread(forward_order)
    _run_in_thread(reverse_order)

    inversions = sanitizer.inversions
    assert len(inversions) == 1
    inversion = inversions[0]
    labels = {inversion.first_label, inversion.second_label}
    assert labels == {"lock-A", "lock-B"}
    # Both conflicting acquisition stacks are reported, one per code path.
    both_stacks = inversion.forward_stack + inversion.reverse_stack
    assert "forward_order" in both_stacks
    assert "reverse_order" in both_stacks
    assert "forward_order" not in inversion.forward_stack or (
        "reverse_order" not in inversion.forward_stack
    )
    report = sanitizer.report()
    assert "lock-A" in report and "lock-B" in report
    assert "inversion" in report


def test_consistent_order_reports_nothing():
    sanitizer = LockOrderSanitizer()
    lock_a = sanitizer.wrap(threading.Lock(), label="A")
    lock_b = sanitizer.wrap(threading.Lock(), label="B")

    def ordered():
        with lock_a:
            with lock_b:
                pass

    _run_in_thread(ordered)
    _run_in_thread(ordered)
    assert sanitizer.inversions == []
    assert sanitizer.edge_count == 1
    assert "no inversions" in sanitizer.report()


def test_reentrant_rlock_records_no_edges():
    sanitizer = LockOrderSanitizer()
    rlock = sanitizer.wrap(threading.RLock(), label="R")
    other = sanitizer.wrap(threading.Lock(), label="other")
    with rlock:
        with rlock:  # reentrant: must not create an R->R edge
            with other:
                pass
        # Still held after the inner release (reentrancy bookkeeping).
        with other:
            pass
    assert sanitizer.inversions == []
    assert sanitizer.edge_count == 1  # just R -> other


# --------------------------------------------------------------------- #
# Wrapper compatibility
# --------------------------------------------------------------------- #
def test_wrapped_lock_supports_condition_variables():
    sanitizer = LockOrderSanitizer()
    lock = sanitizer.wrap(threading.Lock(), label="buffer")
    condition = threading.Condition(lock)
    items = []

    def consumer():
        with condition:
            while not items:
                condition.wait(timeout=10)

    thread = threading.Thread(target=consumer)
    thread.start()
    with condition:
        items.append(1)
        condition.notify_all()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert sanitizer.inversions == []


def test_wrapped_rlock_delegates_is_owned():
    sanitizer = LockOrderSanitizer()
    rlock = sanitizer.wrap(threading.RLock(), label="svc")
    assert not rlock._is_owned()
    with rlock:
        assert rlock._is_owned()


# --------------------------------------------------------------------- #
# Factory installation
# --------------------------------------------------------------------- #
def test_install_wraps_project_locks_only():
    sanitizer = LockOrderSanitizer()
    sanitizer.install()
    try:
        from repro.obs.metrics import Counter

        counter = Counter("sanitized")  # lock created inside repro code
        assert isinstance(counter._lock, _TrackedLock)
        counter.inc(2)
        assert counter.value == 2

        # Two locks born on the same source line keep distinct labels,
        # so inversion reports never read "between X and X".
        other = Counter("sanitized-2")
        assert other._lock._san_label != counter._lock._san_label

        local = threading.Lock()  # created from test code: left raw
        assert not isinstance(local, _TrackedLock)
    finally:
        sanitizer.uninstall()
    # After uninstall the factories are the originals again.
    assert not isinstance(threading.Lock(), _TrackedLock)


def test_service_under_sanitizer_has_no_inversions():
    """End-to-end: a served workload under the shim records clean order."""
    sanitizer = LockOrderSanitizer()
    sanitizer.install()
    try:
        from repro.core.types import problem_from_string
        from repro.service import ReconstructionJob, ReconstructionService

        service = ReconstructionService(cluster_gpus=8)
        assert isinstance(service._lock, _TrackedLock)
        for index in range(3):
            service.submit(
                ReconstructionJob(
                    problem=problem_from_string("512x512x1024->256x256x256"),
                    job_id=f"san-{index}",
                ),
                now=float(index),
            )
        service.run_until_idle()
        assert service.report().summary["jobs_completed"] == 3
    finally:
        sanitizer.uninstall()
    assert sanitizer.inversions == []
