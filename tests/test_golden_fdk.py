"""Golden-volume regression test: numerical drift fails loudly.

A 32³ Shepp-Logan reconstruction (with seeded measurement noise) is checked
into ``tests/data/`` as the canonical output of the reference FDK pipeline.
Every future PR recomputes it and compares:

* **exact hash** — when the installed NumPy/SciPy versions match the ones
  recorded at generation time (the containers this repo is developed and
  gated in), the recomputed volume must be *bit-identical* to the golden
  one.  Any change to the reference arithmetic — an "innocent" reordering,
  a dtype slip, a changed FFT pad — trips this immediately.
* **RMSE bound** — regardless of library versions, the recomputed volume
  must stay within a tight relative RMSE of the golden one, so the test is
  still a meaningful drift detector on environments with different FFT
  builds (where bit-equality is not guaranteed).
* **backend bound** — the fast backends must also stay inside the
  conformance tolerance of the golden volume, tying the backend family to
  a fixed ground truth, not just to each other.

Regenerating the golden file (only after an *intentional* numerical
change): run this module as a script —
``PYTHONPATH=src python tests/test_golden_fdk.py`` — and commit the new
``.npz``/``.json`` pair together with the change that motivated it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.backends import BACKEND_NAMES
from repro.core import (
    EllipsoidPhantom,
    FDKReconstructor,
    default_geometry_for_problem,
    forward_project_analytic,
    shepp_logan_ellipsoids,
)
from repro.core.types import ProjectionStack

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_NPZ = DATA_DIR / "golden_fdk_32.npz"
GOLDEN_META = DATA_DIR / "golden_fdk_32.json"

SEED = 20260729
NOISE_SIGMA = 1e-3

#: Version-independent drift bound (relative RMSE against the golden volume).
DRIFT_RMSE_TOL = 1e-6
#: Conformance bound for the non-reference backends against the golden volume.
BACKEND_RMSE_TOL = 1e-5


def golden_geometry():
    return default_geometry_for_problem(nu=48, nv=48, np_=24, nx=32, ny=32, nz=32)


def golden_stack() -> ProjectionStack:
    """Deterministic Shepp-Logan projections with seeded Gaussian noise."""
    geometry = golden_geometry()
    stack = forward_project_analytic(
        EllipsoidPhantom(shepp_logan_ellipsoids()), geometry
    )
    rng = np.random.default_rng(SEED)
    return ProjectionStack(
        data=stack.data
        + rng.normal(0.0, NOISE_SIGMA, stack.data.shape).astype(np.float32),
        angles=stack.angles,
    )


def reconstruct(backend: str = "reference") -> np.ndarray:
    return (
        FDKReconstructor(geometry=golden_geometry(), backend=backend)
        .reconstruct(golden_stack())
        .volume.data
    )


@pytest.fixture(scope="module")
def golden():
    volume = np.load(GOLDEN_NPZ)["volume"]
    meta = json.loads(GOLDEN_META.read_text())
    assert volume.shape == tuple(meta["shape"])
    assert str(volume.dtype) == meta["dtype"]
    # The stored artefact itself must match its recorded hash (catches a
    # corrupted or half-regenerated checkout before blaming the code).
    assert hashlib.sha256(volume.tobytes()).hexdigest() == meta["sha256"]
    return volume, meta


@pytest.fixture(scope="module")
def recomputed():
    return reconstruct("reference")


def _environment_matches(meta: dict) -> bool:
    import scipy

    return meta["numpy"] == np.__version__ and meta["scipy"] == scipy.__version__


def rel_rmse(a: np.ndarray, b: np.ndarray) -> float:
    scale = float(np.abs(b).max()) or 1.0
    return float(np.sqrt(np.mean((a.astype(np.float64) - b) ** 2))) / scale


def test_golden_volume_exact_hash(golden, recomputed):
    volume, meta = golden
    if not _environment_matches(meta):
        pytest.skip(
            f"golden generated with numpy={meta['numpy']} scipy={meta['scipy']}; "
            "bit-exactness is only contractual on the pinned environment "
            "(the RMSE test below still guards drift here)"
        )
    digest = hashlib.sha256(recomputed.tobytes()).hexdigest()
    assert digest == meta["sha256"], (
        "reference FDK output changed bit-for-bit against the golden volume "
        f"(got {digest}); if the numerical change is intentional, regenerate "
        "tests/data/golden_fdk_32.* (see module docstring) and say so in the PR"
    )


def test_golden_volume_rmse(golden, recomputed):
    volume, _ = golden
    assert recomputed.shape == volume.shape
    drift = rel_rmse(recomputed, volume)
    assert drift <= DRIFT_RMSE_TOL, (
        f"reference FDK output drifted from the golden volume "
        f"(relative RMSE {drift:.3e} > {DRIFT_RMSE_TOL:.0e})"
    )


@pytest.mark.parametrize(
    "backend", [n for n in BACKEND_NAMES if n != "reference"]
)
def test_backends_track_golden_volume(golden, backend):
    volume, _ = golden
    assert rel_rmse(reconstruct(backend), volume) <= BACKEND_RMSE_TOL


def _regenerate() -> None:  # pragma: no cover - manual tool
    import scipy

    volume = reconstruct("reference")
    DATA_DIR.mkdir(exist_ok=True)
    np.savez_compressed(GOLDEN_NPZ, volume=volume)
    meta = {
        "sha256": hashlib.sha256(volume.tobytes()).hexdigest(),
        "dtype": str(volume.dtype),
        "shape": list(volume.shape),
        "problem": "48x48x24->32x32x32",
        "seed": SEED,
        "numpy": np.__version__,
        "scipy": scipy.__version__,
    }
    GOLDEN_META.write_text(json.dumps(meta, indent=2) + "\n")
    print(f"regenerated {GOLDEN_NPZ} ({meta['sha256']})")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
