"""Golden-volume regression tests: numerical drift fails loudly.

Two canonical reconstructions are checked into ``tests/data/`` as the
pinned outputs of the reference FDK pipeline:

* ``golden_fdk_32`` — the 32³ Shepp-Logan full-scan reconstruction (with
  seeded measurement noise) that has gated every PR since the backend
  seam landed;
* ``golden_shortscan_32`` — the same acquisition replayed through the
  ``short_scan`` scenario (π + 2Δ trajectory, Parker redundancy weights),
  pinning the scenario engine's arithmetic the same way.

Every future PR recomputes both and compares:

* **exact hash** — when the installed NumPy/SciPy versions match the ones
  recorded at generation time (the containers this repo is developed and
  gated in), the recomputed volume must be *bit-identical* to the golden
  one.  Any change to the reference arithmetic — an "innocent" reordering,
  a dtype slip, a changed FFT pad, a reweighted Parker table — trips this
  immediately.
* **RMSE bound** — regardless of library versions, the recomputed volume
  must stay within a tight relative RMSE of the golden one, so the test is
  still a meaningful drift detector on environments with different FFT
  builds (where bit-equality is not guaranteed).
* **backend bound** — the fast backends must also stay inside the
  conformance tolerance of the golden volumes, tying the backend family to
  a fixed ground truth, not just to each other.

On top of the pinned artefacts, a quality regression test reconstructs a
64³ phantom full-scan and short-scan and asserts the short scan's RMSE
against ground truth stays within 2× of the full scan's — the Parker
weighting must keep delivering usable images, not merely stable bits.

Regenerating the golden files (only after an *intentional* numerical
change): run this module as a script —
``PYTHONPATH=src python tests/test_golden_fdk.py`` — and commit the new
``.npz``/``.json`` pairs together with the change that motivated them.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.backends import BACKEND_NAMES
from repro.core import (
    EllipsoidPhantom,
    FDKReconstructor,
    default_geometry_for_problem,
    forward_project_analytic,
    shepp_logan_3d,
    shepp_logan_ellipsoids,
)
from repro.core.types import ProjectionStack
from repro.scenarios import reconstruct_scenario

DATA_DIR = Path(__file__).parent / "data"

SEED = 20260729
NOISE_SIGMA = 1e-3

#: Version-independent drift bound (relative RMSE against the golden volume).
DRIFT_RMSE_TOL = 1e-6
#: Conformance bound for the non-reference backends against the golden volume.
BACKEND_RMSE_TOL = 1e-5

#: The two pinned reconstructions: family name -> data-file stem.
FAMILIES = {
    "full": "golden_fdk_32",
    "shortscan": "golden_shortscan_32",
}


def golden_geometry():
    return default_geometry_for_problem(nu=48, nv=48, np_=24, nx=32, ny=32, nz=32)


def golden_stack() -> ProjectionStack:
    """Deterministic Shepp-Logan projections with seeded Gaussian noise."""
    geometry = golden_geometry()
    stack = forward_project_analytic(
        EllipsoidPhantom(shepp_logan_ellipsoids()), geometry
    )
    rng = np.random.default_rng(SEED)
    return ProjectionStack(
        data=stack.data
        + rng.normal(0.0, NOISE_SIGMA, stack.data.shape).astype(np.float32),
        angles=stack.angles,
    )


def reconstruct(family: str, backend: str = "reference") -> np.ndarray:
    if family == "full":
        return (
            FDKReconstructor(geometry=golden_geometry(), backend=backend)
            .reconstruct(golden_stack())
            .volume.data
        )
    if family == "shortscan":
        return reconstruct_scenario(
            "short_scan", golden_geometry(), golden_stack(), backend=backend
        ).volume.data
    raise ValueError(f"unknown golden family {family!r}")


@pytest.fixture(scope="module", params=sorted(FAMILIES))
def family(request):
    return request.param


@pytest.fixture(scope="module")
def golden(family):
    stem = FAMILIES[family]
    volume = np.load(DATA_DIR / f"{stem}.npz")["volume"]
    meta = json.loads((DATA_DIR / f"{stem}.json").read_text())
    assert volume.shape == tuple(meta["shape"])
    assert str(volume.dtype) == meta["dtype"]
    # The stored artefact itself must match its recorded hash (catches a
    # corrupted or half-regenerated checkout before blaming the code).
    assert hashlib.sha256(volume.tobytes()).hexdigest() == meta["sha256"]
    return volume, meta


@pytest.fixture(scope="module")
def recomputed(family):
    return reconstruct(family, "reference")


def _environment_matches(meta: dict) -> bool:
    import scipy

    return meta["numpy"] == np.__version__ and meta["scipy"] == scipy.__version__


def rel_rmse(a: np.ndarray, b: np.ndarray) -> float:
    scale = float(np.abs(b).max()) or 1.0
    return float(np.sqrt(np.mean((a.astype(np.float64) - b) ** 2))) / scale


def test_golden_volume_exact_hash(family, golden, recomputed):
    volume, meta = golden
    if not _environment_matches(meta):
        pytest.skip(
            f"golden generated with numpy={meta['numpy']} scipy={meta['scipy']}; "
            "bit-exactness is only contractual on the pinned environment "
            "(the RMSE test below still guards drift here)"
        )
    digest = hashlib.sha256(recomputed.tobytes()).hexdigest()
    assert digest == meta["sha256"], (
        f"reference {family} FDK output changed bit-for-bit against the "
        f"golden volume (got {digest}); if the numerical change is "
        f"intentional, regenerate tests/data/{FAMILIES[family]}.* (see "
        "module docstring) and say so in the PR"
    )


def test_golden_volume_rmse(family, golden, recomputed):
    volume, _ = golden
    assert recomputed.shape == volume.shape
    drift = rel_rmse(recomputed, volume)
    assert drift <= DRIFT_RMSE_TOL, (
        f"reference {family} FDK output drifted from the golden volume "
        f"(relative RMSE {drift:.3e} > {DRIFT_RMSE_TOL:.0e})"
    )


@pytest.mark.parametrize(
    "backend", [n for n in BACKEND_NAMES if n != "reference"]
)
def test_backends_track_golden_volume(family, golden, backend):
    volume, _ = golden
    assert rel_rmse(reconstruct(family, backend), volume) <= BACKEND_RMSE_TOL


# --------------------------------------------------------------------------- #
# Quality regression: short-scan must stay close to full-scan fidelity
# --------------------------------------------------------------------------- #
@pytest.mark.scenario
def test_short_scan_rmse_within_2x_of_full_scan():
    """Parker-weighted short scan keeps RMSE within 2× of the full scan.

    Reconstructed at 64³ from clean analytic projections (the scale at
    which FDK is quantitatively accurate) so the bound measures the
    redundancy weighting, not the noise floor.
    """
    geometry = default_geometry_for_problem(
        nu=96, nv=96, np_=72, nx=64, ny=64, nz=64
    )
    stack = forward_project_analytic(
        EllipsoidPhantom(shepp_logan_ellipsoids()), geometry
    )
    truth = shepp_logan_3d(64, 64, 64).data
    scale = float(np.abs(truth).max())

    def rmse_vs_truth(volume: np.ndarray) -> float:
        return float(np.sqrt(np.mean((volume - truth) ** 2))) / scale

    full = FDKReconstructor(geometry=geometry, backend="vectorized").reconstruct(
        stack
    )
    short = reconstruct_scenario(
        "short_scan", geometry, stack, backend="vectorized"
    )
    full_rmse = rmse_vs_truth(full.volume.data)
    short_rmse = rmse_vs_truth(short.volume.data)
    assert short_rmse <= 2.0 * full_rmse, (
        f"short-scan RMSE {short_rmse:.4f} exceeds twice the full-scan "
        f"RMSE {full_rmse:.4f}"
    )


def _regenerate() -> None:  # pragma: no cover - manual tool
    import scipy

    for family, stem in FAMILIES.items():
        volume = reconstruct(family, "reference")
        digest = hashlib.sha256(volume.tobytes()).hexdigest()
        meta_path = DATA_DIR / f"{stem}.json"
        if meta_path.exists():
            if json.loads(meta_path.read_text())["sha256"] == digest:
                print(f"{stem}.npz unchanged ({digest}); not rewritten")
                continue
        DATA_DIR.mkdir(exist_ok=True)
        np.savez_compressed(DATA_DIR / f"{stem}.npz", volume=volume)
        meta = {
            "sha256": digest,
            "dtype": str(volume.dtype),
            "shape": list(volume.shape),
            "problem": "48x48x24->32x32x32",
            "scenario": "full_scan" if family == "full" else "short_scan",
            "seed": SEED,
            "numpy": np.__version__,
            "scipy": scipy.__version__,
        }
        meta_path.write_text(json.dumps(meta, indent=2) + "\n")
        print(f"regenerated {stem}.npz ({digest})")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
