"""Unit tests for repro.core.types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import (
    DEFAULT_DTYPE,
    ProjectionStack,
    ReconstructionProblem,
    Volume,
    problem_from_string,
)


class TestReconstructionProblem:
    def test_basic_sizes(self):
        p = ReconstructionProblem(nu=2048, nv=2048, np_=4096, nx=4096, ny=4096, nz=4096)
        assert p.input_pixels == 2048 * 2048 * 4096
        assert p.output_voxels == 4096**3
        assert p.updates == 4096**3 * 4096

    def test_alpha_matches_paper_definition(self):
        # Table 4: 512^2 x 1k -> 128^3 has alpha = 128.
        p = problem_from_string("512x512x1024->128x128x128")
        assert p.alpha == pytest.approx(128.0)

    def test_alpha_below_one_for_large_outputs(self):
        p = problem_from_string("512x512x1024->1024x1024x2048")
        assert p.alpha == pytest.approx(1.0 / 8.0)

    def test_gups_definition(self):
        p = ReconstructionProblem(nu=4, nv=4, np_=2, nx=8, ny=8, nz=8)
        # GUPS = Nx*Ny*Nz*Np / (T * 2^30)
        assert p.gups(2.0) == pytest.approx(8 * 8 * 8 * 2 / (2.0 * 2**30))

    def test_gups_rejects_nonpositive_time(self):
        p = ReconstructionProblem(nu=4, nv=4, np_=2, nx=8, ny=8, nz=8)
        with pytest.raises(ValueError):
            p.gups(0.0)

    def test_bytes(self):
        p = ReconstructionProblem(nu=10, nv=20, np_=3, nx=4, ny=5, nz=6)
        assert p.input_bytes() == 10 * 20 * 3 * 4
        assert p.output_bytes() == 4 * 5 * 6 * 4
        assert p.output_bytes(itemsize=8) == 4 * 5 * 6 * 8

    @pytest.mark.parametrize("field", ["nu", "nv", "np_", "nx", "ny", "nz"])
    def test_rejects_nonpositive_dimensions(self, field):
        kwargs = dict(nu=4, nv=4, np_=4, nx=4, ny=4, nz=4)
        kwargs[field] = 0
        with pytest.raises(ValueError):
            ReconstructionProblem(**kwargs)

    def test_scaled_preserves_alpha_approximately(self):
        p = problem_from_string("2048x2048x4096->4096x4096x4096")
        q = p.scaled(1 / 32)
        assert q.nx == 128 and q.nu == 64
        assert q.alpha == pytest.approx(p.alpha, rel=0.2)

    def test_scaled_rejects_nonpositive_factor(self):
        p = problem_from_string("512x512x1024->128x128x128")
        with pytest.raises(ValueError):
            p.scaled(0)

    def test_str_roundtrip(self):
        p = problem_from_string("512x512x1024->128x128x128")
        assert problem_from_string(str(p)) == p


class TestProblemFromString:
    def test_k_suffix(self):
        p = problem_from_string("2kx2kx4096->4kx4kx4k")
        assert (p.nu, p.nv, p.np_) == (2048, 2048, 4096)
        assert (p.nx, p.ny, p.nz) == (4096, 4096, 4096)

    def test_invalid_spec_raises(self):
        with pytest.raises(ValueError):
            problem_from_string("512x512x1024")

    def test_invalid_dimension_raises(self):
        with pytest.raises(ValueError):
            problem_from_string("axbxc->1x2x3")


class TestProjectionStack:
    def test_shape_properties(self, rng):
        data = rng.random((5, 7, 9), dtype=np.float32)
        stack = ProjectionStack(data=data, angles=np.linspace(0, 1, 5))
        assert stack.np_ == 5 and stack.nv == 7 and stack.nu == 9
        assert len(stack) == 5
        assert stack.data.dtype == DEFAULT_DTYPE

    def test_angle_length_mismatch_raises(self, rng):
        data = rng.random((5, 7, 9), dtype=np.float32)
        with pytest.raises(ValueError):
            ProjectionStack(data=data, angles=np.zeros(4))

    def test_requires_3d(self, rng):
        with pytest.raises(ValueError):
            ProjectionStack(data=rng.random((5, 7)), angles=np.zeros(5))

    def test_iteration_yields_angle_image_pairs(self, rng):
        data = rng.random((3, 4, 4), dtype=np.float32)
        angles = np.array([0.0, 0.5, 1.0])
        stack = ProjectionStack(data=data, angles=angles)
        pairs = list(stack)
        assert len(pairs) == 3
        assert pairs[1][0] == pytest.approx(0.5)
        np.testing.assert_array_equal(pairs[2][1], data[2])

    def test_subset_copies(self, rng):
        data = rng.random((4, 3, 3), dtype=np.float32)
        stack = ProjectionStack(data=data, angles=np.arange(4.0))
        sub = stack.subset([2, 0])
        assert sub.np_ == 2
        assert sub.angles.tolist() == [2.0, 0.0]
        sub.data[0, 0, 0] = 99.0
        assert stack.data[2, 0, 0] != 99.0

    def test_copy_is_deep(self, rng):
        stack = ProjectionStack(data=rng.random((2, 3, 3)), angles=np.zeros(2))
        dup = stack.copy()
        dup.data[0, 0, 0] = 42.0
        assert stack.data[0, 0, 0] != 42.0


class TestVolume:
    def test_zeros_and_shape(self):
        v = Volume.zeros(nx=3, ny=4, nz=5)
        assert v.shape == (5, 4, 3)
        assert v.nx == 3 and v.ny == 4 and v.nz == 5
        assert v.nbytes == 3 * 4 * 5 * 4

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            Volume(data=np.zeros((3, 3)))

    def test_rejects_bad_pitch(self):
        with pytest.raises(ValueError):
            Volume(data=np.zeros((2, 2, 2)), voxel_pitch=(1.0, 0.0, 1.0))

    def test_kmajor_roundtrip(self, rng):
        data = rng.random((4, 5, 6)).astype(np.float32)
        v = Volume(data=data)
        kmajor = v.to_kmajor()
        assert kmajor.shape == (6, 5, 4)
        back = Volume.from_kmajor(kmajor)
        np.testing.assert_array_equal(back.data, v.data)

    def test_from_kmajor_requires_3d(self):
        with pytest.raises(ValueError):
            Volume.from_kmajor(np.zeros((2, 2)))

    def test_slab(self, rng):
        v = Volume(data=rng.random((8, 4, 4)).astype(np.float32))
        slab = v.slab(2, 5)
        assert slab.nz == 3
        np.testing.assert_array_equal(slab.data, v.data[2:5])

    def test_slab_bounds_checked(self):
        v = Volume.zeros(4, 4, 4)
        with pytest.raises(ValueError):
            v.slab(3, 2)
        with pytest.raises(ValueError):
            v.slab(0, 9)
