"""Tests for the iterative solvers built on the FDK operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EllipsoidPhantom,
    default_geometry_for_problem,
    forward_project_analytic,
    uniform_sphere_phantom,
)
from repro.core.iterative import mlem, osem, sart, sirt
from repro.core.metrics import interior_mask, rmse
from repro.core.types import Volume


@pytest.fixture(scope="module")
def tiny_geometry():
    # Deliberately tiny: every iteration runs a full forward + back projection.
    return default_geometry_for_problem(nu=24, nv=24, np_=12, nx=16, ny=16, nz=16)


@pytest.fixture(scope="module")
def tiny_phantom():
    return uniform_sphere_phantom(radius=0.55, value=1.0)


@pytest.fixture(scope="module")
def tiny_projections(tiny_geometry, tiny_phantom):
    return forward_project_analytic(tiny_phantom, tiny_geometry)


@pytest.fixture(scope="module")
def tiny_reference(tiny_phantom):
    return tiny_phantom.rasterize(16, 16, 16)


class TestSIRT:
    def test_residual_decreases(self, tiny_geometry, tiny_projections):
        result = sirt(tiny_projections, tiny_geometry, iterations=4, relaxation=1.0)
        assert result.iterations == 4
        assert result.residual_history[-1] < result.residual_history[0]

    def test_volume_approaches_phantom(self, tiny_geometry, tiny_projections, tiny_reference):
        result = sirt(tiny_projections, tiny_geometry, iterations=8)
        mask = interior_mask(tiny_reference.shape, 0.6)
        assert rmse(result.volume.data, tiny_reference.data, mask) < 0.35

    def test_algorithm_choice_does_not_change_result(self, tiny_geometry, tiny_projections):
        a = sirt(tiny_projections, tiny_geometry, iterations=2, algorithm="proposed")
        b = sirt(tiny_projections, tiny_geometry, iterations=2, algorithm="standard")
        np.testing.assert_allclose(a.volume.data, b.volume.data, atol=1e-4)

    def test_callback_invoked(self, tiny_geometry, tiny_projections):
        seen = []
        sirt(tiny_projections, tiny_geometry, iterations=2, callback=lambda i, r: seen.append(i))
        assert seen == [0, 1]

    def test_invalid_iterations(self, tiny_geometry, tiny_projections):
        with pytest.raises(ValueError):
            sirt(tiny_projections, tiny_geometry, iterations=0)


class TestSARTAndART:
    def test_sart_residual_decreases(self, tiny_geometry, tiny_projections):
        result = sart(tiny_projections, tiny_geometry, iterations=2, relaxation=0.5)
        assert result.residual_history[-1] <= result.residual_history[0]

    def test_final_residual_property(self, tiny_geometry, tiny_projections):
        result = sart(tiny_projections, tiny_geometry, iterations=1)
        assert result.final_residual == result.residual_history[-1]


class TestMLEMAndOSEM:
    def test_mlem_preserves_nonnegativity(self, tiny_geometry, tiny_projections):
        result = mlem(tiny_projections, tiny_geometry, iterations=3)
        assert np.all(result.volume.data >= 0)
        assert result.residual_history[-1] < result.residual_history[0]

    def test_osem_with_subsets_converges_faster_per_iteration(
        self, tiny_geometry, tiny_projections
    ):
        one = mlem(tiny_projections, tiny_geometry, iterations=2)
        four = osem(tiny_projections, tiny_geometry, subsets=4, iterations=2)
        assert four.residual_history[-1] <= one.residual_history[-1] * 1.1

    def test_mlem_rejects_negative_data(self, tiny_geometry, tiny_projections):
        bad = tiny_projections.copy()
        bad.data[0, 0, 0] = -1.0
        with pytest.raises(ValueError):
            mlem(bad, tiny_geometry, iterations=1)

    def test_osem_rejects_bad_subsets(self, tiny_geometry, tiny_projections):
        with pytest.raises(ValueError):
            osem(tiny_projections, tiny_geometry, subsets=0, iterations=1)
        with pytest.raises(ValueError):
            osem(tiny_projections, tiny_geometry, subsets=1000, iterations=1)

    def test_osem_rejects_nonpositive_initial(self, tiny_geometry, tiny_projections):
        zero_init = Volume.zeros(16, 16, 16)
        with pytest.raises(ValueError):
            mlem(tiny_projections, tiny_geometry, iterations=1, initial=zero_init)
