"""Tests for the simulated parallel file system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import ProjectionStack
from repro.pfs import (
    PFSConfig,
    SimulatedPFS,
    dataset_angles,
    modelled_store_seconds,
    projection_object_name,
    read_projection_subset,
    read_volume,
    write_projection_dataset,
    write_volume_slices,
)


class TestPFSConfig:
    def test_defaults_match_paper(self):
        config = PFSConfig()
        assert config.write_bandwidth == pytest.approx(28.5e9)

    def test_stripe_efficiency(self):
        config = PFSConfig(stripe_size=1 << 20, stripe_count=16)
        assert config.stripe_efficiency(32 << 20) == 1.0
        assert config.stripe_efficiency(1 << 20) == pytest.approx(1 / 16)

    def test_small_files_slower_per_byte(self):
        config = PFSConfig()
        per_byte_small = config.write_seconds(1 << 20) / (1 << 20)
        per_byte_large = config.write_seconds(256 << 20) / (256 << 20)
        assert per_byte_small > per_byte_large

    def test_validation(self):
        with pytest.raises(ValueError):
            PFSConfig(write_bandwidth=0)
        with pytest.raises(ValueError):
            PFSConfig(stripe_count=0)


class TestSimulatedPFS:
    def test_roundtrip_in_memory(self, rng):
        pfs = SimulatedPFS()
        data = rng.random((5, 6)).astype(np.float32)
        pfs.write_array("x", data)
        out = pfs.read_array("x")
        np.testing.assert_array_equal(out, data)
        assert out.dtype == np.float32

    def test_roundtrip_on_disk(self, rng, tmp_path):
        pfs = SimulatedPFS(root_dir=tmp_path)
        data = rng.random((3, 4, 5)).astype(np.float64)
        pfs.write_array("volumes/test/z1", data)
        np.testing.assert_array_equal(pfs.read_array("volumes/test/z1"), data)
        assert len(list(tmp_path.iterdir())) == 1

    def test_missing_object_raises(self):
        with pytest.raises(KeyError):
            SimulatedPFS().read_array("nope")

    def test_statistics_accumulate(self, rng):
        pfs = SimulatedPFS()
        pfs.write_array("a", rng.random(100).astype(np.float32))
        pfs.read_array("a")
        assert pfs.stats.files_written == 1
        assert pfs.stats.files_read == 1
        assert pfs.stats.bytes_written > 400
        assert pfs.stats.modelled_write_seconds > 0

    def test_exists_list_delete(self, rng):
        pfs = SimulatedPFS()
        pfs.write_array("a", rng.random(4))
        pfs.write_array("b", rng.random(4))
        assert pfs.exists("a")
        assert pfs.list_objects() == ["a", "b"]
        pfs.delete("a")
        assert not pfs.exists("a")

    def test_aggregate_models(self):
        pfs = SimulatedPFS()
        # Eq. 16 anchor: 256 GB at 28.5 GB/s ~ 9 s (Section 5.3.3).
        assert pfs.modelled_aggregate_write_seconds(256e9) == pytest.approx(9.0, rel=0.02)
        with pytest.raises(ValueError):
            pfs.modelled_aggregate_read_seconds(-1)


class TestProjectionIO:
    def test_write_and_read_subset(self, small_projections):
        pfs = SimulatedPFS()
        write_projection_dataset(pfs, small_projections)
        subset = read_projection_subset(pfs, [3, 0, 5])
        np.testing.assert_array_equal(subset.data[0], small_projections.data[3])
        np.testing.assert_array_equal(subset.data[1], small_projections.data[0])
        assert subset.angles[2] == pytest.approx(small_projections.angles[5])

    def test_angles_stored(self, small_projections):
        pfs = SimulatedPFS()
        write_projection_dataset(pfs, small_projections)
        np.testing.assert_allclose(dataset_angles(pfs), small_projections.angles)

    def test_object_names(self):
        assert projection_object_name(7) == "projections/000007"
        with pytest.raises(ValueError):
            projection_object_name(-1)

    def test_out_of_range_index(self, small_projections):
        pfs = SimulatedPFS()
        write_projection_dataset(pfs, small_projections)
        with pytest.raises(IndexError):
            read_projection_subset(pfs, [small_projections.np_])

    def test_empty_subset_rejected(self, small_projections):
        pfs = SimulatedPFS()
        write_projection_dataset(pfs, small_projections)
        with pytest.raises(ValueError):
            read_projection_subset(pfs, [])


class TestVolumeIO:
    def test_slab_roundtrip(self, rng):
        pfs = SimulatedPFS()
        data = rng.random((8, 6, 4)).astype(np.float32)
        write_volume_slices(pfs, "vol", data[:4], z_offset=0)
        write_volume_slices(pfs, "vol", data[4:], z_offset=4)
        out = read_volume(pfs, "vol")
        np.testing.assert_array_equal(out.data, data)

    def test_slices_per_file_groups_objects(self, rng):
        pfs = SimulatedPFS()
        data = rng.random((8, 4, 4)).astype(np.float32)
        write_volume_slices(pfs, "vol", data, slices_per_file=4)
        assert len([n for n in pfs.list_objects() if n.startswith("volumes/vol")]) == 2

    def test_missing_volume_raises(self):
        with pytest.raises(KeyError):
            read_volume(SimulatedPFS(), "ghost")

    def test_invalid_args(self, rng):
        pfs = SimulatedPFS()
        with pytest.raises(ValueError):
            write_volume_slices(pfs, "v", rng.random((4, 4)))
        with pytest.raises(ValueError):
            write_volume_slices(pfs, "v", rng.random((4, 4, 4)), slices_per_file=0)

    def test_modelled_store_seconds(self):
        pfs = SimulatedPFS()
        assert modelled_store_seconds(pfs, 256 * 10**9) == pytest.approx(9.0, rel=0.02)


# --------------------------------------------------------------------------- #
# Property tests: round-trips across dtypes and memory layouts
# --------------------------------------------------------------------------- #
try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    from hypothesis.extra import numpy as hnp

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is available in CI
    HAVE_HYPOTHESIS = False

ROUNDTRIP_DTYPES = ("float32", "float64", "float16", "int32", "uint16", "int8")


def _assert_lossless_roundtrip(array: np.ndarray) -> None:
    """write_array/read_array must preserve dtype, shape and every byte."""
    pfs = SimulatedPFS()
    pfs.write_array("obj", array)
    out = pfs.read_array("obj")
    assert out.dtype == array.dtype
    assert out.shape == array.shape
    np.testing.assert_array_equal(out, array)
    assert out.flags["C_CONTIGUOUS"]  # reads hand back clean dense arrays


def _strided_views(array: np.ndarray):
    """Non-contiguous views of ``array``: transposed, reversed, sliced."""
    views = [array.T]
    if array.ndim >= 1 and array.shape[0] > 1:
        views.append(array[::-1])
        views.append(array[::2])
    if array.ndim >= 2 and array.shape[1] > 1:
        views.append(array[:, ::-1])
    return views


if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(
        dtype=st.sampled_from(ROUNDTRIP_DTYPES),
        shape=st.lists(st.integers(1, 7), min_size=1, max_size=3).map(tuple),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_pfs_array_roundtrip_property(dtype, shape, seed):
        rng = np.random.default_rng(seed)
        array = (rng.random(shape) * 100 - 50).astype(dtype)
        _assert_lossless_roundtrip(array)
        for view in _strided_views(array):
            _assert_lossless_roundtrip(view)

else:  # pragma: no cover - exercised only without hypothesis

    @pytest.mark.parametrize("dtype", ROUNDTRIP_DTYPES)
    @pytest.mark.parametrize("seed", range(6))
    def test_pfs_array_roundtrip_property(dtype, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(rng.integers(1, 8, size=rng.integers(1, 4)))
        array = (rng.random(shape) * 100 - 50).astype(dtype)
        _assert_lossless_roundtrip(array)
        for view in _strided_views(array):
            _assert_lossless_roundtrip(view)


class TestRoundtripLayouts:
    """Projection/volume I/O round-trips on awkward inputs."""

    def test_projection_dataset_roundtrip_noncontiguous(self, rng):
        """A Fortran-ordered float64 acquisition survives the PFS unchanged."""
        data64 = np.asfortranarray(rng.random((5, 6, 8)))  # float64, F-order
        stack = ProjectionStack(data=data64, angles=np.linspace(0, 1, 5))
        pfs = SimulatedPFS()
        write_projection_dataset(pfs, stack)
        out = read_projection_subset(pfs, range(5))
        assert out.data.dtype == np.float32  # the stack normalizes to FP32
        np.testing.assert_array_equal(out.data, stack.data)
        np.testing.assert_array_equal(out.angles, stack.angles)

    def test_projection_subset_order_and_duplicates(self, rng):
        stack = ProjectionStack(
            data=rng.random((6, 4, 4)).astype(np.float32),
            angles=np.arange(6, dtype=np.float64),
        )
        pfs = SimulatedPFS()
        write_projection_dataset(pfs, stack)
        out = read_projection_subset(pfs, [4, 1, 1])
        np.testing.assert_array_equal(out.angles, [4.0, 1.0, 1.0])
        np.testing.assert_array_equal(out.data[1], out.data[2])
        np.testing.assert_array_equal(out.data[0], stack.data[4])

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    @pytest.mark.parametrize("slices_per_file", [1, 3, 8])
    def test_volume_roundtrip_dtypes_and_striping(self, rng, dtype, slices_per_file):
        data = rng.random((8, 5, 7)).astype(dtype)[:, ::-1]  # non-contiguous
        pfs = SimulatedPFS()
        write_volume_slices(pfs, "vol", data, slices_per_file=slices_per_file)
        out = read_volume(pfs, "vol")
        # Volume normalizes to FP32; the bytes must survive the trip exactly.
        np.testing.assert_array_equal(out.data, data.astype(np.float32))
